"""Batched candidate generation across the approximate indexes.

The contracts under test, per index (MinHash LSH, q-gram inverted,
BK-tree, LAESA pivot):

- ``knn_batch`` / ``within_batch`` / ``phase1_batch`` are
  result-identical to per-query calls on a fresh index;
- the parallel engine reproduces the sequential NN relation checksum
  for any worker count;
- Phase-1 ``evaluations`` strictly drop vs. the brute-force baseline,
  and the new pruning counters (``candidates_generated`` /
  ``evaluations_pruned`` / per-index attribution) are filled;
- the MinHash index signs and buckets records exactly once per build;
- the per-query path consults a primed pair cache (the recorded
  ``cache_hit_rate = 0.0`` regression).
"""

from __future__ import annotations

import pytest

from repro.core.formulation import DEParams
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.data.loaders import load_dataset
from repro.distances.edit import EditDistance
from repro.eval.bench_phase1 import nn_checksum
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.inverted import QgramInvertedIndex
from repro.index.minhash import MinHashIndex
from repro.index.pivot import PivotIndex
from repro.parallel.engine import ParallelNNEngine

APPROX_FACTORIES = [
    ("minhash", MinHashIndex),
    ("qgram", QgramInvertedIndex),
    ("bktree", BKTreeIndex),
    ("pivot", PivotIndex),
]

K = 3
THETA = 0.42
PARAMS = DEParams.size(K, c=4.0)


@pytest.fixture(scope="module")
def relation():
    # Seed-fixed tiny org dataset; edit distance suits all four indexes
    # (the BK-tree accepts nothing else).
    return load_dataset(
        "org", n_entities=30, duplicate_fraction=0.4, seed=7
    ).relation


def build(factory, relation):
    index = factory()
    index.build(relation, EditDistance())
    return index


class TestBatchPerQueryParity:
    """Batch answers must be bit-identical to per-query answers."""

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    def test_knn_batch(self, name, factory, relation):
        records = relation.records
        got = build(factory, relation).knn_batch(records, K)
        plain = build(factory, relation)
        assert got == [plain.knn(record, K) for record in records]

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    def test_within_batch(self, name, factory, relation):
        records = relation.records
        got = build(factory, relation).within_batch(records, THETA)
        plain = build(factory, relation)
        assert got == [plain.within(record, THETA) for record in records]

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    @pytest.mark.parametrize(
        "k,theta", [(K, None), (None, THETA), (K, THETA)]
    )
    def test_phase1_batch(self, name, factory, relation, k, theta):
        records = relation.records
        got = build(factory, relation).phase1_batch(records, k=k, theta=theta)
        plain = build(factory, relation)
        want = []
        for record in records:
            if theta is not None:
                neighbors = plain.within(record, theta)
                if k is not None:
                    neighbors = neighbors[:k]
            else:
                neighbors = plain.knn(record, k)
            nn_distance = neighbors[0].distance if neighbors else None
            want.append(
                (neighbors, plain.neighborhood_growth(record, nn_distance=nn_distance))
            )
        assert got == want

    @pytest.mark.parametrize(
        "name,factory",
        [
            ("minhash", MinHashIndex),
            # Fast path off: the banded-DP filter re-runs cheap partial
            # DPs per cutoff instead of caching full distances, so the
            # once-per-pair bound only holds on the _pair_distance route.
            ("qgram", lambda: QgramInvertedIndex(enable_fast_path=False)),
            ("bktree", BKTreeIndex),
            ("pivot", PivotIndex),
        ],
    )
    def test_batch_reuses_pairs(self, name, factory, relation):
        """Inside one batch no unordered pair is evaluated twice."""
        index = build(factory, relation)
        index.phase1_batch(relation.records, k=K, theta=THETA)
        n = len(relation)
        assert index.evaluations <= n * (n - 1) // 2 + index.build_evaluations


class TestEngineParity:
    """Chunked parallel execution reproduces the sequential result."""

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_worker_count_invariance(self, name, factory, relation, n_workers):
        sequential = prepare_nn_lists(
            relation, build(factory, relation), PARAMS, order="sequential"
        )
        engine = ParallelNNEngine(n_workers=n_workers, pool="thread")
        parallel = engine.run(
            relation, build(factory, relation), PARAMS, order="sequential"
        )
        assert nn_checksum(parallel) == nn_checksum(sequential)

    def test_process_pool_roundtrip(self, relation):
        """The index (incl. its batch lock) survives pickling to workers."""
        sequential = prepare_nn_lists(
            relation, build(MinHashIndex, relation), PARAMS, order="sequential"
        )
        engine = ParallelNNEngine(n_workers=2, pool="process", chunk_size=11)
        parallel = engine.run(
            relation, build(MinHashIndex, relation), PARAMS, order="sequential"
        )
        assert nn_checksum(parallel) == nn_checksum(sequential)


class TestPruningAccounting:
    """The sub-quadratic lever is visible in Phase1Stats."""

    def run_stats(self, factory, relation):
        stats = Phase1Stats()
        index = build(factory, relation)
        engine = ParallelNNEngine(n_workers=1)
        engine.run(relation, index, PARAMS, order="sequential", stats=stats)
        return index, stats

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    def test_evaluations_drop_vs_brute(self, name, factory, relation):
        brute_stats = Phase1Stats()
        prepare_nn_lists(
            relation,
            build(BruteForceIndex, relation),
            PARAMS,
            order="sequential",
            stats=brute_stats,
        )
        index, stats = self.run_stats(factory, relation)
        total = stats.evaluations + index.build_evaluations
        assert total < brute_stats.evaluations

    @pytest.mark.parametrize("name,factory", APPROX_FACTORIES)
    def test_counters_filled_and_credited(self, name, factory, relation):
        index, stats = self.run_stats(factory, relation)
        assert stats.candidates_generated > 0
        assert stats.evaluations_pruned > 0
        assert 0.0 < stats.prune_rate <= 1.0
        row = stats.by_index[index.name]
        assert row["lookups"] == len(relation)
        assert row["evaluations"] == stats.evaluations
        assert row["candidates_generated"] == stats.candidates_generated
        assert row["evaluations_pruned"] == stats.evaluations_pruned

    def test_brute_force_never_prunes(self, relation):
        _, stats = self.run_stats(BruteForceIndex, relation)
        assert stats.evaluations_pruned == 0
        assert stats.prune_rate == 0.0

    def test_sequential_path_credits_index(self, relation):
        stats = Phase1Stats()
        index = build(QgramInvertedIndex, relation)
        prepare_nn_lists(relation, index, PARAMS, order="sequential", stats=stats)
        row = stats.by_index[index.name]
        assert row["lookups"] == len(relation)
        assert row["evaluations_pruned"] == stats.evaluations_pruned > 0


class TestMinHashBuildOnce:
    """Signatures and band buckets are computed in _build, idempotently."""

    def test_rebuild_is_idempotent(self, relation):
        index = build(MinHashIndex, relation)
        signatures = dict(index._signatures)
        band_keys = dict(index._band_keys)
        buckets = {key: list(rids) for key, rids in index._buckets.items()}
        index.build(relation, EditDistance())
        assert index._signatures == signatures
        assert index._band_keys == band_keys
        # A non-idempotent rebuild would double every bucket's postings.
        assert {k: list(v) for k, v in index._buckets.items()} == buckets

    def test_lookups_never_resign_in_relation_records(self, relation, monkeypatch):
        index = build(MinHashIndex, relation)
        record = relation.records[0]

        def boom(_record):
            raise AssertionError("lookup recomputed a signature")

        monkeypatch.setattr(index, "_signature", boom)
        index.knn(record, K)
        index.within(record, THETA)
        index.phase1_batch([record], k=K)

    def test_out_of_relation_probe_still_signs(self, relation):
        other = load_dataset(
            "org", n_entities=5, duplicate_fraction=0.0, seed=99
        ).relation
        index = build(MinHashIndex, relation)
        probe = other.records[0]
        assert probe.rid not in index._band_keys or True
        # Must not raise: the probe is signed on the fly.
        index._candidates(probe)


class TestPerQueryCacheConsultation:
    """A primed pair cache serves the per-query path (hit-rate regression).

    ``BENCH_phase1.json`` once recorded ``cache_hit_rate = 0.0`` for
    every per-query run — correct for a cold index (per-query lookups
    consult but never fill the cache), yet the consultation itself must
    demonstrably work.
    """

    def test_primed_cache_serves_per_query_lookups(self, relation):
        index = build(BruteForceIndex, relation)
        index.prime_pairs(relation.records)
        stats = Phase1Stats()
        prepare_nn_lists(relation, index, PARAMS, order="sequential", stats=stats)
        assert stats.cache_hits > 0
        assert stats.cache_hit_rate > 0.9
        assert stats.evaluations == 0

    def test_cold_per_query_path_never_fills(self, relation):
        index = build(BruteForceIndex, relation)
        prepare_nn_lists(relation, index, PARAMS, order="sequential")
        assert index.cache_hits == 0
        assert not index._pair_cache
