"""Guards against documentation rot.

DESIGN.md promises a bench target per experiment and EXPERIMENTS.md
references result files; these tests keep the promises true as the
repository evolves.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_every_named_bench_target_exists(self):
        design = read("DESIGN.md")
        targets = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        assert targets, "DESIGN.md names no bench targets?"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed_in_design(self):
        design = read("DESIGN.md")
        on_disk = {
            path.name for path in (ROOT / "benchmarks").glob("test_bench_*.py")
        }
        for name in on_disk:
            assert name in design, f"{name} missing from DESIGN.md's index"

    def test_every_named_module_exists(self):
        design = read("DESIGN.md")
        modules = set(re.findall(r"`repro/([\w/]+\.py)`", design))
        for module in modules:
            assert (ROOT / "src" / "repro" / module).exists(), module


class TestReadme:
    def test_architecture_names_every_subpackage(self):
        readme = read("README.md")
        for subpackage in ("core", "distances", "index", "parallel", "storage",
                           "cluster", "data", "eval", "verify"):
            assert f"  {subpackage}/" in readme, subpackage

    def test_example_commands_reference_real_files(self):
        readme = read("README.md")
        for match in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / match).exists(), match

    def test_quickstart_code_runs(self):
        readme = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README has no python blocks"
        # The first block is the quickstart; it must execute verbatim.
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
        assert namespace["result"].duplicate_groups == [(0, 1), (2, 3)]


class TestExperimentsDocument:
    def test_referenced_result_files_are_produced_by_benches(self):
        experiments = read("EXPERIMENTS.md")
        referenced = set(re.findall(r"results/([\w{},]+\.txt)", experiments))
        bench_sources = "".join(
            path.read_text(encoding="utf-8")
            for path in (ROOT / "benchmarks").glob("*.py")
        )
        for reference in referenced:
            if "{" in reference:
                # A brace-set like F10ed_{media,org}.txt: check the stem.
                stem = reference.split("{")[0]
                assert stem in bench_sources, reference
            else:
                assert reference.rsplit(".", 1)[0] in bench_sources, reference

    def test_docs_directory_files_mentioned_exist(self):
        for doc in ("algorithm", "criteria", "datasets", "benchmarks", "api",
                    "storage", "performance", "verification"):
            assert (ROOT / "docs" / f"{doc}.md").exists(), doc
