"""Property-based tests for the framework lemmas (paper section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.core.properties import (
    check_scale_invariance,
    check_split_merge_consistency,
    check_uniqueness,
    is_p_conscious,
    p_conscious_transform,
    realize_partition,
)
from repro.core.result import Partition

from tests.helpers import absdiff_distance, numbers_relation

# Distinct small integers; differences stay under the 1000 scale.
values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=16, unique=True
)


class TestLemma1Uniqueness:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_uniqueness_size_spec(self, values):
        relation = numbers_relation(values)
        assert check_uniqueness(relation, absdiff_distance(), DEParams.size(4, c=4.0))

    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_uniqueness_diameter_spec(self, values):
        relation = numbers_relation(values)
        assert check_uniqueness(
            relation, absdiff_distance(), DEParams.diameter(0.05, c=4.0)
        )


class TestLemma2ScaleInvariance:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy, st.floats(0.1, 1.0))
    def test_scale_invariance_size_spec(self, values, alpha):
        relation = numbers_relation(values)
        assert check_scale_invariance(
            relation, absdiff_distance(), DEParams.size(4, c=4.0), alpha=alpha
        )

    def test_diameter_spec_not_scale_invariant(self):
        """DE_D(θ) is *not* scale-invariant (the paper only claims
        Lemma 2 for DE_S): scaling distances below θ changes the radius
        query results."""
        relation = numbers_relation([0, 30, 1000])
        params = DEParams.diameter(0.025, c=4.0)
        base = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        )
        from repro.distances.base import ScaledDistance

        scaled = DuplicateEliminator(
            ScaledDistance(absdiff_distance(), 0.5), cache_distance=False
        ).run(relation, params)
        assert base.partition != scaled.partition


class TestLemma3SplitMergeConsistency:
    @settings(max_examples=20, deadline=None)
    @given(values_strategy)
    def test_consistency_size_spec(self, values):
        relation = numbers_relation(values)
        assert check_split_merge_consistency(
            relation, absdiff_distance(), DEParams.size(4, c=4.0)
        )

    @settings(max_examples=20, deadline=None)
    @given(values_strategy)
    def test_consistency_diameter_spec(self, values):
        relation = numbers_relation(values)
        assert check_split_merge_consistency(
            relation, absdiff_distance(), DEParams.diameter(0.05, c=4.0), grow=1.0
        )

    def test_p_conscious_transform_definition(self):
        relation = numbers_relation([0, 1, 50, 51, 200])
        distance = absdiff_distance()
        partition = Partition.from_groups([[0, 1], [2, 3], [4]])
        transformed = p_conscious_transform(distance, partition, shrink=0.5, grow=1.5)
        assert is_p_conscious(relation, distance, transformed, partition)

    def test_p_conscious_validation(self):
        partition = Partition.from_groups([[0]])
        with pytest.raises(ValueError):
            p_conscious_transform(absdiff_distance(), partition, shrink=1.5)
        with pytest.raises(ValueError):
            p_conscious_transform(absdiff_distance(), partition, grow=0.5)

    def test_homogenizing_duplicates_keeps_groups(self):
        """The paper's canonical application: making duplicates nearly
        identical (a P-conscious transformation) must not break groups
        apart into unions of fragments."""
        relation = numbers_relation([0, 3, 100, 103, 500])
        params = DEParams.size(3, c=4.0)
        distance = absdiff_distance()
        original = DuplicateEliminator(distance, cache_distance=False).run(
            relation, params
        )
        squeezed = p_conscious_transform(
            distance, original.partition, shrink=0.01, grow=1.0
        )
        after = DuplicateEliminator(squeezed, cache_distance=False).run(
            relation, params
        )
        for group in after.partition:
            inside_old = set(original.partition.group_of(group[0]))
            assert set(group).issubset(inside_old) or after.partition.is_union_of_groups(
                group, original.partition
            )


class TestLemma4Richness:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(1, 4), min_size=2, max_size=8
        )
    )
    def test_realize_arbitrary_small_group_partitions(self, group_sizes):
        """Any partition into small groups is in the range of DE_S(K)."""
        groups = []
        next_id = 0
        for size in group_sizes:
            groups.append(list(range(next_id, next_id + size)))
            next_id += size
        target = Partition.from_groups(groups)
        relation, distance = realize_partition(target)
        k = max(group_sizes)
        c = float(k + 1)
        result = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(k, c=c)
        )
        assert result.partition == target

    def test_all_singletons_realizable(self):
        target = Partition.singletons(range(6))
        relation, distance = realize_partition(target)
        result = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(2, c=2.5)
        )
        assert result.partition == target
