"""Tests for the dataset profiler."""

import pytest

from repro.core.formulation import DEParams
from repro.core.nn_phase import prepare_nn_lists
from repro.eval.profile import profile_nn_relation
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation


def phase1(values, k=5):
    relation = numbers_relation(values)
    index = BruteForceIndex()
    index.build(relation, absdiff_distance())
    return prepare_nn_lists(relation, index, DEParams.size(k))


class TestProfile:
    def test_record_count(self):
        profile = profile_nn_relation(phase1([0, 1, 100, 101, 500]))
        assert profile.n_records == 5

    def test_ng_histogram_totals(self):
        profile = profile_nn_relation(phase1([0, 1, 100, 101, 500]))
        assert sum(profile.ng_histogram.values()) == 5

    def test_exact_duplicates_detected(self):
        profile = profile_nn_relation(phase1([7, 7, 100, 200]))
        assert profile.exact_duplicate_fraction == pytest.approx(0.5)

    def test_no_exact_duplicates(self):
        profile = profile_nn_relation(phase1([0, 50, 100]))
        assert profile.exact_duplicate_fraction == 0.0

    def test_sparse_and_family_fractions(self):
        # Pair (ng 2 each) + dense clump (interior ng 3) + isolated:
        profile = profile_nn_relation(phase1([0, 1, 500, 501, 502, 900]))
        assert 0.0 <= profile.sparse_fraction <= 1.0
        assert profile.sparse_fraction + profile.family_fraction <= 1.0

    def test_nn_quartiles_ordered(self):
        profile = profile_nn_relation(phase1(list(range(0, 100, 7))))
        q1, median, q3 = profile.nn_quartiles
        assert q1 <= median <= q3

    def test_suggested_c_covers_requested_fractions(self):
        profile = profile_nn_relation(
            phase1([0, 1, 100, 101, 500]), fractions=(0.2, 0.4)
        )
        assert set(profile.suggested_c) == {0.2, 0.4}
        assert all(c >= 2.0 for c in profile.suggested_c.values())

    def test_render_contains_key_lines(self):
        profile = profile_nn_relation(phase1([0, 1, 100, 101, 500]))
        text = profile.render()
        assert "records" in text
        assert "ng histogram:" in text
        assert "suggested SN thresholds:" in text

    def test_empty_relation(self):
        from repro.core.neighborhood import NNRelation

        profile = profile_nn_relation(NNRelation())
        assert profile.n_records == 0
        assert profile.suggested_c == {}
        assert profile.exact_duplicate_fraction == 0.0

    def test_profile_feeds_de_parameters(self):
        """The suggested c actually works as a DE parameter."""
        from repro.core.pipeline import DuplicateEliminator

        values = [0, 1, 100, 101, 500, 900]
        profile = profile_nn_relation(phase1(values), fractions=(0.3,))
        c = profile.suggested_c[0.3]
        relation = numbers_relation(values)
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(4, c=c)
        )
        assert result.partition is not None
