"""Edge-case coverage across modules."""


from repro.core.formulation import DEParams
from repro.core.nn_phase import prepare_nn_lists
from repro.core.pipeline import DuplicateEliminator
from repro.core.properties import is_p_conscious, p_conscious_transform
from repro.core.result import Partition
from repro.distances.base import FunctionDistance
from repro.eval.report import format_kv, format_table
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation


class TestNnPhaseDiameterSpec:
    def test_within_lists_respect_theta(self):
        relation = numbers_relation([0, 5, 12, 100])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        nn = prepare_nn_lists(relation, index, DEParams.diameter(0.01))
        # Record 0: only value 5 is within 10 units.
        assert nn.get(0).neighbor_ids == (1,)
        # Record 3 (value 100): nothing within 10 units.
        assert nn.get(3).neighbor_ids == ()

    def test_ng_correct_when_within_list_empty(self):
        # NG needs nn(v) even when the θ-list is empty: the index must
        # fall back to a 1-NN probe.
        relation = numbers_relation([0, 5, 100, 130])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        nn = prepare_nn_lists(relation, index, DEParams.diameter(0.01))
        # Record 2 (100): nn is 130 at 30 units; radius 60 covers 130
        # only -> ng = 2.
        assert nn.get(2).neighbor_ids == ()
        assert nn.get(2).ng == 2

    def test_sequential_and_random_orders_cover_all(self):
        relation = numbers_relation([3, 1, 2])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        for order in ("sequential", "random"):
            nn = prepare_nn_lists(
                relation, index, DEParams.size(2), order=order
            )
            assert nn.ids() == [0, 1, 2]


class TestPConsciousNegative:
    def test_detects_violations(self):
        relation = numbers_relation([0, 1, 50])
        partition = Partition.from_groups([[0, 1], [2]])
        base = absdiff_distance()

        # A transformation that *stretches* a within-group distance is
        # not P-conscious.
        def stretched(a, b):
            d = base.distance(a, b)
            if {a.rid, b.rid} == {0, 1}:
                return min(1.0, d * 3)
            return d

        bad = FunctionDistance(stretched)
        assert not is_p_conscious(relation, base, bad, partition)

    def test_valid_transform_passes(self):
        relation = numbers_relation([0, 1, 50])
        partition = Partition.from_groups([[0, 1], [2]])
        base = absdiff_distance()
        good = p_conscious_transform(base, partition, shrink=0.9, grow=1.1)
        assert is_p_conscious(relation, base, good, partition)


class TestReportEdges:
    def test_empty_table(self):
        text = format_table(("a", "b"), [])
        assert "a" in text
        assert len(text.splitlines()) == 2  # header + rule, no rows

    def test_kv_empty(self):
        assert format_kv({}) == ""

    def test_table_handles_numeric_cells(self):
        text = format_table(("n",), [(1234,)])
        assert "1234" in text


class TestDEResultSurface:
    def test_duplicate_groups_excludes_singletons(self):
        relation = numbers_relation([0, 1, 500])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(2, c=3.0)
        )
        assert result.duplicate_groups == [(0, 1)]
        assert len(result.partition) == 2

    def test_params_echoed(self):
        relation = numbers_relation([0, 1])
        params = DEParams.size(2, c=2.5)
        result = DuplicateEliminator(absdiff_distance()).run(relation, params)
        assert result.params == params


class TestMergeEdges:
    def test_empty_partition(self):
        from repro.core.merge import merge_partition
        from repro.data.schema import Relation

        relation = Relation.from_strings("r", [])
        merged = merge_partition(relation, Partition.singletons([]))
        assert len(merged.golden) == 0
        assert merged.lineage == {}

    def test_all_singletons_identity_modulo_ids(self):
        from repro.core.merge import merge_partition

        relation = numbers_relation([5, 7, 9])
        merged = merge_partition(relation, Partition.singletons([0, 1, 2]))
        assert merged.golden.texts() == relation.texts()


class TestCachedDoubleWrapAvoidance:
    def test_pipeline_does_not_rewrap(self):
        from repro.distances.base import CachedDistance
        from repro.distances.edit import EditDistance

        cached = CachedDistance(EditDistance())
        solver = DuplicateEliminator(cached)
        assert solver.distance is cached
