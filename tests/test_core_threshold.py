"""Tests for the SN threshold heuristic (paper section 4.4)."""

import pytest

from repro.core.threshold import estimate_sn_threshold


class TestValidation:
    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            estimate_sn_threshold([], 0.3)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            estimate_sn_threshold([2, 3], 0.0)
        with pytest.raises(ValueError):
            estimate_sn_threshold([2, 3], 1.0)


class TestSpikeDetection:
    def test_ideal_bimodal_distribution(self):
        # 30% duplicates at ng=2, 70% uniques at ng=5.
        ng = [2] * 30 + [5] * 70
        estimate = estimate_sn_threshold(ng, 0.3)
        assert estimate.spike_found
        assert estimate.ng_value == 2
        assert estimate.c == 3.0

    def test_threshold_admits_duplicates_strictly(self):
        # The returned c used as "ng < c" must accept the duplicate mass.
        ng = [2] * 30 + [5] * 70
        estimate = estimate_sn_threshold(ng, 0.3)
        assert all(value < estimate.c for value in ng if value == 2)
        assert all(not (value < estimate.c) for value in ng if value == 5)

    def test_spike_slightly_off_estimate(self):
        # True duplicate fraction 0.34, user says 0.30: window catches it.
        ng = [2] * 34 + [6] * 66
        estimate = estimate_sn_threshold(ng, 0.30)
        assert estimate.spike_found
        assert estimate.ng_value == 2

    def test_least_spike_in_window_wins(self):
        # Two spikes inside the window: the smaller NG value is chosen.
        ng = [2] * 28 + [3] * 30 + [9] * 42
        estimate = estimate_sn_threshold(ng, 0.3, window=0.3)
        assert estimate.ng_value == 2

    def test_fallback_without_spike(self):
        # Uniform-ish NG values: no mass exceeds the spike threshold in
        # the window, so fall back to D^{-1}(f + window).
        ng = list(range(1, 101))  # each value has mass 0.01
        estimate = estimate_sn_threshold(ng, 0.3)
        assert not estimate.spike_found
        assert estimate.cumulative >= 0.35

    def test_fallback_all_mass_below_window(self):
        # Every tuple has the same NG and cumulative jumps straight to 1.
        estimate = estimate_sn_threshold([4] * 50, 0.3)
        assert estimate.ng_value == 4
        assert estimate.c == 5.0

    def test_cumulative_reported(self):
        ng = [2] * 50 + [8] * 50
        estimate = estimate_sn_threshold(ng, 0.5, window=0.05)
        assert estimate.cumulative == pytest.approx(0.5)


class TestSpikeWindowStraddle:
    """Regression tests: a spike whose cumulative interval straddles the
    window must anchor the threshold (it used to fall to the fallback,
    which only coincidentally picked the same value)."""

    def test_spike_mass_straddling_the_window(self):
        # ng=2 covers cumulative (0, 0.8]; the window around f=0.3 is
        # [0.25, 0.35], strictly inside that jump.  Point membership of
        # D(2)=0.8 fails, interval overlap succeeds.
        ng = [2] * 80 + [9] * 20
        estimate = estimate_sn_threshold(ng, 0.3)
        assert estimate.spike_found
        assert estimate.ng_value == 2
        assert estimate.c == 3.0

    def test_partial_overlap_from_below(self):
        # ng=2 covers (0.04, 0.64]: enters the window from below and
        # exits above it.
        ng = [1] * 2 + [2] * 30 + [9] * 18
        estimate = estimate_sn_threshold(ng, 0.3)
        assert estimate.spike_found
        assert estimate.ng_value == 2

    def test_spike_entirely_outside_window_still_ignored(self):
        # Sub-spike masses tile the window [0.45, 0.55]; the two big
        # spikes end below it / start above it.  Interval semantics
        # must not over-match onto either.
        ng = [2] * 40 + [5, 6, 7, 8, 9, 10] * 3 + [20] * 42
        estimate = estimate_sn_threshold(ng, 0.5, window=0.05)
        assert not estimate.spike_found

    @pytest.mark.parametrize("window", [-0.01, 0.5, 1.0])
    def test_invalid_window_rejected(self, window):
        with pytest.raises(ValueError, match="window"):
            estimate_sn_threshold([2, 3], 0.3, window=window)

    @pytest.mark.parametrize("spike", [0.0, -1.0])
    def test_invalid_spike_rejected(self, spike):
        with pytest.raises(ValueError, match="spike"):
            estimate_sn_threshold([2, 3], 0.3, spike=spike)


class TestEndToEnd:
    def test_heuristic_on_dataset_ng_values(self, restaurants_dataset):
        """The estimated c separates duplicates from dense uniques."""
        from repro.core.formulation import DEParams
        from repro.core.nn_phase import prepare_nn_lists
        from repro.distances.base import CachedDistance
        from repro.distances.edit import EditDistance
        from repro.index.bruteforce import BruteForceIndex

        relation = restaurants_dataset.relation
        index = BruteForceIndex()
        index.build(relation, CachedDistance(EditDistance()))
        nn = prepare_nn_lists(relation, index, DEParams.size(5))
        f = restaurants_dataset.gold.duplicate_fraction()
        estimate = estimate_sn_threshold(nn.ng_values(), f)
        assert 2.0 <= estimate.c <= 10.0
