"""Property-based tests for Partition invariants."""

from math import comb

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import Partition


@st.composite
def partitions(draw):
    """Random partitions of a prefix of the integers."""
    n = draw(st.integers(1, 30))
    labels = draw(
        st.lists(st.integers(0, 8), min_size=n, max_size=n)
    )
    groups: dict[int, list[int]] = {}
    for rid, label in enumerate(labels):
        groups.setdefault(label, []).append(rid)
    return Partition.from_groups(groups.values())


class TestPartitionInvariants:
    @given(partitions())
    def test_groups_disjoint_and_cover(self, partition):
        seen = set()
        for group in partition:
            for rid in group:
                assert rid not in seen
                seen.add(rid)
        assert sorted(seen) == partition.ids()

    @given(partitions())
    def test_canonical_ordering(self, partition):
        firsts = [group[0] for group in partition.groups]
        assert firsts == sorted(firsts)
        for group in partition.groups:
            assert list(group) == sorted(group)

    @given(partitions())
    def test_pair_count_formula(self, partition):
        expected = sum(comb(len(group), 2) for group in partition)
        assert len(partition.duplicate_pairs()) == expected

    @given(partitions())
    def test_group_of_consistency(self, partition):
        for group in partition:
            for rid in group:
                assert partition.group_of(rid) == group

    @given(partitions())
    def test_same_group_iff_shared_pair(self, partition):
        pairs = partition.duplicate_pairs()
        ids = partition.ids()
        for a in ids[:10]:
            for b in ids[:10]:
                if a < b:
                    assert partition.same_group(a, b) == ((a, b) in pairs)

    @given(partitions())
    def test_singletons_refine_everything(self, partition):
        singles = Partition.singletons(partition.ids())
        assert singles.refines(partition)

    @given(partitions())
    def test_refines_is_reflexive(self, partition):
        assert partition.refines(partition)

    @settings(max_examples=30)
    @given(partitions(), partitions())
    def test_union_of_groups_detection(self, fine, coarse):
        # For any group of `fine` that happens to be a union of whole
        # groups of `coarse`, is_union_of_groups must agree.
        if fine.ids() != coarse.ids():
            return
        for group in fine:
            members = set(group)
            union = set()
            ok = True
            for rid in group:
                other = set(coarse.group_of(rid))
                if not other.issubset(members):
                    ok = False
                    break
                union |= other
            expected = ok and union == members
            assert fine.is_union_of_groups(group, coarse) == expected
