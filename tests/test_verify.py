"""Tests for the runtime invariant-verification subsystem.

The core design is mutation-style: run the pipeline on a real dataset,
corrupt the known-good :class:`DEResult` in one targeted way, and
assert the corruption is flagged by exactly the check built to catch
it (with unrelated checks staying green).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.core.pipeline import DuplicateEliminator
from repro.core.result import Partition
from repro.data.embedded import table1_relation
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance
from repro.eval.pr_curve import QualitySweeper
from repro.verify import (
    CHECKS,
    VerificationError,
    check_cross_path,
    run_paths,
    summarize,
    verify_paths,
    verify_result,
)

PARAMS = DEParams.size(5, c=4.0)


@pytest.fixture(scope="module")
def good(restaurants_dataset):
    """A known-good run (with CSPairs kept) and its inputs."""
    distance = CachedDistance(EditDistance())
    solver = DuplicateEliminator(distance, keep_cs_pairs=True)
    result = solver.run(restaurants_dataset.relation, PARAMS)
    assert result.partition.non_trivial_groups(), "fixture needs duplicates"
    return result, restaurants_dataset.relation, distance


def mutate_nn(result, rid, **changes):
    """A copy of ``result`` with one NN entry's fields replaced."""
    entries = {entry.rid: entry for entry in result.nn_relation}
    entries[rid] = replace(entries[rid], **changes)
    return replace(result, nn_relation=NNRelation(entries), verification=None)


class TestKnownGoodResult:
    def test_every_check_passes(self, good):
        result, relation, distance = good
        report = verify_result(result, relation, distance)
        assert report.ok
        assert [check.name for check in report.checks] == list(CHECKS)
        assert not any(check.skipped for check in report.checks)

    def test_missing_distance_skips_distance_checks(self, good):
        result, relation, _ = good
        report = verify_result(result, relation, None)
        assert report.ok
        for name in ("compact-set", "maximality", "nn-parity"):
            assert report.get(name).skipped

    def test_unknown_check_name_rejected(self, good):
        result, relation, distance = good
        with pytest.raises(ValueError, match="unknown checks"):
            verify_result(result, relation, distance, checks=("partition", "nope"))

    def test_summarize_is_json_shaped(self, good):
        result, relation, distance = good
        digest = summarize(verify_result(result, relation, distance))
        assert digest["ok"] is True
        assert digest["failed"] == []
        assert digest["n_checks"] == len(CHECKS)


class TestMutations:
    def test_member_swapped_across_groups_fails_compact_set(self, good):
        result, relation, distance = good
        groups = [list(group) for group in result.partition.groups]
        src = next(i for i, g in enumerate(groups) if len(g) >= 2)
        dst = next(i for i, g in enumerate(groups) if i != src and len(g) == 1)
        groups[dst].append(groups[src].pop())
        mutated = replace(
            result, partition=Partition.from_groups(groups), verification=None
        )
        report = verify_result(mutated, relation, distance)
        assert not report.ok
        assert "compact-set" in report.failed_names()
        assert report.get("partition").passed  # still a valid partition

    def test_inflated_ng_fails_sn_bound(self, good):
        result, relation, distance = good
        rid = result.partition.non_trivial_groups()[0][0]
        mutated = mutate_nn(result, rid, ng=100)
        report = verify_result(mutated, relation, distance)
        assert "sn-bound" in report.failed_names()
        violation = report.get("sn-bound").violations[0]
        assert rid in violation.subject
        assert report.get("partition").passed

    def test_corrupted_cspair_flag_caught_only_by_cspairs(self, good):
        result, relation, distance = good
        pairs = list(result.cs_pairs)
        target = next(i for i, p in enumerate(pairs) if p.flags)
        flags = pairs[target].flags
        pairs[target] = replace(pairs[target], flags=(not flags[0], *flags[1:]))
        mutated = replace(result, cs_pairs=pairs, verification=None)
        report = verify_result(mutated, relation, distance)
        # The reproducible check re-derives reference rows from the NN
        # relation, so the corruption stays confined to the one check.
        assert report.failed_names() == ["cspairs"]

    def test_oversized_group_fails_cut_spec(self, good):
        result, relation, distance = good
        merged, rest = [], []
        for group in result.partition.groups:
            if len(merged) <= PARAMS.cut.k:
                merged.extend(group)
            else:
                rest.append(group)
        assert len(merged) > PARAMS.cut.k
        mutated = replace(
            result,
            partition=Partition.from_groups([merged, *rest]),
            verification=None,
        )
        report = verify_result(mutated, relation, distance)
        assert "cut-spec" in report.failed_names()
        assert f"exceeds the bound K = {PARAMS.cut.k}" in (
            report.get("cut-spec").violations[0].message
        )

    def test_dropped_record_fails_partition(self, good):
        result, relation, distance = good
        dropped = next(g[0] for g in result.partition.groups if len(g) == 1)
        groups = [g for g in result.partition.groups if g != (dropped,)]
        mutated = replace(
            result, partition=Partition.from_groups(groups), verification=None
        )
        report = verify_result(mutated, relation, distance)
        assert "partition" in report.failed_names()
        assert (dropped,) in [
            v.subject for v in report.get("partition").violations
        ]

    def test_split_group_fails_only_maximality(self, good):
        result, relation, distance = good
        pair = next(g for g in result.partition.groups if len(g) == 2)
        groups = [g for g in result.partition.groups if g != pair]
        groups += [(pair[0],), (pair[1],)]
        mutated = replace(
            result, partition=Partition.from_groups(groups), verification=None
        )
        # Splitting a valid group breaks nothing *inside* any group, so
        # with reproducibility (a partition-equality check) set aside,
        # maximality is the only detector of the missed merge.
        report = verify_result(
            mutated, relation, distance, expect_reproducible=False
        )
        assert report.failed_names() == ["maximality"]
        assert tuple(sorted(pair)) in [
            v.subject for v in report.get("maximality").violations
        ]

    def test_corrupted_nn_distance_fails_nn_parity(self, good):
        result, relation, distance = good
        entry = next(iter(result.nn_relation))
        neighbors = (
            replace(entry.neighbors[0], distance=entry.neighbors[0].distance + 1.0),
            *entry.neighbors[1:],
        )
        mutated = mutate_nn(result, entry.rid, neighbors=neighbors)
        # sample >= n guarantees the corrupted record is spot-checked.
        report = verify_result(
            mutated, relation, distance, sample=len(relation)
        )
        assert "nn-parity" in report.failed_names()
        assert report.get("partition").passed

    def test_strict_mode_raises_with_report_attached(self, good):
        result, relation, distance = good
        mutated = mutate_nn(result, result.partition.groups[0][0], ng=100)
        with pytest.raises(VerificationError) as excinfo:
            verify_result(mutated, relation, distance, strict=True)
        assert "sn-bound" in excinfo.value.report.failed_names()
        assert "sn-bound" in str(excinfo.value)


class TestPipelineIntegration:
    def test_verify_true_attaches_passing_report(self, good):
        _, relation, distance = good
        solver = DuplicateEliminator(distance, verify=True)
        result = solver.run(relation, PARAMS)
        assert result.verification is not None
        assert result.verification.ok
        assert result.cs_pairs is not None  # verify implies keep_cs_pairs

    def test_invalid_verify_mode_rejected(self, good):
        _, _, distance = good
        with pytest.raises(ValueError, match="verify must be"):
            DuplicateEliminator(distance, verify="loud")

    def test_postprocessed_run_gets_reduced_check_list(self, good):
        _, relation, distance = good
        solver = DuplicateEliminator(distance, minimal=True, verify=True)
        result = solver.run(relation, PARAMS)
        assert result.verification.ok
        names = [check.name for check in result.verification.checks]
        assert names == ["partition", "cut-spec", "nn-parity"]

    def test_sweeper_self_check_accepts_good_runs(self, restaurants_dataset):
        sweeper = QualitySweeper(
            restaurants_dataset, EditDistance(), k_max=6, verify=True
        )
        sweep = sweeper.sweep_de_size([3, 5], c=4.0)
        assert len(sweep.points) == 2


class TestCrossPath:
    def test_verify_paths_all_green_on_table1(self):
        report = verify_paths(
            table1_relation(), EditDistance(), DEParams.size(5, c=4.0)
        )
        assert report.ok
        assert "cross-path" in report
        assert report.get("cross-path").checked == 10

    def test_cross_path_flags_divergent_partition(self):
        relation = table1_relation()
        results = run_paths(relation, EditDistance(), DEParams.size(5, c=4.0))
        name = list(results)[-1]
        results[name] = replace(
            results[name],
            partition=Partition.singletons(relation.ids()),
            verification=None,
        )
        outcome = check_cross_path(results)
        assert not outcome.passed
        assert any(name in v.message for v in outcome.violations)
