"""Tests for the command-line interface."""

import csv
import io

import pytest

from repro.cli import build_parser, main
from repro.data.loaders import load_dataset, relation_to_csv


@pytest.fixture
def org_csv(tmp_path):
    dataset = load_dataset("org", n_entities=25, duplicate_fraction=0.4, seed=3)
    path = tmp_path / "org.csv"
    relation_to_csv(dataset.relation, path)
    return path, dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dedup_defaults(self):
        args = build_parser().parse_args(["dedup", "file.csv"])
        assert args.distance == "fms"
        assert args.k == 5
        assert args.theta is None

    def test_unknown_distance_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dedup", "f.csv", "--distance", "nope"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "media"])


class TestDedup:
    def test_prints_groups(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(["dedup", str(path), "--distance", "edit", "--k", "3"], out=out)
        assert code == 0
        assert "duplicate group(s) found" in out.getvalue()

    def test_stats_flag_reports_phase1_costs(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            [
                "dedup", str(path),
                "--distance", "edit",
                "--index", "qgram",
                "--workers", "2",
                "--stats",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "phase 1 [qgram]:" in text
        assert "pairs pruned" in text
        assert "distance evaluations" in text

    def test_writes_assignment_csv(self, org_csv, tmp_path):
        path, _ = org_csv
        output = tmp_path / "groups.csv"
        out = io.StringIO()
        code = main(
            [
                "dedup",
                str(path),
                "--distance",
                "edit",
                "--output",
                str(output),
            ],
            out=out,
        )
        assert code == 0
        rows = list(csv.reader(output.open()))
        assert rows[0] == ["rid", "group_id"]
        assert len(rows) > 1  # at least one duplicate group

    def test_singletons_flag_includes_everything(self, org_csv, tmp_path):
        path, dataset = org_csv
        output = tmp_path / "groups.csv"
        main(
            [
                "dedup",
                str(path),
                "--distance",
                "edit",
                "--output",
                str(output),
                "--singletons",
            ],
            out=io.StringIO(),
        )
        rows = list(csv.reader(output.open()))[1:]
        assert len(rows) == len(dataset.relation)

    def test_diameter_mode(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["dedup", str(path), "--distance", "edit", "--theta", "0.2"], out=out
        )
        assert code == 0

    def test_qgram_index(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["dedup", str(path), "--distance", "edit", "--index", "qgram"], out=out
        )
        assert code == 0


class TestGenerate:
    def test_generates_csv_and_gold(self, tmp_path):
        output = tmp_path / "data.csv"
        gold = tmp_path / "gold.csv"
        out = io.StringIO()
        code = main(
            [
                "generate",
                "birds",
                "--entities",
                "20",
                "--output",
                str(output),
                "--gold",
                str(gold),
            ],
            out=out,
        )
        assert code == 0
        data_rows = list(csv.reader(output.open()))
        gold_rows = list(csv.reader(gold.open()))
        assert data_rows[0] == ["name"]
        assert gold_rows[0] == ["rid", "entity"]
        assert len(data_rows) == len(gold_rows)  # header + n rows each


class TestEstimate:
    def test_reports_threshold(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["estimate-c", str(path), "--fraction", "0.4", "--distance", "edit"],
            out=out,
        )
        assert code == 0
        assert "suggested SN threshold: c =" in out.getvalue()

    @pytest.mark.parametrize(
        "flag,value", [("--window", "0.7"), ("--window", "-0.1"), ("--spike", "0")]
    )
    def test_invalid_heuristic_parameters_exit_2(self, org_csv, capsys, flag, value):
        path, _ = org_csv
        code = main(
            ["estimate-c", str(path), "--fraction", "0.4", flag, value],
            out=io.StringIO(),
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestVerifyCommand:
    def test_embedded_suite_all_green(self):
        out = io.StringIO()
        code = main(["verify"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "all invariants hold" in text
        assert "table1" in text and "integers" in text
        assert "cross-path" in text

    def test_generated_dataset_target(self):
        out = io.StringIO()
        code = main(
            [
                "verify",
                "--dataset", "restaurants",
                "--entities", "25",
                "--distance", "edit",
                "--sample", "4",
            ],
            out=out,
        )
        assert code == 0
        assert "verification of" in out.getvalue()

    def test_csv_target(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["verify", str(path), "--distance", "edit", "--sample", "4"], out=out
        )
        assert code == 0

    def test_dedup_verify_flag_reports(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["dedup", str(path), "--distance", "edit", "--verify"], out=out
        )
        assert code == 0
        assert "verification" in out.getvalue()
        assert "OK" in out.getvalue()


class TestMoreIndexes:
    def test_pivot_index_available(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["dedup", str(path), "--distance", "jaccard", "--index", "pivot"],
            out=out,
        )
        assert code == 0

    def test_minhash_index_available(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            ["dedup", str(path), "--distance", "jaccard", "--index", "minhash"],
            out=out,
        )
        assert code == 0


class TestParallelDedup:
    def test_workers_flag_matches_sequential_output(self, org_csv, tmp_path):
        path, _ = org_csv
        sequential = tmp_path / "seq.csv"
        parallel = tmp_path / "par.csv"
        base = ["dedup", str(path), "--distance", "edit", "--output"]
        assert main(base + [str(sequential)], out=io.StringIO()) == 0
        assert (
            main(
                base + [str(parallel), "--workers", "3"],
                out=io.StringIO(),
            )
            == 0
        )
        assert sequential.read_text() == parallel.read_text()

    def test_workers_flag_defaults(self):
        args = build_parser().parse_args(["dedup", "f.csv"])
        assert args.workers == 1
        assert args.pool == "thread"


class TestBenchPhase1Command:
    def test_writes_json_and_table(self, tmp_path):
        output = tmp_path / "BENCH_phase1.json"
        out = io.StringIO()
        code = main(
            [
                "bench-phase1",
                "--dataset",
                "org",
                "--distance",
                "edit",
                "--sizes",
                "25",
                "--workers",
                "1,2",
                "--output",
                str(output),
            ],
            out=out,
        )
        assert code == 0
        assert output.exists()
        assert "BENCH_phase1" in out.getvalue()
        assert "speedup" in out.getvalue()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench-phase1"])
        assert args.sizes == "500,1000,2000"
        assert args.workers == "1,2,4"
        assert args.output == "BENCH_phase1.json"
        assert args.verify is False
        assert args.indexes is None
        assert args.min_recall is None

    def test_index_flag_is_repeatable_and_validated(self):
        args = build_parser().parse_args(
            ["bench-phase1", "--index", "minhash", "--index", "qgram"]
        )
        assert args.indexes == ["minhash", "qgram"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench-phase1", "--index", "nope"])

    def test_min_recall_requires_index(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "bench-phase1",
                "--sizes", "20",
                "--workers", "1",
                "--min-recall", "0.9",
                "--output", str(tmp_path / "b.json"),
            ],
            out=out,
        )
        assert code == 2
        assert "--min-recall requires" in out.getvalue()

    def test_index_matrix_and_min_recall(self, tmp_path):
        import json

        output = tmp_path / "BENCH_phase1.json"
        out = io.StringIO()
        code = main(
            [
                "bench-phase1",
                "--dataset", "org",
                "--distance", "edit",
                "--sizes", "25",
                "--workers", "1",
                "--index", "qgram",
                "--min-recall", "0.5",
                "--recall-sample", "10",
                "--output", str(output),
            ],
            out=out,
        )
        assert code == 0
        assert "index matrix" in out.getvalue()
        assert "sampled NN recall >= 0.5" in out.getvalue()
        payload = json.loads(output.read_text())
        (matrix,) = payload["index_matrix"]
        assert [row["index"] for row in matrix["rows"]] == ["brute", "qgram"]
        assert all("skipped" not in row for row in matrix["rows"])

    def test_min_recall_failure_exits_nonzero(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "bench-phase1",
                "--dataset", "org",
                "--distance", "edit",
                "--sizes", "25",
                "--workers", "1",
                "--index", "qgram",
                # An unreachable bar: mean recall can never exceed 1.0.
                "--min-recall", "1.1",
                "--recall-sample", "5",
                "--output", str(tmp_path / "b.json"),
            ],
            out=out,
        )
        assert code == 1
        assert "recall below 1.1" in out.getvalue()

    def test_verify_flag_records_summary(self, tmp_path):
        import json

        output = tmp_path / "BENCH_phase1.json"
        out = io.StringIO()
        code = main(
            [
                "bench-phase1",
                "--dataset", "org",
                "--distance", "edit",
                "--sizes", "25",
                "--workers", "1",
                "--output", str(output),
                "--verify",
            ],
            out=out,
        )
        assert code == 0
        assert "invariant verification: OK" in out.getvalue()
        payload = json.loads(output.read_text())
        assert payload["verification"]["ok"] is True
        assert payload["verification"]["failed"] == []


class TestServe:
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(
            "# online serving smoke trace\n"
            "add,cascade systems\n"
            "add,cascade sistems\n"
            "\n"
            "add,granite manufacturing\n"
            "remove,1\n"
        )
        return path

    def test_serve_trace_prints_decisions(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["serve", str(self.trace_file(tmp_path)), "--distance", "edit"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "#1 add [0] canonical" in text
        assert "duplicate of [0]" in text
        assert "#4 remove [1]" in text
        assert "served 4 operation(s); 2 live record(s)" in text

    def test_serve_csv_groups_match_batch_dedup(self, org_csv, tmp_path):
        path, _ = org_csv
        serve_groups = tmp_path / "serve_groups.csv"
        dedup_groups = tmp_path / "dedup_groups.csv"
        out = io.StringIO()
        assert (
            main(
                [
                    "serve", str(path), "--from-csv",
                    "--distance", "edit",
                    "--groups", str(serve_groups),
                    "--singletons", "--quiet",
                ],
                out=out,
            )
            == 0
        )
        assert (
            main(
                [
                    "dedup", str(path),
                    "--distance", "edit",
                    "--output", str(dedup_groups),
                    "--singletons",
                ],
                out=io.StringIO(),
            )
            == 0
        )
        assert serve_groups.read_text() == dedup_groups.read_text()

    def test_serve_verify_passes_in_exact_mode(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "serve", str(self.trace_file(tmp_path)),
                "--distance", "edit",
                "--quiet", "--verify",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "incremental-partition-parity" in text
        assert "FAIL" not in text

    def test_serve_verify_with_minhash_is_a_config_error(self, tmp_path):
        code = main(
            [
                "serve", str(self.trace_file(tmp_path)),
                "--distance", "edit",
                "--candidates", "minhash",
                "--verify", "--quiet",
            ],
            out=io.StringIO(),
        )
        assert code == 2

    def test_serve_store_requires_minhash(self, tmp_path):
        code = main(
            [
                "serve", str(self.trace_file(tmp_path)),
                "--distance", "edit",
                "--store", str(tmp_path / "p.json"),
            ],
            out=io.StringIO(),
        )
        assert code == 2

    def test_serve_minhash_store_round_trip(self, tmp_path):
        store = tmp_path / "postings.json"
        args = [
            "serve", str(self.trace_file(tmp_path)),
            "--distance", "edit",
            "--candidates", "minhash",
            "--store", str(store),
            "--quiet", "--stats",
        ]
        cold = io.StringIO()
        assert main(args, out=cold) == 0
        assert store.exists()
        assert "cold" in cold.getvalue()
        warm = io.StringIO()
        assert main(args, out=warm) == 0
        # The replayed trace re-uses every persisted signature; only
        # rid 1 — tombstoned by the trace's remove before the snapshot
        # was written — hashes again.
        assert "restored, 1 hashed this session" in warm.getvalue()

    def test_serve_malformed_trace_is_a_usage_error(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("upsert,huh\n")
        code = main(
            ["serve", str(path), "--distance", "edit"], out=io.StringIO()
        )
        assert code == 2

    def test_serve_remove_every_synthesizes_removals(self, org_csv):
        path, _ = org_csv
        out = io.StringIO()
        code = main(
            [
                "serve", str(path), "--from-csv",
                "--distance", "edit",
                "--remove-every", "5",
                "--quiet", "--verify",
            ],
            out=out,
        )
        assert code == 0
        assert "FAIL" not in out.getvalue()


class TestBenchIncremental:
    def test_small_run_writes_artifact_and_passes_checksums(self, tmp_path):
        import json

        output = tmp_path / "BENCH_incremental.json"
        out = io.StringIO()
        code = main(
            [
                "bench-incremental",
                "--entities", "20",
                "--distance", "edit",
                "--checkpoints", "12,24",
                "--remove-every", "6",
                "--output", str(output),
                "--check",
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        text = out.getvalue()
        assert "checksums agree" in text
        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "incremental_serving"
        assert payload["n_removes"] > 0
        assert all(row["checksum_match"] for row in payload["checkpoints"])
