"""Property tests for the inverted index's filter-verify fast path.

The q-gram count filter and the banded DP are *filters*: they may only
reject candidates that are provably outside the query bound.  These
tests check soundness against a fast-path-free twin of the index on
random string relations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Relation
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance
from repro.index.inverted import QgramInvertedIndex

strings = st.lists(
    st.text(alphabet="abcd ", min_size=1, max_size=14),
    min_size=3,
    max_size=14,
    unique=True,
)


def build_pair(words, **kwargs):
    """The same index with and without the edit fast path."""
    relation = Relation.from_strings("r", words)
    fast = QgramInvertedIndex(**kwargs)
    fast.build(relation, EditDistance())
    slow = QgramInvertedIndex(**kwargs)
    slow.build(relation, CachedDistance(EditDistance()))
    slow._edit_fast_path = False  # force the plain evaluation path
    return relation, fast, slow


class TestFastPathSoundness:
    @settings(max_examples=40, deadline=None)
    @given(strings, st.integers(1, 5))
    def test_knn_identical_with_and_without_fast_path(self, words, k):
        relation, fast, slow = build_pair(words)
        for record in relation:
            got = [(n.rid, pytest.approx(n.distance)) for n in fast.knn(record, k)]
            want = [(n.rid, pytest.approx(n.distance)) for n in slow.knn(record, k)]
            assert got == want

    @settings(max_examples=40, deadline=None)
    @given(strings, st.floats(0.05, 0.9))
    def test_within_identical_with_and_without_fast_path(self, words, radius):
        relation, fast, slow = build_pair(words)
        for record in relation:
            got = [n.rid for n in fast.within(record, radius)]
            want = [n.rid for n in slow.within(record, radius)]
            assert got == want

    @settings(max_examples=25, deadline=None)
    @given(strings)
    def test_ng_identical_with_and_without_fast_path(self, words):
        relation, fast, slow = build_pair(words)
        for record in relation:
            assert fast.neighborhood_growth(record) == slow.neighborhood_growth(
                record
            )

    @settings(max_examples=25, deadline=None)
    @given(strings, st.floats(0.05, 0.6))
    def test_stop_gram_skipping_stays_sound(self, words, radius):
        """With an aggressive max_df, the count filter must still never
        reject a candidate that shares enough (skipped) grams."""
        relation, fast, slow = build_pair(words, max_df=2)
        for record in relation:
            got = [n.rid for n in fast.within(record, radius)]
            want = [n.rid for n in slow.within(record, radius)]
            assert got == want

    def test_pair_cache_consistency(self):
        relation = Relation.from_strings(
            "r", ["golden dragon", "golden dragn", "jade palace"]
        )
        index = QgramInvertedIndex()
        index.build(relation, EditDistance())
        first = index.knn(relation.get(0), 2)
        second = index.knn(relation.get(0), 2)  # cache-served
        assert first == second

    def test_rebuild_clears_pair_cache(self):
        a = Relation.from_strings("a", ["aaa", "aab"])
        b = Relation.from_strings("b", ["zzz", "zzy"])
        index = QgramInvertedIndex()
        index.build(a, EditDistance())
        index.knn(a.get(0), 1)
        index.build(b, EditDistance())
        hits = index.knn(b.get(0), 1)
        assert hits[0].rid == 1
