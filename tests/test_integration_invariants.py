"""End-to-end invariants: DE output always satisfies the paper's spec.

These property-based tests connect the algorithm (NN lists + CSPairs +
partitioning) back to the *definitions* in section 2/3: every emitted
non-trivial group must be a compact set, an SN(AGG, c) group, and within
the cut specification — checked by brute force against the definitions,
not against the algorithm's own data structures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import group_diameter, is_compact_set, is_sn_group
from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.data.loaders import load_dataset
from repro.distances.edit import EditDistance

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=18, unique=True
)
c_strategy = st.sampled_from([2.0, 3.0, 4.0, 6.0])
agg_strategy = st.sampled_from(["max", "avg", "max2"])


class TestSizeSpecInvariants:
    @settings(max_examples=40, deadline=None)
    @given(values_strategy, st.integers(2, 6), c_strategy, agg_strategy)
    def test_groups_satisfy_all_criteria(self, values, k, c, agg):
        relation = numbers_relation(values)
        distance = absdiff_distance()
        params = DEParams.size(k, agg=agg, c=c)
        result = DuplicateEliminator(distance, cache_distance=False).run(
            relation, params
        )
        for group in result.partition.non_trivial_groups():
            assert len(group) <= k
            assert is_compact_set(relation, distance, group)
            assert is_sn_group(relation, distance, group, agg, c)

    @settings(max_examples=40, deadline=None)
    @given(values_strategy, st.integers(2, 6), c_strategy)
    def test_partition_covers_relation_exactly(self, values, k, c):
        relation = numbers_relation(values)
        result = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, DEParams.size(k, c=c)
        )
        assert result.partition.ids() == sorted(relation.ids())

    @settings(max_examples=30, deadline=None)
    @given(values_strategy)
    def test_maximality_no_group_extends(self, values):
        """No emitted pair group could have been a valid triple under
        the same anchor (greedy largest-first is respected): re-running
        with a larger K never yields smaller groups for the same c."""
        relation = numbers_relation(values)
        distance = absdiff_distance()
        small = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(2, c=4.0)
        )
        large = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(6, c=4.0)
        )
        # Every size-2 group found under K=2 is inside some group under K=6.
        for group in small.partition.non_trivial_groups():
            container = large.partition.group_of(group[0])
            assert set(group).issubset(set(container)) or len(container) == 1


class TestDiameterSpecInvariants:
    @settings(max_examples=40, deadline=None)
    @given(values_strategy, st.floats(0.005, 0.2), c_strategy, agg_strategy)
    def test_groups_satisfy_all_criteria(self, values, theta, c, agg):
        relation = numbers_relation(values)
        distance = absdiff_distance()
        params = DEParams.diameter(theta, agg=agg, c=c)
        result = DuplicateEliminator(distance, cache_distance=False).run(
            relation, params
        )
        for group in result.partition.non_trivial_groups():
            assert group_diameter(relation, distance, group) < theta
            assert is_compact_set(relation, distance, group)
            assert is_sn_group(relation, distance, group, agg, c)


class TestRealDatasetInvariants:
    @pytest.mark.parametrize("name", ["restaurants", "media", "census"])
    def test_string_dataset_groups_satisfy_criteria(self, name):
        dataset = load_dataset(name, n_entities=30, duplicate_fraction=0.4, seed=11)
        distance = EditDistance()
        params = DEParams.size(4, c=4.0)
        result = DuplicateEliminator(distance).run(dataset.relation, params)
        distance.prepare(dataset.relation)
        for group in result.partition.non_trivial_groups():
            assert len(group) <= 4
            assert is_compact_set(dataset.relation, distance, group)
            assert is_sn_group(dataset.relation, distance, group, "max", 4.0)

    def test_integers_example_needs_cut_spec(self):
        """The paper's section-3 example: with a permissive SN threshold
        and no effective cut, everything merges; the size cut prevents
        the degenerate single group."""
        from repro.data.embedded import integer_distance, integers_example

        relation = integers_example()
        distance = integer_distance()
        loose = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(7, c=20.0)
        )
        assert len(loose.partition.groups) == 1  # the degenerate outcome

        tight = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(3, c=20.0)
        )
        assert len(tight.partition.groups) > 1
