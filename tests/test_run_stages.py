"""Staged-pipeline tests: cross-path parity, telemetry, and the
engine-path edge cases (empty relation, all-singleton NN lists, a
buffer pool smaller than one table)."""

import pytest

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.index.bruteforce import BruteForceIndex
from repro.run.config import RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.run.spill import SpilledNNRelation
from repro.run.stats import RunStats

from tests.helpers import absdiff_distance, numbers_relation

VALUES = [7, 8, 9, 100, 101, 250, 400, 401, 402, 403, 600, 750, 900]
PARAMS = DEParams.size(3, c=2.5)


def staged_result(relation, params, **config_kwargs):
    """One staged run under a fresh context built from config kwargs."""
    config = RunConfig(**config_kwargs)
    context = RunContext.create(
        config, distance=absdiff_distance(), index=BruteForceIndex()
    )
    pipeline = StagedPipeline(context)
    return pipeline.run(relation, params), context


def groups(result):
    return [tuple(group) for group in result.partition.groups]


class TestCrossPathParity:
    """The four execution paths produce bit-identical partitions."""

    def reference(self, relation=None, params=PARAMS):
        relation = relation if relation is not None else numbers_relation(VALUES)
        result, _ = staged_result(relation, params)
        return relation, result

    def test_staged_matches_legacy_facade(self):
        relation, staged = self.reference()
        facade = DuplicateEliminator(absdiff_distance()).run(relation, PARAMS)
        assert groups(facade) == groups(staged)

    def test_engine_path_matches_in_memory(self):
        relation, expected = self.reference()
        result, _ = staged_result(relation, PARAMS, use_engine=True)
        assert groups(result) == groups(expected)
        assert not result.stats.spilled

    def test_spill_path_matches_in_memory(self):
        relation, expected = self.reference()
        result, context = staged_result(
            relation, PARAMS, use_engine=True, spill=True, buffer_pages=8
        )
        assert groups(result) == groups(expected)
        assert result.stats.spilled
        assert isinstance(result.nn_relation, SpilledNNRelation)
        # The spilled view reads back exactly the in-memory entries.
        assert list(result.nn_relation) == list(expected.nn_relation)

    def test_random_order_spill_resorts_out_of_core(self):
        # Random lookup order appends rids out of order, forcing the
        # rename + external-sort + drop path inside SpillStage.
        relation, expected = self.reference()
        result, context = staged_result(
            relation,
            PARAMS,
            use_engine=True,
            spill=True,
            buffer_pages=4,
            page_capacity=4,
            order="random",
            order_seed=13,
        )
        assert groups(result) == groups(expected)
        rids = [entry.rid for entry in result.nn_relation]
        assert rids == sorted(rids)
        # The scratch table from the resort is gone.
        assert "NN_Reln_unsorted" not in context.engine.catalog.names()


class TestEdgeCases:
    """Engine-path Phase 2 edge cases, each checked bit-identical
    against the in-memory path."""

    def test_empty_relation(self):
        relation = numbers_relation([])
        expected, _ = staged_result(relation, PARAMS)
        for extra in ({"use_engine": True}, {"use_engine": True, "spill": True}):
            result, _ = staged_result(relation, PARAMS, **extra)
            assert groups(result) == groups(expected) == []
            assert result.stats.n_cs_pairs == 0

    def test_all_singleton_nn_lists(self):
        # Points so far apart that no neighbor falls inside the radius:
        # every NN list is empty and every record is its own group.
        relation = numbers_relation([0, 1000, 2000, 3000, 4000])
        params = DEParams.diameter(0.001, c=2.0)
        expected, _ = staged_result(relation, params)
        assert all(len(group) == 1 for group in expected.partition.groups)
        for extra in ({"use_engine": True}, {"use_engine": True, "spill": True}):
            result, _ = staged_result(relation, params, **extra)
            assert groups(result) == groups(expected)
            assert all(not entry.neighbors for entry in result.nn_relation)

    def test_buffer_pool_smaller_than_table(self):
        # 40 rows at 2 rows/page need ~20 pages; a 2-page pool must
        # evict constantly, and the partition must not change.
        values = [base + offset for base in range(0, 4000, 100) for offset in (0, 1)]
        relation = numbers_relation(values)
        expected, _ = staged_result(relation, PARAMS)
        result, context = staged_result(
            relation,
            PARAMS,
            use_engine=True,
            spill=True,
            buffer_pages=2,
            page_capacity=2,
        )
        assert groups(result) == groups(expected)
        n_pages = context.engine.table("NN_Reln").n_pages
        assert n_pages > context.engine.buffer.capacity
        assert result.stats.buffer is not None
        assert result.stats.buffer.evictions > 0


class TestTelemetry:
    def test_stage_timings_recorded(self):
        result, context = staged_result(
            numbers_relation(VALUES), PARAMS, use_engine=True, spill=True
        )
        stats = result.stats
        assert [t.stage for t in stats.timings] == [
            "phase1", "spill", "cspairs", "partition", "postprocess"
        ]
        assert all(t.seconds >= 0.0 for t in stats.timings)
        assert stats.phase2_seconds == pytest.approx(
            sum(t.seconds for t in stats.timings if t.stage != "phase1")
        )
        assert context.last_stats is stats

    def test_stats_to_dict(self):
        result, _ = staged_result(
            numbers_relation(VALUES), PARAMS, use_engine=True, spill=True
        )
        payload = result.stats.to_dict()
        assert payload["spilled"] is True
        assert payload["n_cs_pairs"] == result.stats.n_cs_pairs
        assert {t["stage"] for t in payload["stages"]} >= {"phase1", "spill"}
        assert 0.0 <= payload["buffer"]["hit_ratio"] <= 1.0
        assert payload["distance_cache"]["calls"] >= 0

    def test_deprecated_result_accessors(self):
        result, _ = staged_result(numbers_relation(VALUES), PARAMS)
        assert result.phase1 is result.stats.phase1
        assert result.phase2_seconds == result.stats.phase2_seconds
        assert result.n_cs_pairs == result.stats.n_cs_pairs

    def test_verify_stage_attaches_report(self):
        result, _ = staged_result(
            numbers_relation(VALUES),
            PARAMS,
            use_engine=True,
            spill=True,
            verify="strict",
        )
        assert result.verification is not None
        assert result.verification.ok
        assert result.cs_pairs is not None  # verify implies keep_cs_pairs
