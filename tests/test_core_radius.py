"""Tests for generalized neighborhood radius functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.criteria import neighborhood_growth_brute
from repro.core.formulation import DEParams
from repro.core.nn_phase import prepare_nn_lists
from repro.core.radius import (
    AffineRadius,
    CappedRadius,
    LinearRadius,
    PowerRadius,
)
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation

unit_floats = st.floats(0.0, 1.0)


class TestRadiusFunctions:
    def test_linear_matches_paper(self):
        assert LinearRadius(2.0)(0.1) == pytest.approx(0.2)

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            LinearRadius(1.0)

    def test_affine_minimum_vicinity(self):
        fn = AffineRadius(p=2.0, delta=0.05)
        assert fn(0.0) == pytest.approx(0.05)

    def test_affine_validation(self):
        with pytest.raises(ValueError):
            AffineRadius(p=0.5)
        with pytest.raises(ValueError):
            AffineRadius(p=2.0, delta=-0.1)
        with pytest.raises(ValueError):
            AffineRadius(p=1.0, delta=0.0)

    def test_power_sublinear_for_gamma_above_one(self):
        fn = PowerRadius(p=2.0, gamma=2.0)
        assert fn(0.1) == pytest.approx(0.02)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            PowerRadius(p=0.0)
        with pytest.raises(ValueError):
            PowerRadius(gamma=0.0)

    def test_capped(self):
        fn = CappedRadius(LinearRadius(2.0), cap=0.3)
        assert fn(0.1) == pytest.approx(0.2)
        assert fn(0.5) == pytest.approx(0.3)

    def test_capped_validation(self):
        with pytest.raises(ValueError):
            CappedRadius(LinearRadius(2.0), cap=0.0)

    @given(unit_floats)
    def test_linear_equals_default_p(self, nn_d):
        assert LinearRadius(2.0)(nn_d) == pytest.approx(2.0 * nn_d)

    @given(unit_floats, unit_floats)
    def test_monotonicity(self, a, b):
        lo, hi = sorted((a, b))
        for fn in (
            LinearRadius(2.0),
            AffineRadius(2.0, 0.1),
            PowerRadius(2.0, 1.5),
            CappedRadius(LinearRadius(3.0), 0.4),
        ):
            assert fn(lo) <= fn(hi) + 1e-12

    def test_describe(self):
        assert LinearRadius(2.0).describe() == "2.0*nn"
        assert "min(" in CappedRadius(LinearRadius(2.0), 0.3).describe()


class TestWiring:
    def test_brute_growth_with_radius_fn(self):
        relation = numbers_relation([0, 10, 15, 100])
        # Linear p=2 for record 0: radius 20 covers 10, 15 -> ng 3.
        assert neighborhood_growth_brute(relation, absdiff_distance(), 0) == 3
        # Capped at 0.012 (12 units): covers only 10 -> ng 2.
        capped = CappedRadius(LinearRadius(2.0), cap=0.012)
        assert (
            neighborhood_growth_brute(
                relation, absdiff_distance(), 0, radius_fn=capped
            )
            == 2
        )

    def test_index_growth_with_radius_fn(self):
        relation = numbers_relation([0, 10, 15, 100])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        record = relation.get(0)
        assert index.neighborhood_growth(record) == 3
        capped = CappedRadius(LinearRadius(2.0), cap=0.012)
        assert index.neighborhood_growth(record, radius_fn=capped) == 2

    def test_index_matches_brute_for_radius_fn(self):
        relation = numbers_relation([0, 3, 9, 27, 81, 243])
        distance = absdiff_distance()
        index = BruteForceIndex()
        index.build(relation, distance)
        fn = AffineRadius(p=2.0, delta=0.01)
        for record in relation:
            assert index.neighborhood_growth(
                record, radius_fn=fn
            ) == neighborhood_growth_brute(
                relation, distance, record.rid, radius_fn=fn
            )

    def test_prepare_nn_lists_with_radius_fn(self):
        relation = numbers_relation([0, 10, 15, 100])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        params = DEParams.size(3)
        default = prepare_nn_lists(relation, index, params)
        capped = prepare_nn_lists(
            relation,
            index,
            params,
            radius_fn=CappedRadius(LinearRadius(2.0), cap=0.012),
        )
        assert default.get(0).ng == 3
        assert capped.get(0).ng == 2
        # NN lists themselves are unaffected by the radius function.
        assert default.get(0).neighbor_ids == capped.get(0).neighbor_ids


class TestPipelineWiring:
    def test_eliminator_accepts_radius_fn(self):
        from repro.core.formulation import DEParams
        from repro.core.pipeline import DuplicateEliminator

        relation = numbers_relation([0, 10, 15, 100])
        default = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=3.0)
        )
        capped = DuplicateEliminator(
            absdiff_distance(),
            radius_fn=CappedRadius(LinearRadius(2.0), cap=0.012),
        ).run(relation, DEParams.size(3, c=3.0))
        assert default.nn_relation.get(0).ng == 3
        assert capped.nn_relation.get(0).ng == 2
