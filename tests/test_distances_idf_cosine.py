"""Tests for IDF statistics and the IDF-weighted cosine distance."""

import pytest

from repro.data.schema import Record, Relation
from repro.distances.cosine import CosineDistance, cosine_similarity
from repro.distances.idf import IdfTable


def corpus(*texts):
    return Relation.from_strings("corpus", list(texts))


class TestIdfTable:
    def test_document_frequency(self):
        idf = IdfTable.from_relation(corpus("a b", "a c", "a d"))
        assert idf.document_frequency("a") == 3
        assert idf.document_frequency("b") == 1

    def test_unknown_token_gets_df_one(self):
        idf = IdfTable.from_relation(corpus("a b"))
        assert idf.document_frequency("zzz") == 1

    def test_rare_tokens_weigh_more(self):
        idf = IdfTable.from_relation(corpus("a b", "a c", "a d", "a e"))
        assert idf.weight("b") > idf.weight("a")

    def test_weight_positive(self):
        idf = IdfTable.from_relation(corpus("a", "a", "a"))
        assert idf.weight("a") > 0.0

    def test_token_counted_once_per_document(self):
        idf = IdfTable.from_relation(corpus("a a a", "b"))
        assert idf.document_frequency("a") == 1

    def test_vector_uses_term_frequency(self):
        idf = IdfTable.from_relation(corpus("a a b", "c"))
        vector = idf.vector("a a b")
        assert vector["a"] == pytest.approx(2 * idf.weight("a"))

    def test_contains_and_len(self):
        idf = IdfTable.from_relation(corpus("a b"))
        assert "a" in idf
        assert "zzz" not in idf
        assert len(idf) == 2

    def test_n_documents(self):
        idf = IdfTable.from_relation(corpus("a", "b", "c"))
        assert idf.n_documents == 3


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_scale_invariance(self):
        u = {"a": 1.0, "b": 3.0}
        v = {"a": 2.0, "b": 6.0}
        assert cosine_similarity(u, v) == pytest.approx(1.0)


class TestCosineDistance:
    def test_requires_prepare(self):
        d = CosineDistance()
        with pytest.raises(RuntimeError, match="prepare"):
            d.distance(Record(0, ("a",)), Record(1, ("b",)))

    def test_identical_strings_distance_zero(self):
        relation = corpus("the doors la woman", "something else")
        d = CosineDistance()
        d.prepare(relation)
        assert d.distance(relation.get(0), relation.get(0)) == pytest.approx(0.0)

    def test_disjoint_tokens_distance_one(self):
        relation = corpus("aaa bbb", "ccc ddd")
        d = CosineDistance()
        d.prepare(relation)
        assert d.distance(relation.get(0), relation.get(1)) == 1.0

    def test_idf_weighting_downplays_common_tokens(self):
        # "corporation" is common; sharing it means little.
        relation = corpus(
            "microsoft corporation",
            "boeing corporation",
            "intel corporation",
            "apple corporation",
            "microsoft corp",
        )
        d = CosineDistance()
        d.prepare(relation)
        shared_common = d.distance(relation.get(0), relation.get(1))
        shared_rare = d.distance(relation.get(0), relation.get(4))
        assert shared_rare < shared_common

    def test_symmetric(self):
        relation = corpus("a b c", "b c d")
        d = CosineDistance()
        d.prepare(relation)
        assert d.distance(relation.get(0), relation.get(1)) == pytest.approx(
            d.distance(relation.get(1), relation.get(0))
        )

    def test_out_of_corpus_record(self):
        relation = corpus("a b", "c d")
        d = CosineDistance()
        d.prepare(relation)
        stranger = Record(99, ("a zzz",))
        value = d.distance(relation.get(0), stranger)
        assert 0.0 < value < 1.0
