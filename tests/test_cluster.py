"""Tests for the clustering baselines (union-find, thr, star, clique, MST)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.clique import clique_partition
from repro.cluster.hierarchy import SingleLinkageHierarchy
from repro.cluster.single_linkage import (
    single_linkage_brute,
    single_linkage_from_nn,
    single_linkage_partition,
    threshold_edges,
)
from repro.cluster.star import star_partition
from repro.cluster.unionfind import DisjointSets
from repro.core.result import Partition
from repro.index.base import Neighbor

from tests.helpers import absdiff_distance, numbers_relation


class TestDisjointSets:
    def test_initial_singletons(self):
        sets = DisjointSets([1, 2, 3])
        assert sets.n_sets() == 3

    def test_union_merges(self):
        sets = DisjointSets([1, 2, 3])
        assert sets.union(1, 2)
        assert sets.connected(1, 2)
        assert not sets.connected(1, 3)

    def test_union_idempotent(self):
        sets = DisjointSets([1, 2])
        sets.union(1, 2)
        assert not sets.union(1, 2)

    def test_union_registers_new_elements(self):
        sets = DisjointSets()
        sets.union("a", "b")
        assert sets.connected("a", "b")

    def test_groups_sorted(self):
        sets = DisjointSets([3, 1, 2, 4])
        sets.union(3, 1)
        assert sets.groups() == [[1, 3], [2], [4]]

    def test_set_size(self):
        sets = DisjointSets([1, 2, 3])
        sets.union(1, 2)
        assert sets.set_size(1) == 2
        assert sets.set_size(3) == 1

    def test_connected_unknown_elements(self):
        sets = DisjointSets([1])
        assert not sets.connected(1, 99)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30
        )
    )
    def test_matches_networkx_components(self, edges):
        graph = nx.Graph()
        graph.add_nodes_from(range(16))
        sets = DisjointSets(range(16))
        for a, b in edges:
            graph.add_edge(a, b)
            sets.union(a, b)
        expected = sorted(
            sorted(component) for component in nx.connected_components(graph)
        )
        assert sorted(sets.groups()) == expected


class TestThresholdEdges:
    def test_edges_below_threshold_only(self):
        nn = {
            0: (Neighbor(0.1, 1), Neighbor(0.5, 2)),
            1: (Neighbor(0.1, 0),),
            2: (Neighbor(0.5, 0),),
        }
        edges = threshold_edges(nn, 0.3)
        assert edges == [(0, 1, 0.1)]

    def test_each_edge_once(self):
        nn = {0: (Neighbor(0.1, 1),), 1: (Neighbor(0.1, 0),)}
        assert len(threshold_edges(nn, 0.5)) == 1

    def test_strict_threshold(self):
        nn = {0: (Neighbor(0.3, 1),), 1: (Neighbor(0.3, 0),)}
        assert threshold_edges(nn, 0.3) == []


class TestSingleLinkage:
    def test_components(self):
        partition = single_linkage_partition(
            [0, 1, 2, 3], [(0, 1, 0.1), (1, 2, 0.1)]
        )
        assert partition.groups == ((0, 1, 2), (3,))

    def test_from_nn(self):
        nn = {
            0: (Neighbor(0.05, 1),),
            1: (Neighbor(0.05, 0),),
            2: (Neighbor(0.4, 0),),
        }
        partition = single_linkage_from_nn([0, 1, 2], nn, 0.1)
        assert partition.groups == ((0, 1), (2,))

    def test_brute_on_numbers(self):
        relation = numbers_relation([0, 1, 2, 50, 51, 100])
        partition = single_linkage_brute(relation, absdiff_distance(), 0.002)
        assert partition.groups == ((0, 1, 2), (3, 4), (5,))

    def test_chaining_effect(self):
        # The known single-linkage failure mode: a chain merges everything.
        relation = numbers_relation([0, 10, 20, 30])
        partition = single_linkage_brute(relation, absdiff_distance(), 0.011)
        assert len(partition.non_trivial_groups()) == 1
        assert len(partition.non_trivial_groups()[0]) == 4


class TestHierarchy:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(0, 500), min_size=2, max_size=20, unique=True
        ),
        st.floats(0.001, 0.6),
    )
    def test_matches_brute_single_linkage(self, values, theta):
        relation = numbers_relation(values)
        hierarchy = SingleLinkageHierarchy(relation, absdiff_distance())
        fast = hierarchy.clusters_at(theta)
        brute = single_linkage_brute(relation, absdiff_distance(), theta)
        assert fast == brute

    def test_extremes(self):
        relation = numbers_relation([0, 1, 2])
        hierarchy = SingleLinkageHierarchy(relation, absdiff_distance())
        assert hierarchy.clusters_at(1e-9) == Partition.singletons([0, 1, 2])
        assert len(hierarchy.clusters_at(0.999999).groups) == 1

    def test_merge_distances_sorted(self):
        relation = numbers_relation([0, 5, 20])
        hierarchy = SingleLinkageHierarchy(relation, absdiff_distance())
        merges = hierarchy.merge_distances()
        assert merges == sorted(merges)
        assert len(merges) == 2

    def test_singleton_relation(self):
        relation = numbers_relation([1])
        hierarchy = SingleLinkageHierarchy(relation, absdiff_distance())
        assert hierarchy.mst_edges == []
        assert hierarchy.clusters_at(0.5).groups == ((0,),)


class TestStarAndClique:
    def test_star_groups_center_with_neighbors(self):
        edges = [(0, 1, 0.1), (0, 2, 0.1), (3, 4, 0.1)]
        partition = star_partition([0, 1, 2, 3, 4], edges)
        assert (0, 1, 2) in partition.groups
        assert (3, 4) in partition.groups

    def test_star_highest_degree_first(self):
        # 2 has degree 3; it should become the first star center.
        edges = [(0, 2, 0.1), (1, 2, 0.1), (2, 3, 0.1), (0, 1, 0.1)]
        partition = star_partition([0, 1, 2, 3], edges)
        assert partition.groups == ((0, 1, 2, 3),)

    def test_clique_requires_pairwise_edges(self):
        # Path 0-1-2: single linkage one group, clique cover splits.
        edges = [(0, 1, 0.1), (1, 2, 0.1)]
        single = single_linkage_partition([0, 1, 2], edges)
        cliques = clique_partition([0, 1, 2], edges)
        assert len(single.groups) == 1
        assert len(cliques.groups) == 2

    def test_clique_on_triangle(self):
        edges = [(0, 1, 0.1), (1, 2, 0.1), (0, 2, 0.1)]
        assert clique_partition([0, 1, 2], edges).groups == ((0, 1, 2),)

    def test_all_strategies_identical_on_pairs(self):
        # Most real duplicate components are pairs (paper section 5):
        # all three componentizations agree there.
        edges = [(0, 1, 0.1), (2, 3, 0.1)]
        ids = [0, 1, 2, 3, 4]
        single = single_linkage_partition(ids, edges)
        assert star_partition(ids, edges) == single
        assert clique_partition(ids, edges) == single

    def test_empty_graph(self):
        assert star_partition([0, 1], []).groups == ((0,), (1,))
        assert clique_partition([0, 1], []).groups == ((0,), (1,))
