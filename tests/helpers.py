"""Shared test helpers (importable, unlike conftest fixtures)."""

from __future__ import annotations

from repro.data.schema import Relation
from repro.distances.base import FunctionDistance


def numbers_relation(values, name: str = "numbers") -> Relation:
    """A single-attribute relation of numeric strings.

    The workhorse of the algorithmic tests: 1-D points under absolute
    difference make distances easy to reason about by hand.
    """
    return Relation.from_rows(name, ("value",), [[str(v)] for v in values])


def absdiff_distance(scale: float = 1000.0) -> FunctionDistance:
    """Absolute difference of numeric records, normalized by ``scale``."""

    def diff(a, b) -> float:
        return abs(float(a.fields[0]) - float(b.fields[0])) / scale

    return FunctionDistance(diff, name="absdiff")
