"""Tests for the brute-force NN index (the exactness reference)."""

import pytest

from repro.index.base import Neighbor
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation


@pytest.fixture
def index():
    relation = numbers_relation([0, 10, 11, 30, 100])
    idx = BruteForceIndex()
    idx.build(relation, absdiff_distance())
    return idx, relation


class TestKnn:
    def test_nearest_first(self, index):
        idx, relation = index
        hits = idx.knn(relation.get(1), 2)  # value 10
        assert [h.rid for h in hits] == [2, 0]  # 11 then 0

    def test_excludes_self(self, index):
        idx, relation = index
        hits = idx.knn(relation.get(0), 4)
        assert all(h.rid != 0 for h in hits)

    def test_k_larger_than_relation(self, index):
        idx, relation = index
        hits = idx.knn(relation.get(0), 100)
        assert len(hits) == 4

    def test_k_zero(self, index):
        idx, relation = index
        assert idx.knn(relation.get(0), 0) == []

    def test_distances_sorted(self, index):
        idx, relation = index
        hits = idx.knn(relation.get(3), 4)
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_tie_break_by_rid(self):
        relation = numbers_relation([0, 5, -5])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        hits = idx.knn(relation.get(0), 2)
        # Both at distance 5/1000; smaller rid (1) first.
        assert [h.rid for h in hits] == [1, 2]

    def test_requires_build(self):
        idx = BruteForceIndex()
        with pytest.raises(RuntimeError, match="build"):
            idx.knn(numbers_relation([1]).get(0), 1)


class TestWithin:
    def test_strict_radius(self, index):
        idx, relation = index
        hits = idx.within(relation.get(1), 0.001)  # radius 1/1000
        assert hits == []

    def test_inclusive_radius(self, index):
        idx, relation = index
        hits = idx.within(relation.get(1), 0.001, inclusive=True)
        assert [h.rid for h in hits] == [2]

    def test_radius_covers_all(self, index):
        idx, relation = index
        hits = idx.within(relation.get(0), 1.0)
        assert len(hits) == 4

    def test_sorted_output(self, index):
        idx, relation = index
        hits = idx.within(relation.get(0), 1.0)
        assert [h.distance for h in hits] == sorted(h.distance for h in hits)


class TestDerived:
    def test_nn_distance(self, index):
        idx, relation = index
        assert idx.nn_distance(relation.get(1)) == pytest.approx(0.001)

    def test_nn_distance_singleton(self):
        relation = numbers_relation([42])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        assert idx.nn_distance(relation.get(0)) == float("inf")

    def test_ng_counts_self(self, index):
        idx, relation = index
        # value 10: nn = 11 at 1; radius 2 covers only 11 -> ng = 2.
        assert idx.neighborhood_growth(relation.get(1)) == 2

    def test_ng_larger_neighborhood(self):
        relation = numbers_relation([0, 1, 2, 3, 50])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        # value 1: nn=1 unit, radius 2 covers 0 and 2 strictly -> ng = 3.
        assert idx.neighborhood_growth(relation.get(1)) == 3

    def test_ng_singleton_relation(self):
        relation = numbers_relation([7])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        assert idx.neighborhood_growth(relation.get(0)) == 1

    def test_ng_exact_duplicates(self):
        relation = numbers_relation([5, 5, 5, 90])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        # nn distance is 0; the zero-distance records form the neighborhood.
        assert idx.neighborhood_growth(relation.get(0)) == 3

    def test_custom_p(self):
        relation = numbers_relation([0, 1, 3, 100])
        idx = BruteForceIndex()
        idx.build(relation, absdiff_distance())
        # p=2: radius 2 covers only rid 1 -> ng=2; p=4: covers rid 2 too.
        assert idx.neighborhood_growth(relation.get(0), p=2.0) == 2
        assert idx.neighborhood_growth(relation.get(0), p=4.0) == 3


class TestNeighborOrdering:
    def test_neighbor_sort_order(self):
        a = Neighbor(0.1, 5)
        b = Neighbor(0.1, 7)
        c = Neighbor(0.2, 1)
        assert sorted([c, b, a]) == [a, b, c]
