"""Tests for the first-class constraint layer.

Covers the typed algebra (kinds, validation, serialization round-trip),
the pair-filter semantics (strict missing-value handling keeps every
mode's output contract identical), block planning, all three constraint
modes across execution paths (in-memory, spill, sharded, incremental),
the pushdown block-parity harness, the claims workload's gold
consistency, and the CLI's exit-2 convention.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.constraints import (
    BlockKey,
    CannotLink,
    ConstraintError,
    PairFilter,
    TimeWindow,
    constraint_from_dict,
    constraint_to_dict,
    constraints_from_dicts,
    constraints_to_dicts,
    parse_day,
    plan_blocks,
    validate_constraints,
)
from repro.core.formulation import DEParams
from repro.core.incremental import IncrementalDeduplicator
from repro.data.loaders import load_dataset, relation_to_csv
from repro.data.schema import Record, Relation
from repro.run.config import ConfigError, RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.run.registry import make_distance
from repro.verify import verify_incremental
from repro.verify.constraints import (
    check_group_constraints,
    verify_constraint_blocks,
)

CLAIMS_CONSTRAINTS = (
    BlockKey("patient_id"),
    BlockKey("provider"),
    TimeWindow("service_date", days=30),
)

CLAIMS_PARAMS = DEParams.combined(5, 0.45, c=4.0)


@pytest.fixture(scope="module")
def claims():
    return load_dataset("claims", n_entities=40, duplicate_fraction=0.4, seed=5)


def run_claims(claims, **config_kwargs):
    config = RunConfig(
        distance="edit",
        index="brute",
        keep_cs_pairs=True,
        constraints=CLAIMS_CONSTRAINTS,
        **config_kwargs,
    )
    context = RunContext.create(config)
    return StagedPipeline(context).run(claims.relation, CLAIMS_PARAMS)


class TestAlgebra:
    def test_kinds_and_hardness(self):
        assert CannotLink("a").kind == "cannot-link"
        assert not CannotLink("a").hard
        assert BlockKey("a").hard
        assert TimeWindow("a").hard
        assert not TimeWindow("a", hard_window=False).hard

    def test_validate_rejects_unknown_field(self):
        with pytest.raises(ConstraintError, match="not in schema"):
            validate_constraints([BlockKey("nope")], ("a", "b"))

    def test_negative_window_rejected(self):
        with pytest.raises(ConstraintError, match="non-negative"):
            TimeWindow("date", days=-1).validate(("date",))

    def test_parse_day(self):
        assert parse_day("2024-01-02") == parse_day("2024-01-01") + 1
        assert parse_day("") is None
        assert parse_day("not a date") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConstraintError, match="unknown constraint kind"):
            constraint_from_dict({"kind": "must-link", "field": "a"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConstraintError):
            constraint_from_dict(
                {"kind": "block-key", "field": "a", "extra": 1}
            )


constraint_strategy = st.one_of(
    st.builds(CannotLink, st.text(min_size=1, max_size=8)),
    st.builds(BlockKey, st.text(min_size=1, max_size=8)),
    st.builds(
        TimeWindow,
        st.text(min_size=1, max_size=8),
        days=st.integers(0, 3650),
        hard_window=st.booleans(),
    ),
)


class TestSerialization:
    @settings(max_examples=50, deadline=None)
    @given(constraint_strategy)
    def test_dict_round_trip(self, constraint):
        assert constraint_from_dict(constraint_to_dict(constraint)) == constraint

    @settings(max_examples=25, deadline=None)
    @given(st.lists(constraint_strategy, max_size=4))
    def test_tuple_round_trip(self, constraints):
        dicts = constraints_to_dicts(constraints)
        assert constraints_from_dicts(dicts) == tuple(constraints)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(constraint_strategy, max_size=3))
    def test_run_config_round_trip(self, constraints):
        config = RunConfig(constraints=tuple(constraints))
        rebuilt = RunConfig(constraints=config.to_dict()["constraints"])
        assert rebuilt.constraints == config.constraints


class TestPairFilter:
    schema = ("name", "tag", "date")

    def pair(self, a_fields, b_fields, constraints):
        fltr = PairFilter(constraints, self.schema)
        return fltr(Record(0, tuple(a_fields)), Record(1, tuple(b_fields)))

    def test_cannot_link_missing_values_allowed(self):
        cons = (CannotLink("tag"),)
        assert self.pair(("x", "", ""), ("y", "b", ""), cons)
        assert self.pair(("x", "a", ""), ("y", "a", ""), cons)
        assert not self.pair(("x", "a", ""), ("y", "b", ""), cons)

    def test_block_key_compares_raw_values(self):
        cons = (BlockKey("tag"),)
        assert self.pair(("x", "a", ""), ("y", "a", ""), cons)
        assert not self.pair(("x", "a", ""), ("y", "", ""), cons)

    def test_time_window_unparseable_violates(self):
        cons = (TimeWindow("date", days=3),)
        assert self.pair(("x", "", "2024-01-01"), ("y", "", "2024-01-04"), cons)
        assert not self.pair(("x", "", "2024-01-01"), ("y", "", "2024-01-05"), cons)
        assert not self.pair(("x", "", "oops"), ("y", "", "2024-01-01"), cons)


class TestPlanBlocks:
    def relation(self, rows):
        return Relation.from_rows("t", ("key", "date"), rows)

    def test_block_key_grouping(self):
        relation = self.relation(
            [["a", ""], ["b", ""], ["a", ""], ["b", ""], ["c", ""]]
        )
        blocks = plan_blocks(relation, (BlockKey("key"),))
        assert blocks == [[0, 2], [1, 3], [4]]

    def test_time_window_gap_refinement(self):
        relation = self.relation(
            [
                ["a", "2024-01-01"],
                ["a", "2024-01-20"],
                ["a", "2024-06-01"],
            ]
        )
        blocks = plan_blocks(
            relation, (BlockKey("key"), TimeWindow("date", days=30))
        )
        assert blocks == [[0, 1], [2]]

    def test_unparseable_dates_become_singletons(self):
        relation = self.relation([["a", "oops"], ["a", "2024-01-01"]])
        blocks = plan_blocks(relation, (TimeWindow("date", days=30),))
        assert sorted(blocks) == [[0], [1]]


class TestModes:
    def test_all_modes_emit_zero_violations(self, claims):
        for mode in ("postprocess", "inline", "pushdown"):
            result = run_claims(claims, constraint_mode=mode)
            check = check_group_constraints(
                result.partition, claims.relation, CLAIMS_CONSTRAINTS
            )
            assert check.passed, f"{mode}: {check.violations}"

    def test_postprocess_paths_agree(self, claims):
        reference = run_claims(claims, constraint_mode="postprocess")
        spill = run_claims(
            claims,
            constraint_mode="postprocess",
            use_engine=True,
            spill=True,
            buffer_pages=8,
        )
        sharded = run_claims(
            claims, constraint_mode="postprocess", shards=2
        )
        assert spill.partition.checksum() == reference.partition.checksum()
        assert sharded.partition.checksum() == reference.partition.checksum()

    def test_pushdown_block_parity(self, claims):
        report = verify_constraint_blocks(
            claims.relation,
            CLAIMS_CONSTRAINTS,
            CLAIMS_PARAMS,
            distance="edit",
            index="brute",
        )
        assert report.ok, report.render()

    def test_pushdown_prunes_evaluations(self, claims):
        reference = run_claims(claims, constraint_mode="postprocess")
        pushdown = run_claims(claims, constraint_mode="pushdown")

        def evals(result):
            phase1 = result.stats.phase1
            return phase1.evaluations + phase1.kernel_evaluations

        assert evals(pushdown) < evals(reference)
        plan = pushdown.stats.constraint_plan
        assert plan["mode"] == "pushdown"
        assert plan["n_blocks"] >= plan["n_multi_blocks"] > 0

    def test_inline_filter_counts_drops(self, claims):
        inline = run_claims(claims, constraint_mode="inline")
        reference = run_claims(claims, constraint_mode="postprocess")
        assert inline.stats.phase2.pairs_filtered > 0
        assert inline.stats.n_cs_pairs < reference.stats.n_cs_pairs
        # Join-time filtering only drops pairs the final split would
        # have cut anyway: the emitted partition is identical.
        assert inline.partition.checksum() == reference.partition.checksum()

    def test_pushdown_rejects_sharding(self):
        with pytest.raises(ConfigError):
            RunConfig(
                constraints=(BlockKey("patient_id"),),
                constraint_mode="pushdown",
                shards=2,
            )

    def test_final_split_catches_transitive_violations(self):
        # b sits between a and c; a-b and b-c are allowed but a-c is
        # forbidden, so transitive group extraction would emit {a,b,c}.
        # Every mode must split it, join-time filtering included.
        relation = Relation.from_rows(
            "chain",
            ("name", "tag"),
            [
                ["alpha star", "x"],
                ["alpha stir", ""],
                ["alpha sta", "y"],
                ["omega omega omega", ""],
            ],
        )
        for mode in ("postprocess", "inline"):
            config = RunConfig(
                distance="edit",
                constraints=(CannotLink("tag"),),
                constraint_mode=mode,
            )
            context = RunContext.create(config)
            result = StagedPipeline(context).run(
                relation, DEParams.size(3, c=8.0)
            )
            check = check_group_constraints(
                result.partition, relation, config.constraints
            )
            assert check.passed, f"{mode}: {check.violations}"


class TestIncremental:
    def replay(self, claims, mode):
        dedup = IncrementalDeduplicator(
            make_distance("edit"),
            CLAIMS_PARAMS,
            schema=claims.relation.schema,
            constraints=CLAIMS_CONSTRAINTS,
            constraint_mode=mode,
        )
        for record in claims.relation:
            dedup.add(record.fields)
        return dedup

    @pytest.mark.parametrize("mode", ["postprocess", "pushdown"])
    def test_streamed_partition_is_consistent(self, claims, mode):
        dedup = self.replay(claims, mode)
        check = check_group_constraints(
            dedup.partition(), dedup.relation, CLAIMS_CONSTRAINTS
        )
        assert check.passed, check.violations
        report = verify_incremental(dedup)
        assert report.ok, report.render()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="constraint mode"):
            IncrementalDeduplicator(
                make_distance("edit"),
                CLAIMS_PARAMS,
                schema=("a",),
                constraint_mode="sideways",
            )


class TestClaimsWorkload:
    def test_gold_pairs_satisfy_constraints(self, claims):
        fltr = PairFilter(CLAIMS_CONSTRAINTS, claims.relation.schema)
        for a, b in claims.gold.true_pairs():
            assert fltr(claims.relation.get(a), claims.relation.get(b))

    def test_duplicates_share_keys_and_window(self, claims):
        schema = claims.relation.schema
        pid = schema.index("patient_id")
        prov = schema.index("provider")
        date = schema.index("service_date")
        for a, b in claims.gold.true_pairs():
            fields_a = claims.relation.get(a).fields
            fields_b = claims.relation.get(b).fields
            assert fields_a[pid] == fields_b[pid]
            assert fields_a[prov] == fields_b[prov]
            gap = abs(parse_day(fields_a[date]) - parse_day(fields_b[date]))
            assert gap <= 30


class TestCLI:
    @pytest.fixture
    def claims_csv(self, tmp_path, claims):
        path = tmp_path / "claims.csv"
        relation_to_csv(claims.relation, path)
        return path

    def test_dedup_with_constraints(self, claims_csv):
        out = io.StringIO()
        code = main(
            [
                "dedup", str(claims_csv),
                "--distance", "edit",
                "--block-key", "patient_id",
                "--block-key", "provider",
                "--time-window", "30",
                "--time-field", "service_date",
                "--constraint-mode", "pushdown",
                "--verify",
            ],
            out=out,
        )
        assert code == 0
        assert "constraint-consistency" in out.getvalue()

    def test_unknown_field_exits_2(self, claims_csv, capsys):
        code = main(["dedup", str(claims_csv), "--block-key", "nope"])
        assert code == 2
        assert "not in schema" in capsys.readouterr().err

    def test_time_window_without_field_exits_2(self, claims_csv, capsys):
        code = main(["dedup", str(claims_csv), "--time-window", "30"])
        assert code == 2
        assert "--time-field" in capsys.readouterr().err

    def test_serve_with_constraints(self, claims_csv):
        out = io.StringIO()
        code = main(
            [
                "serve", str(claims_csv),
                "--from-csv",
                "--distance", "edit",
                "--block-key", "patient_id",
                "--block-key", "provider",
                "--constraint-mode", "postprocess",
                "--quiet",
                "--verify",
            ],
            out=out,
        )
        assert code == 0
        assert "constraint-consistency" in out.getvalue()
