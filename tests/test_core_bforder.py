"""Tests for the breadth-first lookup ordering (paper section 4.1.1)."""

from repro.core.bforder import breadth_first_order, random_order, sequential_order
from repro.index.base import Neighbor
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation


def drive(relation, index, k=2, max_queue=100_000):
    order = []

    def lookup(rid):
        return index.knn(relation.get(rid), k)

    for rid in breadth_first_order(relation, lookup, max_queue=max_queue):
        order.append(rid)
    return order


class TestBreadthFirstOrder:
    def test_visits_every_record_once(self):
        relation = numbers_relation([0, 1, 2, 50, 51, 100])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        order = drive(relation, index)
        assert sorted(order) == relation.ids()

    def test_neighbors_follow_their_parent(self):
        # Two tight clusters: after the first record of a cluster, the
        # rest of that cluster is visited before jumping away.
        relation = numbers_relation([0, 1, 2, 500, 501, 502])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        order = drive(relation, index, k=2)
        first_cluster = {0, 1, 2}
        # Positions of the first cluster's members are the first three.
        assert set(order[:3]) == first_cluster

    def test_queue_refills_after_draining(self):
        # Isolated far-apart points: queue drains instantly each time,
        # the scan of R must restart it.
        relation = numbers_relation([0, 500, 1000])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        order = drive(relation, index, k=0)  # lookups return nothing
        assert sorted(order) == [0, 1, 2]

    def test_bounded_queue_still_completes(self):
        relation = numbers_relation(list(range(0, 100, 3)))
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        order = drive(relation, index, k=5, max_queue=2)
        assert sorted(order) == relation.ids()

    def test_lookup_called_exactly_once_per_record(self):
        relation = numbers_relation([0, 1, 2, 3])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        calls = []

        def lookup(rid):
            calls.append(rid)
            return index.knn(relation.get(rid), 2)

        list(breadth_first_order(relation, lookup))
        assert sorted(calls) == [0, 1, 2, 3]
        assert len(calls) == 4

    def test_empty_relation(self):
        relation = numbers_relation([])
        assert (
            list(breadth_first_order(relation, lambda rid: [Neighbor(0.1, 0)])) == []
        )

    def test_gapped_non_contiguous_record_ids(self):
        # Record ids are opaque: gaps and a non-zero base must not
        # confuse the traversal.
        base = numbers_relation([0, 1, 2, 50, 51, 100, 101])
        relation = base.subset([1, 3, 4, 6], name="gapped")
        assert relation.ids() == [1, 3, 4, 6]
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        order = drive(relation, index, k=2)
        assert sorted(order) == [1, 3, 4, 6]

    def test_ignores_neighbor_ids_outside_the_relation(self):
        # A lookup may surface ids the relation no longer holds (stale
        # index, foreign neighbor): they are skipped, not crashed on.
        relation = numbers_relation([0, 1, 2])

        def lookup(rid):
            return [Neighbor(0.1, 999), Neighbor(0.2, (rid + 1) % 3)]

        order = list(breadth_first_order(relation, lookup))
        assert sorted(order) == [0, 1, 2]


class TestOtherOrders:
    def test_sequential(self):
        relation = numbers_relation([5, 3, 8])
        assert sequential_order(relation) == [0, 1, 2]

    def test_random_is_seeded_permutation(self):
        relation = numbers_relation(list(range(20)))
        a = random_order(relation, seed=3)
        b = random_order(relation, seed=3)
        c = random_order(relation, seed=4)
        assert a == b
        assert sorted(a) == relation.ids()
        assert a != c
