"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.data.embedded import table1_relation
from repro.data.loaders import load_dataset
from repro.distances.edit import EditDistance


@pytest.fixture
def table1():
    return table1_relation()


@pytest.fixture
def edit():
    return EditDistance()


@pytest.fixture(scope="session")
def restaurants_dataset():
    """A small dirty restaurants dataset shared across tests."""
    return load_dataset("restaurants", n_entities=60, duplicate_fraction=0.3, seed=7)


@pytest.fixture(scope="session")
def media_dataset():
    return load_dataset("media", n_entities=60, duplicate_fraction=0.3, seed=7)
