"""Tests for constraining predicates and minimal compact sets."""


from repro.core.minimality import compact_subsets, enforce_minimality, split_to_minimal
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.predicates import apply_constraining_predicate, split_group
from repro.core.result import Partition
from repro.index.base import Neighbor

from tests.helpers import numbers_relation


class TestConstrainingPredicates:
    def different_last_char(self, a, b):
        return a.fields[0][-1] != b.fields[0][-1]

    def test_clean_group_untouched(self):
        relation = numbers_relation([11, 21, 31])
        partition = Partition.from_groups([[0, 1, 2]])
        out = apply_constraining_predicate(partition, relation, lambda a, b: False)
        assert out == partition

    def test_forbidden_pair_split(self):
        relation = numbers_relation([11, 12])
        partition = Partition.from_groups([[0, 1]])
        out = apply_constraining_predicate(
            partition, relation, self.different_last_char
        )
        assert out == Partition.singletons([0, 1])

    def test_partial_split_keeps_allowed_subgroup(self):
        # Records ending in 1 may group; the one ending in 2 is peeled.
        relation = numbers_relation([11, 21, 32])
        partition = Partition.from_groups([[0, 1, 2]])
        out = apply_constraining_predicate(
            partition, relation, self.different_last_char
        )
        assert (0, 1) in out.groups
        assert (2,) in out.groups

    def test_no_output_group_violates(self):
        relation = numbers_relation([11, 21, 32, 42, 53])
        partition = Partition.from_groups([[0, 1, 2, 3, 4]])
        out = apply_constraining_predicate(
            partition, relation, self.different_last_char
        )
        for group in out:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    assert not self.different_last_char(
                        relation.get(a), relation.get(b)
                    )

    def test_split_group_singleton(self):
        relation = numbers_relation([5])
        assert split_group([0], relation, lambda a, b: True) == [[0]]

    def test_deterministic(self):
        relation = numbers_relation([11, 21, 32, 42])
        partition = Partition.from_groups([[0, 1, 2, 3]])
        a = apply_constraining_predicate(partition, relation, self.different_last_char)
        b = apply_constraining_predicate(partition, relation, self.different_last_char)
        assert a == b


def nn_from_lists(lists, ng=2):
    nn = NNRelation()
    for rid, neighbor_ids in lists.items():
        nn.add(
            NNEntry(
                rid=rid,
                neighbors=tuple(
                    Neighbor(0.01 * (i + 1), nid)
                    for i, nid in enumerate(neighbor_ids)
                ),
                ng=ng,
            )
        )
    return nn


class TestMinimality:
    def three_pairs_nn(self):
        """The paper's example: three duplicate pairs mutually close.

        Each v_i / v_i' pair is at tiny distance; across pairs the
        distance is larger but below what would separate them.  NN lists
        reflect that: each record's nearest is its twin.
        Ids: (0,1), (2,3), (4,5).
        """
        return nn_from_lists(
            {
                0: [1, 2, 3, 4, 5],
                1: [0, 2, 3, 4, 5],
                2: [3, 0, 1, 4, 5],
                3: [2, 0, 1, 4, 5],
                4: [5, 0, 1, 2, 3],
                5: [4, 0, 1, 2, 3],
            }
        )

    def test_compact_subsets_finds_pairs(self):
        nn = self.three_pairs_nn()
        subsets = compact_subsets(nn, (0, 1, 2, 3, 4, 5))
        assert frozenset({0, 1}) in subsets
        assert frozenset({2, 3}) in subsets
        assert frozenset({4, 5}) in subsets

    def test_split_to_minimal_splits_union_of_pairs(self):
        nn = self.three_pairs_nn()
        parts = split_to_minimal(nn, (0, 1, 2, 3, 4, 5))
        assert sorted(parts) == [(0, 1), (2, 3), (4, 5)]

    def test_small_groups_untouched(self):
        nn = nn_from_lists({0: [1], 1: [0]})
        assert split_to_minimal(nn, (0, 1)) == [(0, 1)]

    def test_genuine_large_group_kept(self):
        # A true 4-group of mutual NNs with no compact proper subsets:
        # each record's 2-set differs (no mutual-NN pair inside).
        nn = nn_from_lists(
            {
                0: [1, 2, 3],
                1: [2, 3, 0],
                2: [3, 0, 1],
                3: [0, 1, 2],
            }
        )
        assert split_to_minimal(nn, (0, 1, 2, 3)) == [(0, 1, 2, 3)]

    def test_enforce_minimality_partition(self):
        nn = self.three_pairs_nn()
        partition = Partition.from_groups([[0, 1, 2, 3, 4, 5], [6]])
        out = enforce_minimality(partition, nn)
        assert out == Partition.from_groups([[0, 1], [2, 3], [4, 5], [6]])

    def test_leftover_members_become_singletons(self):
        # Two disjoint pairs plus one record not in any compact subset.
        nn = nn_from_lists(
            {
                0: [1, 4, 2, 3],
                1: [0, 4, 2, 3],
                2: [3, 4, 0, 1],
                3: [2, 4, 0, 1],
                4: [0, 2, 1, 3],
            }
        )
        parts = split_to_minimal(nn, (0, 1, 2, 3, 4))
        assert sorted(parts) == [(0, 1), (2, 3), (4,)]
