"""Property-based tests for the storage engine operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.engine import Engine

rows_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=40
)


def table_of(engine, name, rows):
    table = engine.create_table(name, ("k", "v"), replace=True)
    table.insert_many(rows)
    return table


class TestOperatorSemantics:
    @settings(max_examples=40)
    @given(rows_strategy)
    def test_order_by_matches_sorted(self, rows):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", rows)
        out = engine.order_by("sorted", table, key=lambda r: (r[0], r[1]))
        assert out.rows() == sorted(rows, key=lambda r: (r[0], r[1]))

    @settings(max_examples=40)
    @given(rows_strategy)
    def test_select_into_matches_filter(self, rows):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", rows)
        out = engine.select_into(
            "filtered", table, predicate=lambda r: r[1] % 2 == 0
        )
        assert out.rows() == [row for row in rows if row[1] % 2 == 0]

    @settings(max_examples=30)
    @given(rows_strategy, rows_strategy)
    def test_index_join_matches_nested_loop(self, left_rows, right_rows):
        engine = Engine(page_capacity=4)
        left = table_of(engine, "left", left_rows)
        right = table_of(engine, "right", right_rows)
        index = engine.hash_index(right, "k")
        joined = engine.index_join(
            "joined",
            ("lk", "lv", "rv"),
            left,
            probe_keys=lambda row: [row[0]],
            index=index,
            on=lambda lhs, rhs: True,
            project=lambda lhs, rhs: (lhs[0], lhs[1], rhs[1]),
        )
        expected = sorted(
            (lhs[0], lhs[1], rhs[1])
            for lhs in left_rows
            for rhs in right_rows
            if lhs[0] == rhs[0]
        )
        assert sorted(joined.rows()) == expected

    @settings(max_examples=30)
    @given(rows_strategy)
    def test_group_iter_partitions_sorted_table(self, rows):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", rows)
        ordered = engine.order_by("sorted", table, key=lambda r: r[0])
        groups = list(Engine.group_iter(ordered, key=lambda r: r[0]))
        # Keys are strictly increasing and rows are preserved.
        keys = [key for key, _ in groups]
        assert keys == sorted(set(row[0] for row in rows))
        reassembled = [row for _, members in groups for row in members]
        assert sorted(reassembled) == sorted(rows)

    @settings(max_examples=25)
    @given(rows_strategy, st.integers(1, 6))
    def test_scans_survive_tiny_buffers(self, rows, capacity):
        engine = Engine(buffer_pages=capacity, page_capacity=2)
        table = table_of(engine, "t", rows)
        assert table.rows() == rows
        assert table.rows() == rows  # second scan after evictions


class TestExternalSort:
    @settings(max_examples=40)
    @given(rows_strategy, st.integers(1, 8))
    def test_external_sort_matches_sorted(self, rows, run_rows):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", rows)
        out = engine.order_by(
            "sorted", table, key=lambda r: (r[0], r[1]), external_run_rows=run_rows
        )
        assert out.rows() == sorted(rows, key=lambda r: (r[0], r[1]))

    @settings(max_examples=25)
    @given(rows_strategy)
    def test_external_sort_is_stable_on_key_ties(self, rows):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", rows)
        out = engine.order_by(
            "sorted", table, key=lambda r: r[0], external_run_rows=3
        )
        # Python's sorted() is stable; the external sort must agree even
        # where several rows share a key.
        assert out.rows() == sorted(rows, key=lambda r: r[0])

    def test_scratch_runs_are_dropped(self):
        engine = Engine(page_capacity=4)
        table = table_of(engine, "t", [(3, 1), (1, 2), (2, 3)])
        engine.order_by("sorted", table, key=lambda r: r[0], external_run_rows=1)
        assert all("__run" not in name for name in engine.catalog.names())

    def test_invalid_run_size(self):
        import pytest

        engine = Engine()
        table = table_of(engine, "t", [(1, 1)])
        with pytest.raises(ValueError):
            engine.order_by("s", table, key=lambda r: r[0], external_run_rows=0)

    def test_empty_table(self):
        engine = Engine()
        table = table_of(engine, "t", [])
        out = engine.order_by("s", table, key=lambda r: r[0], external_run_rows=4)
        assert out.rows() == []
