"""Sharded scale-out layer: plan, runner, exact merge, and parity.

The headline property (satellite of the paper's robustness pitch): for
*any* overlapping 2-way split of the relation, running the staged
pipeline per shard against the global index and merging with
:func:`~repro.shard.merge.merge_partitions` yields the partition the
unsharded pipeline produces — for all three cut specifications.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.data.loaders import load_dataset
from repro.index.bruteforce import BruteForceIndex
from repro.run.config import RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.shard import (
    MergeResult,
    ShardPlan,
    ShardRunner,
    merge_partitions,
    plan_shards,
)
from repro.verify.shard import cut_params, verify_shard_merge

from tests.helpers import absdiff_distance, numbers_relation

#: The three cut specifications, tuned for 1-D values in [0, 900]
#: under absdiff/1000 (theta must exceed typical near-pair gaps).
CUTS = {
    "size": DEParams.size(3, c=4.0),
    "diameter": DEParams.diameter(0.03, c=4.0),
    "combined": DEParams.combined(3, 0.03, c=4.0),
}


def _pipeline_context(relation, distance, config=None) -> RunContext:
    index = BruteForceIndex()
    index.build(relation, distance)
    return RunContext(config or RunConfig(keep_cs_pairs=True), distance, index)


def _run_split(relation, distance, params, members):
    """Run per-shard + merge for an explicit member split."""
    plan = ShardPlan.from_members(members)
    ctx = _pipeline_context(
        relation, distance, RunConfig(keep_cs_pairs=True, shards_in_flight=1)
    )
    outcomes = ShardRunner(ctx).run(relation, params, plan)
    return merge_partitions(plan, outcomes, relation.ids(), params)


@st.composite
def split_instances(draw):
    """Values plus a per-record shard code: 0 = left, 1 = right, 2 = both."""
    values = draw(
        st.lists(st.integers(0, 900), min_size=4, max_size=14, unique=True)
    )
    codes = draw(
        st.lists(st.integers(0, 2), min_size=len(values), max_size=len(values))
    )
    return values, codes


class TestMergeEqualsUnshardedProperty:
    @pytest.mark.parametrize("cut", sorted(CUTS))
    @settings(max_examples=25, deadline=None)
    @given(split_instances())
    def test_any_overlapping_split_merges_exactly(self, cut, instance):
        values, codes = instance
        params = CUTS[cut]
        relation = numbers_relation(values)
        distance = absdiff_distance()
        rids = sorted(relation.ids())
        left = [rid for rid, code in zip(rids, codes) if code != 1]
        right = [rid for rid, code in zip(rids, codes) if code != 0]
        # Both shards must be non-empty; the union always covers.
        left = left or [rids[0]]
        right = right or [rids[-1]]

        merged = _run_split(relation, distance, params, [left, right])

        reference = StagedPipeline(
            _pipeline_context(relation, absdiff_distance())
        ).run(relation, params)
        assert merged.partition.checksum() == reference.partition.checksum()
        assert len(merged.cs_pairs) == reference.stats.n_cs_pairs
        assert (
            merged.n_boundary_components + merged.n_reused_components
            == merged.n_components
        )


class TestMergeRegressions:
    def test_chain_split_needs_witness_containment(self):
        """The documented counter-example: members {a,b} / {b,c} with
        rows (a,b), (b,c).  Only containment in a single shard makes a
        component clean — the second shard alone would extract {b,c}
        while the global anchor scan groups b with a."""
        relation = numbers_relation([100, 101, 102])
        distance = absdiff_distance()
        params = DEParams.size(2, c=8.0)
        a, b, c = sorted(relation.ids())

        merged = _run_split(relation, distance, params, [[a, b], [b, c]])

        reference = StagedPipeline(
            _pipeline_context(relation, absdiff_distance())
        ).run(relation, params)
        assert merged.partition.checksum() == reference.partition.checksum()
        assert merged.n_boundary_components >= 1

    def test_merge_result_telemetry_round_trips(self):
        relation = numbers_relation([10, 11, 40, 41, 75])
        merged = _run_split(
            relation,
            absdiff_distance(),
            CUTS["size"],
            [[0, 1, 2], [2, 3, 4]],
        )
        assert isinstance(merged, MergeResult)
        payload = merged.to_dict()
        assert payload["n_cs_pairs"] == len(merged.cs_pairs)
        assert set(payload) == {
            "n_components",
            "n_boundary_components",
            "n_reused_components",
            "n_cross_pairs",
            "n_cs_pairs",
        }


@pytest.fixture(scope="module")
def org_relation():
    return load_dataset("org", n_entities=50, seed=3).relation


class TestShardPlan:
    def test_rejects_bad_arguments(self, org_relation):
        with pytest.raises(ValueError):
            plan_shards(org_relation, 0)
        with pytest.raises(ValueError):
            plan_shards(org_relation, 2, overlap=-0.1)
        with pytest.raises(ValueError):
            plan_shards(org_relation, 2, overlap=1.5)

    def test_single_shard_holds_everything(self, org_relation):
        plan = plan_shards(org_relation, 1)
        assert plan.n_shards == 1
        assert plan.members[0] == tuple(sorted(org_relation.ids()))
        assert plan.recall == 1.0

    def test_members_cover_relation(self, org_relation):
        plan = plan_shards(org_relation, 3, overlap=0.2)
        assert plan.n_shards == 3
        covered = set()
        for members in plan.members:
            assert members == tuple(sorted(members))
            covered.update(members)
        assert covered == set(org_relation.ids())
        assert 0.0 <= plan.recall <= 1.0

    def test_shards_of_and_co_resident_agree(self, org_relation):
        plan = plan_shards(org_relation, 3, overlap=0.3)
        rids = sorted(org_relation.ids())
        for rid in rids[:10]:
            assert plan.shards_of(rid), "every rid lives somewhere"
        a, b = rids[0], rids[1]
        expected = bool(set(plan.shards_of(a)) & set(plan.shards_of(b)))
        assert plan.co_resident(a, b) is expected

    def test_to_dict_payload(self, org_relation):
        payload = plan_shards(org_relation, 2).to_dict()
        assert payload["n_shards"] == 2
        assert len(payload["shard_sizes"]) == 2
        assert "recall" in payload and "n_split_components" in payload

    def test_from_members_sorts_and_dedups(self):
        plan = ShardPlan.from_members([[3, 1, 3], [2, 2]])
        assert plan.members == ((1, 3), (2,))
        assert plan.recall == 1.0


class TestShardRunner:
    def test_effective_in_flight_bounds(self):
        assert ShardRunner.effective_in_flight(RunConfig(), 4) == 4
        assert (
            ShardRunner.effective_in_flight(
                RunConfig(shards=4, shards_in_flight=2), 4
            )
            == 2
        )
        assert ShardRunner.effective_in_flight(RunConfig(), 1) == 1

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_pools_produce_identical_outcomes(self, org_relation, pool):
        params = DEParams.size(4, c=4.0)
        config = RunConfig(
            distance="edit", index="brute", pool=pool,
            shards=2, shards_in_flight=2, keep_cs_pairs=True,
        )
        ctx = RunContext.create(config)
        plan = plan_shards(org_relation, 2)
        outcomes = ShardRunner(ctx).run(org_relation, params, plan)
        assert [outcome.shard_id for outcome in outcomes] == [0, 1]
        merged = merge_partitions(
            plan, outcomes, org_relation.ids(), params
        )
        reference = StagedPipeline(
            RunContext.create(
                RunConfig(distance="edit", index="brute", keep_cs_pairs=True)
            )
        ).run(org_relation, params)
        assert merged.partition.checksum() == reference.partition.checksum()

    def test_outcome_summary_shape(self, org_relation):
        params = DEParams.size(4, c=4.0)
        ctx = RunContext.create(
            RunConfig(distance="edit", shards=2, keep_cs_pairs=True)
        )
        outcomes = ShardRunner(ctx).run(
            org_relation, params, plan_shards(org_relation, 2)
        )
        summary = outcomes[0].summary()
        assert summary["shard_id"] == 0
        assert summary["n_members"] == outcomes[0].n_members
        assert "phase1_lookups" in summary and "seconds" in summary


class TestVerifyShardMerge:
    def test_parity_matrix_passes(self, org_relation):
        report = verify_shard_merge(
            org_relation,
            shard_counts=(2,),
            kernels=("python",),
            params_by_cut=cut_params(),
        )
        assert report.ok
        names = [check.name for check in report.checks]
        assert names == ["shard-merge-parity[python]"]

    def test_strict_mode_raises_nothing_when_ok(self, org_relation):
        report = verify_shard_merge(
            org_relation,
            shard_counts=(2,),
            kernels=("python",),
            strict=True,
        )
        assert report.ok
