"""Property tests: the engine-backed Phase 2 equals the direct path.

The paper's architecture (Figure 3) pushes Phase 2 into the database
server as SQL; our storage engine executes the same logical plan.  The
two implementations must produce identical partitions on arbitrary
inputs, for both cut specifications.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.storage.engine import Engine

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=14, unique=True
)


class TestEngineParityRandom:
    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.integers(2, 5), st.sampled_from([2.0, 4.0, 8.0]))
    def test_size_spec(self, values, k, c):
        relation = numbers_relation(values)
        params = DEParams.size(k, c=c)
        direct = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        )
        engined = DuplicateEliminator(
            absdiff_distance(), use_engine=True, cache_distance=False
        ).run(relation, params)
        assert direct.partition == engined.partition

    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.floats(0.005, 0.3), st.sampled_from([2.0, 4.0]))
    def test_diameter_spec(self, values, theta, c):
        relation = numbers_relation(values)
        params = DEParams.diameter(theta, c=c)
        direct = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        )
        engined = DuplicateEliminator(
            absdiff_distance(), use_engine=True, cache_distance=False
        ).run(relation, params)
        assert direct.partition == engined.partition

    @settings(max_examples=10, deadline=None)
    @given(values_strategy)
    def test_tiny_buffer_pool_still_correct(self, values):
        """Phase 2 must stay correct under heavy page eviction."""
        relation = numbers_relation(values)
        params = DEParams.size(3, c=4.0)
        direct = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        )
        tiny = Engine(buffer_pages=2, page_capacity=2)
        engined = DuplicateEliminator(
            absdiff_distance(), engine=tiny, cache_distance=False
        ).run(relation, params)
        assert direct.partition == engined.partition
