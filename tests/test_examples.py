"""Smoke tests: the fast example scripts must run end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Duplicate groups found" in out
        assert "Lisa Simpson" in out

    def test_music_catalog(self, capsys):
        out = run_example("music_catalog.py", capsys)
        assert "paper Table 1" in out
        assert "DE_S(K=5, c=4)" in out
        assert "thr (single linkage" in out

    def test_engine_tour(self, capsys):
        out = run_example("engine_tour.py", capsys)
        assert "Buffer pool after the workload" in out
        assert "hit ratio" in out

    @pytest.mark.slow
    def test_threshold_tuning(self, capsys):
        out = run_example("threshold_tuning.py", capsys)
        assert "Suggested SN threshold" in out
