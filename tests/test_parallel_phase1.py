"""Tests for the batch query API and the chunked parallel Phase-1 engine.

The headline contract under test: for any worker count, pool kind, or
chunk size, :class:`ParallelNNEngine` produces an NN relation
bit-identical to the sequential ``prepare_nn_lists`` — distances, list
order, and NG values included.
"""

from __future__ import annotations

import pytest

from repro.core.formulation import DEParams
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.data.loaders import dataset_names, load_dataset
from repro.distances.cosine import CosineDistance
from repro.distances.edit import EditDistance
from repro.eval.bench_phase1 import nn_checksum
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.parallel import Chunk, ParallelNNEngine, plan_chunks

from tests.helpers import absdiff_distance, numbers_relation


def build_brute(relation, distance=None, **kwargs):
    index = BruteForceIndex(**kwargs)
    index.build(relation, distance or absdiff_distance())
    return index


class TestPlanChunks:
    def test_balanced_contiguous_split(self):
        chunks = plan_chunks(list(range(10)), n_chunks=3)
        assert [list(c.rids) for c in chunks] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]
        assert [c.index for c in chunks] == [0, 1, 2]

    def test_chunk_size_split(self):
        chunks = plan_chunks([5, 7, 9, 11, 13], chunk_size=2)
        assert [list(c.rids) for c in chunks] == [[5, 7], [9, 11], [13]]

    def test_never_emits_empty_chunks(self):
        chunks = plan_chunks([1, 2], n_chunks=8)
        assert [len(c) for c in chunks] == [1, 1]

    def test_requires_exactly_one_strategy(self):
        with pytest.raises(ValueError):
            plan_chunks([1], n_chunks=1, chunk_size=1)
        with pytest.raises(ValueError):
            plan_chunks([1])

    def test_empty_input(self):
        assert plan_chunks([], n_chunks=4) == []

    def test_chunk_is_iterable_sequence(self):
        chunk = Chunk(index=0, rids=(4, 2))
        assert len(chunk) == 2
        assert list(chunk) == [4, 2]


class TestBatchQueries:
    """knn_batch / within_batch match their per-query counterparts."""

    def setup_method(self):
        self.relation = numbers_relation([0, 1, 3, 7, 8, 9, 20, 21])
        self.records = self.relation.records

    def test_knn_batch_matches_per_query(self):
        batch_index = build_brute(self.relation)
        plain_index = build_brute(self.relation)
        got = batch_index.knn_batch(self.records, 3)
        want = [plain_index.knn(r, 3) for r in self.records]
        assert got == want

    def test_within_batch_matches_per_query(self):
        batch_index = build_brute(self.relation)
        plain_index = build_brute(self.relation)
        got = batch_index.within_batch(self.records, 0.005)
        want = [plain_index.within(r, 0.005) for r in self.records]
        assert got == want

    def test_batch_on_subset_of_relation(self):
        index = build_brute(self.relation)
        subset = self.records[2:5]
        assert index.knn_batch(subset, 2) == [index.knn(r, 2) for r in subset]

    def test_batch_halves_evaluations(self):
        # A whole-relation batch evaluates each unordered pair once.
        index = build_brute(self.relation)
        index.knn_batch(self.records, 3)
        n = len(self.records)
        assert index.evaluations == n * (n - 1) // 2

    def test_per_query_path_reads_cache_but_never_fills(self):
        index = build_brute(self.relation)
        index.knn(self.records[0], 3)
        assert len(index._pair_cache) == 0
        index.knn_batch(self.records, 3)
        filled = len(index._pair_cache)
        assert filled > 0
        index.knn(self.records[0], 3)  # served from cache
        assert len(index._pair_cache) == filled
        assert index.cache_hits > 0

    def test_default_fallback_on_other_indexes(self):
        # BKTree inherits the sequential default implementations.
        index = BKTreeIndex()
        index.build(self.relation, EditDistance())
        assert index.knn_batch(self.records, 2) == [
            index.knn(r, 2) for r in self.records
        ]
        assert index.within_batch(self.records, 0.4) == [
            index.within(r, 0.4) for r in self.records
        ]

    def test_cacheless_index_falls_back(self):
        index = build_brute(self.relation, cache_pairs=False)
        plain = build_brute(self.relation)
        assert index.knn_batch(self.records, 3) == plain.knn_batch(self.records, 3)
        assert len(index._pair_cache) == 0


class TestPhase1Batch:
    """The fused kernel equals the per-record knn/within + NG sequence."""

    def setup_method(self):
        self.relation = numbers_relation([0, 1, 3, 7, 8, 9, 20, 21, 200])
        self.records = self.relation.records

    def reference(self, index, k=None, theta=None, p=2.0, radius_fn=None):
        results = []
        for record in self.records:
            if theta is not None:
                neighbors = index.within(record, theta)
                if k is not None:
                    neighbors = neighbors[:k]
            else:
                neighbors = index.knn(record, k)
            nn_distance = neighbors[0].distance if neighbors else None
            ng = index.neighborhood_growth(
                record, p=p, nn_distance=nn_distance, radius_fn=radius_fn
            )
            results.append((neighbors, ng))
        return results

    @pytest.mark.parametrize(
        "shape",
        [dict(k=3), dict(theta=0.005), dict(k=2, theta=0.005)],
        ids=["size", "diameter", "combined"],
    )
    def test_matches_per_record_sequence(self, shape):
        fused = build_brute(self.relation).phase1_batch(self.records, **shape)
        want = self.reference(build_brute(self.relation), **shape)
        assert fused == want

    def test_exact_duplicates(self):
        relation = numbers_relation([5, 5, 5, 9, 30])
        records = relation.records
        fused = build_brute(relation).phase1_batch(records, k=2)
        index = build_brute(relation)
        for record, (neighbors, ng) in zip(records, fused):
            assert neighbors == index.knn(record, 2)
            assert ng == index.neighborhood_growth(record)

    def test_singleton_relation(self):
        relation = numbers_relation([42])
        (neighbors, ng), = build_brute(relation).phase1_batch(relation.records, k=3)
        assert neighbors == []
        assert ng == 1

    def test_radius_fn_falls_back_to_generic(self):
        radius_fn = lambda nn: 3.0 * nn  # noqa: E731
        fused = build_brute(self.relation).phase1_batch(
            self.records, k=3, radius_fn=radius_fn
        )
        want = self.reference(build_brute(self.relation), k=3, radius_fn=radius_fn)
        assert fused == want

    def test_requires_some_cut(self):
        index = build_brute(self.relation)
        with pytest.raises(ValueError, match="k, theta, or both"):
            index.phase1_batch(self.records)
        cacheless = build_brute(self.relation, cache_pairs=False)
        with pytest.raises(ValueError, match="k, theta, or both"):
            cacheless.phase1_batch(self.records)


class TestEngineParity:
    """ParallelNNEngine output is identical to sequential Phase 1."""

    PARAMS = [DEParams.size(4, c=4.0), DEParams.diameter(0.3, c=4.0)]

    def sequential(self, relation, params, distance_cls=CosineDistance):
        index = BruteForceIndex()
        index.build(relation, distance_cls())
        return prepare_nn_lists(relation, index, params)

    def engine_run(self, relation, params, distance_cls=CosineDistance, **kwargs):
        index = BruteForceIndex()
        index.build(relation, distance_cls())
        return ParallelNNEngine(**kwargs).run(relation, index, params)

    @pytest.mark.parametrize("dataset", dataset_names())
    def test_all_datasets_all_worker_counts(self, dataset):
        relation = load_dataset(
            dataset, n_entities=15, duplicate_fraction=0.3, seed=1
        ).relation
        for params in self.PARAMS:
            want = nn_checksum(self.sequential(relation, params))
            for n_workers in (1, 2, 4):
                got = nn_checksum(
                    self.engine_run(relation, params, n_workers=n_workers)
                )
                assert got == want, (dataset, params.cut, n_workers)

    def test_combined_cut_parity(self, restaurants_dataset):
        relation = restaurants_dataset.relation
        params = DEParams.combined(3, 0.4, c=4.0)
        want = nn_checksum(self.sequential(relation, params))
        got = nn_checksum(self.engine_run(relation, params, n_workers=4))
        assert got == want

    def test_process_pool_parity(self, restaurants_dataset):
        relation = restaurants_dataset.relation
        params = DEParams.size(4, c=4.0)
        want = nn_checksum(self.sequential(relation, params))
        got = nn_checksum(
            self.engine_run(relation, params, n_workers=2, pool="process")
        )
        assert got == want

    def test_chunk_size_does_not_change_result(self, restaurants_dataset):
        relation = restaurants_dataset.relation
        params = DEParams.size(4, c=4.0)
        want = nn_checksum(self.sequential(relation, params))
        for chunk_size in (1, 3, 1000):
            got = nn_checksum(
                self.engine_run(
                    relation, params, n_workers=2, chunk_size=chunk_size
                )
            )
            assert got == want, chunk_size

    def test_gapped_record_ids(self):
        base = numbers_relation([0, 1, 3, 7, 8, 9, 20, 21])
        relation = base.subset([0, 2, 3, 5, 7], name="gapped")
        assert relation.ids() == [0, 2, 3, 5, 7]
        params = DEParams.size(3, c=4.0)
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        want = nn_checksum(prepare_nn_lists(relation, index, params))
        index2 = BruteForceIndex()
        index2.build(relation, absdiff_distance())
        got = nn_checksum(
            ParallelNNEngine(n_workers=2).run(relation, index2, params)
        )
        assert got == want

    def test_random_order_parity(self, restaurants_dataset):
        relation = restaurants_dataset.relation
        params = DEParams.size(4, c=4.0)
        want = nn_checksum(self.sequential(relation, params))
        got = nn_checksum(
            self.engine_run(
                relation, params, n_workers=2
            )
        )
        index = BruteForceIndex()
        index.build(relation, CosineDistance())
        random_nn = ParallelNNEngine(n_workers=2).run(
            relation, index, params, order="random", order_seed=9
        )
        assert got == want
        assert nn_checksum(random_nn) == want

    def test_rejects_foreign_index(self):
        relation = numbers_relation([1, 2, 3])
        other = numbers_relation([4, 5, 6])
        index = build_brute(other)
        with pytest.raises(ValueError, match="not built over"):
            ParallelNNEngine().run(relation, index, DEParams.size(2))

    def test_engine_validates_arguments(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelNNEngine(n_workers=0)
        with pytest.raises(ValueError, match="pool"):
            ParallelNNEngine(pool="fiber")
        relation = numbers_relation([1, 2])
        index = build_brute(relation)
        with pytest.raises(ValueError, match="lookup order"):
            ParallelNNEngine().run(relation, index, DEParams.size(2), order="dfs")


class TestEngineStats:
    def test_stats_accounting(self):
        relation = numbers_relation(list(range(30)))
        index = build_brute(relation)
        stats = Phase1Stats()
        ParallelNNEngine(n_workers=2).run(
            relation, index, DEParams.size(3, c=4.0), stats=stats
        )
        assert stats.lookups == 30
        assert stats.seconds > 0.0
        assert stats.n_chunks == len(stats.chunk_seconds) > 1
        assert stats.evaluations == index.evaluations
        assert stats.cache_hits == index.cache_hits
        assert stats.cache_misses == index.cache_misses
        assert 0.0 < stats.cache_hit_rate < 1.0

    def test_process_pool_stats_sum_worker_deltas(self):
        relation = numbers_relation(list(range(20)))
        index = build_brute(relation)
        stats = Phase1Stats()
        ParallelNNEngine(n_workers=2, pool="process").run(
            relation, index, DEParams.size(3, c=4.0), stats=stats
        )
        assert stats.lookups == 20
        assert stats.evaluations > 0
        # The parent-process index never ran a query itself.
        assert index.evaluations == 0


class TestPrepareNNListsDelegation:
    def test_n_workers_gt_one_matches_sequential(self):
        relation = numbers_relation([0, 1, 3, 7, 8, 9, 20, 21])
        params = DEParams.size(3, c=4.0)
        want = nn_checksum(prepare_nn_lists(relation, build_brute(relation), params))
        got = nn_checksum(
            prepare_nn_lists(
                relation, build_brute(relation), params, n_workers=3
            )
        )
        assert got == want

    def test_delegation_fills_chunk_stats(self):
        relation = numbers_relation(list(range(16)))
        stats = Phase1Stats()
        prepare_nn_lists(
            relation,
            build_brute(relation),
            DEParams.size(2, c=4.0),
            n_workers=2,
            stats=stats,
        )
        assert stats.n_chunks > 0

    def test_sequential_path_leaves_chunks_untouched(self):
        relation = numbers_relation(list(range(8)))
        stats = Phase1Stats()
        prepare_nn_lists(
            relation, build_brute(relation), DEParams.size(2, c=4.0), stats=stats
        )
        assert stats.n_chunks == 0
        assert stats.chunk_seconds == []


class TestBoundedPairCache:
    def test_eviction_bounds_cache(self):
        relation = numbers_relation(list(range(20)))
        index = build_brute(relation, max_cache_entries=10)
        index.knn_batch(relation.records, 3)
        assert len(index._pair_cache) <= 10
        assert index.cache_evictions > 0

    def test_eviction_does_not_change_results(self):
        relation = numbers_relation(list(range(20)))
        bounded = build_brute(relation, max_cache_entries=5)
        unbounded = build_brute(relation)
        params = DEParams.size(3, c=4.0)
        assert nn_checksum(
            ParallelNNEngine(n_workers=2).run(relation, bounded, params)
        ) == nn_checksum(
            ParallelNNEngine(n_workers=2).run(relation, unbounded, params)
        )

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_cache_entries"):
            BruteForceIndex(max_cache_entries=0)

    def test_build_resets_cache_counters(self):
        relation = numbers_relation([1, 2, 3, 4])
        index = build_brute(relation)
        index.knn_batch(relation.records, 2)
        assert index.cache_misses > 0
        index.build(relation, absdiff_distance())
        assert len(index._pair_cache) == 0
        assert (index.cache_hits, index.cache_misses, index.cache_evictions) == (
            0,
            0,
            0,
        )
        assert index.cache_hit_rate == 0.0
