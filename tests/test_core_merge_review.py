"""Tests for golden-record merging and review queues."""

import pytest

from repro.core.formulation import DEParams
from repro.core.merge import (
    MergePlan,
    first_by_id,
    least_abbreviated_value,
    longest_value,
    merge_partition,
    most_frequent_value,
)
from repro.core.pipeline import DuplicateEliminator
from repro.core.result import Partition
from repro.core.review import fragile_groups, near_miss_pairs
from repro.data.schema import Relation
from repro.distances.edit import EditDistance

from tests.helpers import absdiff_distance, numbers_relation


class TestResolvers:
    def test_longest(self):
        assert longest_value(["ab", "abcd", "abc"]) == "abcd"

    def test_longest_tie_keeps_first(self):
        assert longest_value(["ab", "cd"]) == "ab"

    def test_most_frequent(self):
        assert most_frequent_value(["x", "y", "y"]) == "y"

    def test_most_frequent_tie_keeps_first(self):
        assert most_frequent_value(["x", "y"]) == "x"

    def test_least_abbreviated(self):
        values = ["M S Corp", "Microsoft Corp", "Microsoft Corporation"]
        assert least_abbreviated_value(values) == "Microsoft Corporation"

    def test_first_by_id(self):
        assert first_by_id(["b", "a"]) == "b"


class TestMergePartition:
    @pytest.fixture
    def relation(self):
        return Relation.from_rows(
            "orgs",
            ("name", "city"),
            [
                ["Microsoft Corp", "Seattle"],
                ["Microsoft Corporation", "Seattle"],
                ["Boeing", "Chicago"],
            ],
        )

    def test_groups_collapse(self, relation):
        partition = Partition.from_groups([[0, 1], [2]])
        result = merge_partition(relation, partition)
        assert len(result.golden) == 2
        assert result.golden.get(0).fields == ("Microsoft Corporation", "Seattle")
        assert result.golden.get(1).fields == ("Boeing", "Chicago")

    def test_lineage(self, relation):
        partition = Partition.from_groups([[0, 1], [2]])
        result = merge_partition(relation, partition)
        assert result.sources_of(0) == (0, 1)
        assert result.sources_of(1) == (2,)
        assert result.n_merged_away == 1

    def test_per_field_resolvers(self, relation):
        partition = Partition.from_groups([[0, 1], [2]])
        plan = MergePlan(per_field={"name": first_by_id})
        result = merge_partition(relation, partition, plan=plan)
        assert result.golden.get(0).fields[0] == "Microsoft Corp"

    def test_golden_name(self, relation):
        partition = Partition.singletons(relation.ids())
        result = merge_partition(relation, partition, name="clean")
        assert result.golden.name == "clean"
        assert len(result.golden) == 3
        assert result.n_merged_away == 0

    def test_end_to_end_with_pipeline(self):
        relation = Relation.from_strings(
            "r",
            [
                "cascade systems corporation",
                "cascade systems corp",
                "granite manufacturing",
                "sterling partners",
            ],
        )
        de = DuplicateEliminator(EditDistance()).run(
            relation, DEParams.size(3, c=4.0)
        )
        merged = merge_partition(relation, de.partition)
        assert len(merged.golden) == 3
        texts = merged.golden.texts()
        assert "cascade systems corporation" in texts


class TestReviewQueues:
    def test_near_miss_sn_pair_detected(self):
        # Clump [0..4]: pairs are compact but SN(c=3) blocks them (the
        # interior ng is 3) -> near-miss with overshoot 0.
        relation = numbers_relation([0, 1, 2, 3, 4, 1000, 1001])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=3.0)
        )
        queue = near_miss_pairs(result)
        assert queue, "expected at least one near-miss"
        top = queue[0]
        assert top.kind in ("sn-near-miss", "cs-near-miss")
        assert top.margin <= 2.0
        assert not result.partition.same_group(*top.members)

    def test_grouped_pairs_not_in_queue(self):
        relation = numbers_relation([0, 1, 1000, 1001])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(2, c=4.0)
        )
        queue = near_miss_pairs(result)
        grouped = result.partition.duplicate_pairs()
        assert all(tuple(c.members) not in grouped for c in queue)

    def test_limit_respected(self):
        relation = numbers_relation(list(range(0, 60, 2)))
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=2.0)
        )
        queue = near_miss_pairs(result, limit=5)
        assert len(queue) <= 5

    def test_queue_sorted_by_margin(self):
        relation = numbers_relation([0, 1, 2, 3, 4, 50, 51, 1000, 1001])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=3.0)
        )
        queue = near_miss_pairs(result)
        margins = [c.margin for c in queue]
        assert margins == sorted(margins)

    def test_fragile_groups(self):
        # The pair (5,6) is grouped with max(ng)=2 under c=3: headroom 1.
        relation = numbers_relation([0, 1, 2, 3, 4, 1000, 1001])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=3.0)
        )
        fragile = fragile_groups(result, sn_window=1.5)
        assert any(c.members == (5, 6) for c in fragile)

    def test_fragile_groups_empty_when_comfortable(self):
        relation = numbers_relation([0, 1, 1000, 1001])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(2, c=40.0)
        )
        assert fragile_groups(result, sn_window=1.0) == []
