"""Tests for the LAESA pivot index: exact under metric distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Relation
from repro.distances.jaccard import TokenJaccardDistance
from repro.index.bruteforce import BruteForceIndex
from repro.index.pivot import PivotIndex

from tests.helpers import absdiff_distance, numbers_relation


def build_pair(relation, distance, n_pivots=4):
    pivot = PivotIndex(n_pivots=n_pivots)
    pivot.build(relation, distance)
    brute = BruteForceIndex()
    brute.build(relation, distance)
    return pivot, brute


class TestExactnessOnMetric:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 500), min_size=2, max_size=20, unique=True),
        st.integers(1, 5),
    )
    def test_knn_matches_bruteforce_absdiff(self, values, k):
        relation = numbers_relation(values)
        pivot, brute = build_pair(relation, absdiff_distance())
        for record in relation:
            got = [(n.rid, pytest.approx(n.distance)) for n in pivot.knn(record, k)]
            want = [(n.rid, pytest.approx(n.distance)) for n in brute.knn(record, k)]
            assert got == want

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 500), min_size=2, max_size=16, unique=True),
        st.floats(0.001, 0.4),
    )
    def test_within_matches_bruteforce_absdiff(self, values, radius):
        relation = numbers_relation(values)
        pivot, brute = build_pair(relation, absdiff_distance())
        for record in relation:
            got = [n.rid for n in pivot.within(record, radius)]
            want = [n.rid for n in brute.within(record, radius)]
            assert got == want

    def test_token_jaccard_is_supported(self):
        relation = Relation.from_strings(
            "r",
            [
                "golden dragon express",
                "golden dragon",
                "jade palace",
                "jade palace downtown",
                "blue bistro",
            ],
        )
        pivot, brute = build_pair(relation, TokenJaccardDistance())
        for record in relation:
            assert [n.rid for n in pivot.knn(record, 3)] == [
                n.rid for n in brute.knn(record, 3)
            ]

    def test_ng_matches_bruteforce(self):
        relation = numbers_relation([0, 3, 9, 27, 200])
        pivot, brute = build_pair(relation, absdiff_distance())
        for record in relation:
            assert pivot.neighborhood_growth(record) == brute.neighborhood_growth(
                record
            )


class TestPruning:
    def test_pruning_reduces_evaluations(self):
        values = list(range(0, 400, 5))
        relation = numbers_relation(values)
        pruned = PivotIndex(n_pivots=8)
        pruned.build(relation, absdiff_distance())
        pruned.evaluations = 0
        unpruned = PivotIndex(n_pivots=8, assume_metric=False)
        unpruned.build(relation, absdiff_distance())
        unpruned.evaluations = 0
        for record in relation:
            pruned.within(record, 0.01)
            unpruned.within(record, 0.01)
        assert pruned.evaluations < unpruned.evaluations / 2

    def test_no_metric_assumption_still_exact(self):
        relation = numbers_relation([0, 5, 10, 100])
        index = PivotIndex(n_pivots=2, assume_metric=False)
        index.build(relation, absdiff_distance())
        brute = BruteForceIndex()
        brute.build(relation, absdiff_distance())
        for record in relation:
            assert [n.rid for n in index.knn(record, 2)] == [
                n.rid for n in brute.knn(record, 2)
            ]


class TestEdgeCases:
    def test_validation(self):
        with pytest.raises(ValueError):
            PivotIndex(n_pivots=0)

    def test_fewer_records_than_pivots(self):
        relation = numbers_relation([0, 10])
        index = PivotIndex(n_pivots=10)
        index.build(relation, absdiff_distance())
        assert [n.rid for n in index.knn(relation.get(0), 1)] == [1]

    def test_singleton_relation(self):
        relation = numbers_relation([42])
        index = PivotIndex()
        index.build(relation, absdiff_distance())
        assert index.knn(relation.get(0), 3) == []

    def test_duplicate_coordinates(self):
        relation = numbers_relation([7, 7, 7, 50])
        index = PivotIndex(n_pivots=4)
        index.build(relation, absdiff_distance())
        hits = index.knn(relation.get(0), 2)
        assert [h.rid for h in hits] == [1, 2]
        assert hits[0].distance == 0.0

    def test_empty_relation(self):
        relation = numbers_relation([])
        index = PivotIndex()
        index.build(relation, absdiff_distance())
        assert index._pivots == []
