"""Property tests: incremental DE equals batch DE at every prefix."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.incremental import IncrementalDeduplicator
from repro.core.pipeline import DuplicateEliminator
from repro.data.schema import Relation
from repro.distances.edit import EditDistance

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=1, max_size=14, unique=True
)


def batch_partition(values, params):
    relation = numbers_relation(values)
    solver = DuplicateEliminator(absdiff_distance(), cache_distance=False)
    return solver.run(relation, params).partition


class TestMatchesBatch:
    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.integers(2, 5), st.sampled_from([2.0, 3.0, 4.0]))
    def test_size_spec_final_state(self, values, k, c):
        params = DEParams.size(k, c=c)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        assert inc.partition() == batch_partition(values, params)

    @settings(max_examples=20, deadline=None)
    @given(values_strategy, st.floats(0.01, 0.2))
    def test_diameter_spec_final_state(self, values, theta):
        params = DEParams.diameter(theta, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        assert inc.partition() == batch_partition(values, params)

    @settings(max_examples=12, deadline=None)
    @given(values_strategy)
    def test_every_prefix_matches_batch(self, values):
        """The maintained solution is correct after *each* insert."""
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for i, value in enumerate(values):
            inc.add((str(value),))
            assert inc.partition() == batch_partition(values[: i + 1], params)

    @settings(max_examples=15, deadline=None)
    @given(values_strategy)
    def test_nn_state_matches_batch_phase1(self, values):
        from repro.core.nn_phase import prepare_nn_lists
        from repro.index.bruteforce import BruteForceIndex

        params = DEParams.size(4, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        relation = numbers_relation(values)
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        batch_nn = prepare_nn_lists(relation, index, params)
        inc_nn = inc.nn_relation()
        for entry in batch_nn:
            other = inc_nn.get(entry.rid)
            assert other.neighbor_ids == entry.neighbor_ids, entry.rid
            assert other.ng == entry.ng, entry.rid


class TestBehaviour:
    def test_duplicate_detected_after_insert(self):
        # c = 3 keeps the far record (ng = 3: everything is within twice
        # its huge nn distance) out of any group.
        params = DEParams.size(3, c=3.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("0",))
        inc.add(("500",))
        # In a 2-record relation, the pair is vacuously a compact SN set.
        assert inc.partition().non_trivial_groups() == [(0, 1)]
        inc.add(("1",))  # duplicate of record 0
        # The true duplicate displaces the spurious pair; the far
        # record's ng rises to 3 and SN (c=3) expels it.
        assert inc.partition().non_trivial_groups() == [(0, 2)]

    def test_seed_relation_bulk_load(self):
        seed = numbers_relation([0, 1, 100, 101])
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params, seed=seed)
        assert len(inc) == 4
        assert inc.partition().non_trivial_groups() == [(0, 1), (2, 3)]

    def test_ids_are_sequential(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(2, c=4.0)
        )
        assert inc.add(("5",)) == 0
        assert inc.add(("6",)) == 1

    def test_string_records_with_edit_distance(self):
        seed = Relation.from_strings(
            "r", ["cascade systems", "granite manufacturing"]
        )
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(EditDistance(), params, seed=seed)
        inc.add(("cascade sistems",))
        # The typo'd copy must land in record 0's group (the whole
        # 3-record relation is trivially compact, so the group may
        # legitimately also contain the third record at K = 3).
        assert inc.partition().same_group(0, 2)

    def test_dense_insertions_update_ng(self):
        # Insert a whole family around record 0: its NG must grow and
        # the SN criterion must eventually reject its pairings.
        params = DEParams.size(3, c=3.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("0",))
        inc.add(("1",))
        assert inc.partition().non_trivial_groups() == [(0, 1)]
        inc.add(("2",))
        inc.add(("3",))
        # Interior records now have ng >= 3; c=3 dissolves the clump.
        assert inc.partition().non_trivial_groups() == []


class TestZeroDistanceDuplicates:
    """Regression: a third exact duplicate must mark the first two as
    NG-affected.

    With ``old_nn == 0.0`` the affected test ``d < p * old_nn`` can
    never fire for a co-located newcomer (``d == 0.0``), even though
    ``_compute_ng`` counts zero-distance records into the degenerate
    zero-radius neighborhood — the maintained NG froze at 2 while a
    from-scratch batch run reports 3.
    """

    def run_batch(self, values, params):
        relation = numbers_relation(values)
        solver = DuplicateEliminator(absdiff_distance(), cache_distance=False)
        return solver.run(relation, params)

    def check_matches_batch(self, values, params):
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        batch = self.run_batch(values, params)
        inc_nn = inc.nn_relation()
        for entry in batch.nn_relation:
            assert inc_nn.get(entry.rid).ng == entry.ng, entry.rid
        assert inc.partition() == batch.partition

    def test_triple_exact_duplicate_diameter_cut(self):
        self.check_matches_batch(
            [7, 7, 7, 500], DEParams.diameter(0.05, c=2.5)
        )

    def test_triple_exact_duplicate_size_cut(self):
        self.check_matches_batch([7, 7, 7, 500], DEParams.size(3, c=2.5))

    def test_ng_refreshes_on_each_colocated_insert(self):
        params = DEParams.diameter(0.05, c=2.5)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("7",))
        inc.add(("7",))
        for expected_ng in (3, 4):
            inc.add(("7",))
            nn = inc.nn_relation()
            assert nn.get(0).ng == expected_ng
            assert nn.get(1).ng == expected_ng
