"""Property tests: incremental DE equals batch DE at every prefix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.incremental import IncrementalDeduplicator
from repro.core.pipeline import DuplicateEliminator
from repro.data.schema import Relation
from repro.distances.base import CachedDistance, DistanceFunction
from repro.distances.edit import EditDistance
from repro.run.config import RunConfig
from repro.verify.incremental import FrozenDistance, batch_reference

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=1, max_size=14, unique=True
)


def batch_partition(values, params):
    relation = numbers_relation(values)
    solver = DuplicateEliminator(absdiff_distance(), cache_distance=False)
    return solver.run(relation, params).partition


class TestMatchesBatch:
    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.integers(2, 5), st.sampled_from([2.0, 3.0, 4.0]))
    def test_size_spec_final_state(self, values, k, c):
        params = DEParams.size(k, c=c)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        assert inc.partition() == batch_partition(values, params)

    @settings(max_examples=20, deadline=None)
    @given(values_strategy, st.floats(0.01, 0.2))
    def test_diameter_spec_final_state(self, values, theta):
        params = DEParams.diameter(theta, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        assert inc.partition() == batch_partition(values, params)

    @settings(max_examples=12, deadline=None)
    @given(values_strategy)
    def test_every_prefix_matches_batch(self, values):
        """The maintained solution is correct after *each* insert."""
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for i, value in enumerate(values):
            inc.add((str(value),))
            assert inc.partition() == batch_partition(values[: i + 1], params)

    @settings(max_examples=15, deadline=None)
    @given(values_strategy)
    def test_nn_state_matches_batch_phase1(self, values):
        from repro.core.nn_phase import prepare_nn_lists
        from repro.index.bruteforce import BruteForceIndex

        params = DEParams.size(4, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        relation = numbers_relation(values)
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        batch_nn = prepare_nn_lists(relation, index, params)
        inc_nn = inc.nn_relation()
        for entry in batch_nn:
            other = inc_nn.get(entry.rid)
            assert other.neighbor_ids == entry.neighbor_ids, entry.rid
            assert other.ng == entry.ng, entry.rid


class TestBehaviour:
    def test_duplicate_detected_after_insert(self):
        # c = 3 keeps the far record (ng = 3: everything is within twice
        # its huge nn distance) out of any group.
        params = DEParams.size(3, c=3.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("0",))
        inc.add(("500",))
        # In a 2-record relation, the pair is vacuously a compact SN set.
        assert inc.partition().non_trivial_groups() == [(0, 1)]
        inc.add(("1",))  # duplicate of record 0
        # The true duplicate displaces the spurious pair; the far
        # record's ng rises to 3 and SN (c=3) expels it.
        assert inc.partition().non_trivial_groups() == [(0, 2)]

    def test_seed_relation_bulk_load(self):
        seed = numbers_relation([0, 1, 100, 101])
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params, seed=seed)
        assert len(inc) == 4
        assert inc.partition().non_trivial_groups() == [(0, 1), (2, 3)]

    def test_ids_are_sequential(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(2, c=4.0)
        )
        assert inc.add(("5",)) == 0
        assert inc.add(("6",)) == 1

    def test_string_records_with_edit_distance(self):
        seed = Relation.from_strings(
            "r", ["cascade systems", "granite manufacturing"]
        )
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(EditDistance(), params, seed=seed)
        inc.add(("cascade sistems",))
        # The typo'd copy must land in record 0's group (the whole
        # 3-record relation is trivially compact, so the group may
        # legitimately also contain the third record at K = 3).
        assert inc.partition().same_group(0, 2)

    def test_dense_insertions_update_ng(self):
        # Insert a whole family around record 0: its NG must grow and
        # the SN criterion must eventually reject its pairings.
        params = DEParams.size(3, c=3.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("0",))
        inc.add(("1",))
        assert inc.partition().non_trivial_groups() == [(0, 1)]
        inc.add(("2",))
        inc.add(("3",))
        # Interior records now have ng >= 3; c=3 dissolves the clump.
        assert inc.partition().non_trivial_groups() == []


class TestZeroDistanceDuplicates:
    """Regression: a third exact duplicate must mark the first two as
    NG-affected.

    With ``old_nn == 0.0`` the affected test ``d < p * old_nn`` can
    never fire for a co-located newcomer (``d == 0.0``), even though
    ``_compute_ng`` counts zero-distance records into the degenerate
    zero-radius neighborhood — the maintained NG froze at 2 while a
    from-scratch batch run reports 3.
    """

    def run_batch(self, values, params):
        relation = numbers_relation(values)
        solver = DuplicateEliminator(absdiff_distance(), cache_distance=False)
        return solver.run(relation, params)

    def check_matches_batch(self, values, params):
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in values:
            inc.add((str(value),))
        batch = self.run_batch(values, params)
        inc_nn = inc.nn_relation()
        for entry in batch.nn_relation:
            assert inc_nn.get(entry.rid).ng == entry.ng, entry.rid
        assert inc.partition() == batch.partition

    def test_triple_exact_duplicate_diameter_cut(self):
        self.check_matches_batch(
            [7, 7, 7, 500], DEParams.diameter(0.05, c=2.5)
        )

    def test_triple_exact_duplicate_size_cut(self):
        self.check_matches_batch([7, 7, 7, 500], DEParams.size(3, c=2.5))

    def test_ng_refreshes_on_each_colocated_insert(self):
        params = DEParams.diameter(0.05, c=2.5)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("7",))
        inc.add(("7",))
        for expected_ng in (3, 4):
            inc.add(("7",))
            nn = inc.nn_relation()
            assert nn.get(0).ng == expected_ng
            assert nn.get(1).ng == expected_ng


class _PrepareTracking(DistanceFunction):
    """A distance that records every corpus it was prepared on."""

    def __init__(self):
        self.name = "tracking"
        self.prepared_sizes = []

    def prepare(self, relation):
        self.prepared_sizes.append(len(relation))

    def distance(self, a, b):
        return abs(float(a.fields[0]) - float(b.fields[0])) / 1000.0


class TestLazyPrepare:
    """Regression: a no-seed construction must still prepare the
    distance — the old path only called ``prepare`` on a seed relation,
    so corpus-statistic distances (IDF cosine, fms) scored every
    arrival against an empty corpus."""

    def test_first_add_triggers_prepare(self):
        tracking = _PrepareTracking()
        inc = IncrementalDeduplicator(tracking, DEParams.size(3, c=4.0))
        assert tracking.prepared_sizes == []  # lazy, not at construction
        inc.add(("5",))
        assert tracking.prepared_sizes == [1]
        assert inc.refits == 1
        inc.add(("6",))
        inc.add(("7",))
        # Statistics are frozen after the first arrival by default.
        assert tracking.prepared_sizes == [1]

    def test_seed_prepares_once_on_the_seed(self):
        tracking = _PrepareTracking()
        IncrementalDeduplicator(
            tracking, DEParams.size(3, c=4.0), seed=numbers_relation([1, 2, 3])
        )
        assert tracking.prepared_sizes == [3]

    def test_refit_every_reprepares_on_the_live_relation(self):
        tracking = _PrepareTracking()
        inc = IncrementalDeduplicator(
            tracking, DEParams.size(3, c=4.0), refit_every=2
        )
        for value in (1, 2, 3, 4, 5):
            inc.add((str(value),))
        # Prepared at arrival 1 (lazy), then every second operation.
        assert tracking.prepared_sizes == [1, 3, 5]
        assert inc.refits == 3

    def test_refit_every_one_keeps_batch_parity_with_idf_weights(self):
        from repro.distances.cosine import CosineDistance

        words = [
            "alpha beta", "alpha beta", "gamma delta corp",
            "gamma delta corporation", "omega systems", "zzz unrelated",
        ]
        inc = IncrementalDeduplicator(
            CosineDistance(),
            DEParams.size(3, c=4.0),
            schema=("value",),
            refit_every=1,
        )
        for i, word in enumerate(words):
            inc.add((word,))
            relation = Relation.from_strings("r", words[: i + 1])
            batch = DuplicateEliminator(CosineDistance()).run(
                relation, DEParams.size(3, c=4.0)
            )
            assert inc.partition() == batch.partition, i

    def test_explicit_refit_resets_statistics(self):
        tracking = _PrepareTracking()
        inc = IncrementalDeduplicator(tracking, DEParams.size(3, c=4.0))
        inc.add(("1",))
        inc.add(("900",))
        inc.refit()
        assert tracking.prepared_sizes == [1, 2]
        assert inc.refits == 2

    def test_refit_every_must_be_positive(self):
        with pytest.raises(ValueError):
            IncrementalDeduplicator(
                absdiff_distance(), DEParams.size(3, c=4.0), refit_every=0
            )


class TestBoundedCacheMemo:
    """Regression: a bounded ``CachedDistance`` silently evicted pairs
    the insert path re-probes, so the documented "free re-probe" turned
    into silent recomputation.  The fix pins each operation's working
    set in a per-operation memo and warns on bounded caches."""

    def test_bounded_cache_warns(self):
        bounded = CachedDistance(absdiff_distance(), max_entries=4)
        with pytest.warns(UserWarning, match="bounded"):
            IncrementalDeduplicator(bounded, DEParams.size(3, c=4.0))

    def test_unbounded_cache_does_not_warn(self, recwarn):
        IncrementalDeduplicator(
            CachedDistance(absdiff_distance()), DEParams.size(3, c=4.0)
        )
        assert not [w for w in recwarn if "bounded" in str(w.message)]

    def test_memo_pins_working_set_under_tiny_cache(self):
        # max_entries=1 thrashes the shared cache constantly; the
        # per-operation memo must still evaluate each unordered pair
        # exactly once per insert.
        params = DEParams.size(3, c=4.0)
        with pytest.warns(UserWarning, match="bounded"):
            inc = IncrementalDeduplicator(
                CachedDistance(absdiff_distance(), max_entries=1), params
            )
        values = [0, 3, 7, 200, 204, 500, 801]
        for i, value in enumerate(values):
            inc.add((str(value),))
            assert inc.last_op.distance_calls == i  # one per existing record
            assert inc.last_op.pinned_pairs == i
        assert inc.partition() == batch_partition(values, params)

    def test_op_hit_rate_is_perfect_within_an_operation(self):
        # The insert path probes each pair twice (scan + update loop);
        # the second probe must be a memo hit, so the underlying cache
        # sees exactly one miss per pair.
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(3, c=4.0)
        )
        for value in (1, 2, 3, 4):
            inc.add((str(value),))
        op = inc.last_op
        assert op.cache_misses == op.pinned_pairs == op.distance_calls == 3


class TestNoRescanAccounting:
    """Regression: ``_compute_ng`` rescanned the full relation per
    affected record.  The maintained exact-NN head makes inserts O(n)
    total and keeps no-reference removals free of distance calls."""

    def test_insert_evaluates_each_other_record_exactly_once(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(4, c=4.0)
        )
        for i, value in enumerate([0, 1, 2, 3, 100, 101, 102, 500]):
            inc.add((str(value),))
            assert inc.last_op.distance_calls == i

    def test_removing_an_unreferenced_record_costs_no_distance_calls(self):
        # theta = 0.01 (absdiff scale 1000 -> radius 10): the outlier at
        # 500 is in nobody's cut list, is nobody's exact NN, and sits in
        # nobody's neighborhood, so its removal repairs nothing.
        params = DEParams.diameter(0.01, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in (0, 1, 2, 500):
            inc.add((str(value),))
        inc.remove(3)
        assert inc.last_op.rebuilt == 0
        assert inc.last_op.distance_calls == 0

    def test_removing_a_referenced_record_rebuilds_only_referencers(self):
        params = DEParams.diameter(0.01, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in (0, 1, 2, 500):
            inc.add((str(value),))
        inc.remove(1)  # referenced by 0 and 2, not by the outlier
        assert inc.last_op.rebuilt == 2


class TestRemoval:
    def run_batch(self, inc, params):
        return batch_reference(inc).partition

    def test_remove_returns_state_to_batch(self):
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for value in (0, 1, 100, 101, 500):
            inc.add((str(value),))
        inc.remove(1)
        assert len(inc) == 4
        assert inc.partition() == self.run_batch(inc, params)
        # Batch-verified grouping of the survivors: the far outlier
        # stays out, everything else is compact at this K.
        assert inc.partition().non_trivial_groups() == [(0, 2, 3)]

    def test_remove_unknown_rid_raises_before_touching_state(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(3, c=4.0)
        )
        inc.add(("1",))
        before = inc.partition()
        with pytest.raises(KeyError):
            inc.remove(77)
        assert inc.partition() == before

    def test_double_remove_raises(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(3, c=4.0)
        )
        inc.add(("1",))
        inc.add(("2",))
        inc.remove(0)
        with pytest.raises(KeyError):
            inc.remove(0)

    def test_rids_are_never_reused_after_removal(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(3, c=4.0)
        )
        assert inc.add(("1",)) == 0
        inc.remove(0)
        assert inc.add(("2",)) == 1

    def test_remove_down_to_empty(self):
        inc = IncrementalDeduplicator(
            absdiff_distance(), DEParams.size(3, c=4.0)
        )
        for value in (1, 2):
            inc.add((str(value),))
        inc.remove(0)
        inc.remove(1)
        assert len(inc) == 0
        assert inc.partition().groups == ()

    def test_removing_group_member_dissolves_group(self):
        params = DEParams.size(3, c=3.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        inc.add(("0",))
        inc.add(("500",))
        inc.add(("1",))  # displaces the spurious (0, 500) pairing
        assert inc.partition().non_trivial_groups() == [(0, 2)]
        inc.remove(2)
        # Back to the 2-record relation: vacuously compact again.
        assert inc.partition().non_trivial_groups() == [(0, 1)]
        assert inc.partition() == self.run_batch(inc, params)


@st.composite
def interleaved_ops(draw):
    """A random insert/delete trace; removes target live rids only."""
    n_ops = draw(st.integers(3, 14))
    ops = []
    live = []
    rid = 0
    for _ in range(n_ops):
        removable = live and draw(st.integers(0, 3)) == 0
        if removable:
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("remove", victim))
        else:
            ops.append(("add", draw(st.integers(0, 900))))
            live.append(rid)
            rid += 1
    return ops


CUT_PARAMS = [
    DEParams.size(3, c=4.0),
    DEParams.diameter(0.08, c=4.0),
    DEParams.combined(3, 0.1, c=4.0),
]


def apply_ops(inc, ops):
    for op, payload in ops:
        if op == "add":
            inc.add((str(payload),))
        else:
            inc.remove(payload)


class TestInterleavedMatchesBatch:
    """The tentpole invariant: after ANY interleaved insert/delete
    sequence the maintained partition is bit-identical (checksum) to a
    from-scratch batch run over the surviving records — across all
    three cut specifications and both kernel backends."""

    @pytest.mark.parametrize("params", CUT_PARAMS, ids=["size", "diam", "comb"])
    @settings(max_examples=25, deadline=None)
    @given(ops=interleaved_ops())
    def test_final_state_matches_batch(self, params, ops):
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        apply_ops(inc, ops)
        batch = batch_reference(inc)
        assert inc.partition().checksum() == batch.partition.checksum()
        inc_nn = inc.nn_relation()
        for entry in batch.nn_relation:
            ours = inc_nn.get(entry.rid)
            assert ours.neighbor_ids == entry.neighbor_ids, entry.rid
            assert ours.ng == entry.ng, entry.rid

    @settings(max_examples=10, deadline=None)
    @given(ops=interleaved_ops())
    def test_every_step_matches_batch(self, ops):
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(absdiff_distance(), params)
        for op, payload in ops:
            if op == "add":
                inc.add((str(payload),))
            else:
                inc.remove(payload)
            assert (
                inc.partition().checksum()
                == batch_reference(inc).partition.checksum()
            )

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @settings(max_examples=8, deadline=None)
    @given(ops=interleaved_ops())
    def test_matches_batch_under_both_kernel_backends(self, kernel, ops):
        pytest.importorskip("numpy") if kernel == "numpy" else None
        params = DEParams.size(3, c=4.0)
        inc = IncrementalDeduplicator(EditDistance(), params)
        for op, payload in ops:
            if op == "add":
                inc.add((f"rec {payload}",))
            else:
                inc.remove(payload)
        relation = Relation(name="live", schema=inc.relation.schema)
        from repro.data.schema import Record

        for record in inc.relation:
            relation.add(Record(record.rid, record.fields))
        batch = DuplicateEliminator(
            FrozenDistance(EditDistance()), config=RunConfig(kernel=kernel)
        ).run(relation, params)
        assert inc.partition().checksum() == batch.partition.checksum()
