"""Tests for the persistent MinHash postings index.

The index's contract: postings live as append-only logs in the storage
engine (signature rows plus per-band posting rows, with ``op = -1``
tombstones for removals), so a restart over the same engine — or a
JSON snapshot loaded into a fresh one — replays the logs instead of
recomputing any signature.
"""

import pytest

from repro.data.schema import Record
from repro.index.postings import PersistentMinHashPostings
from repro.storage.engine import Engine

CORPUS = [
    "cascade systems",
    "cascade sistems",
    "granite manufacturing",
    "granite manufacturing inc",
    "zzz totally unrelated",
]


def build(engine, **kwargs):
    # q-gram shingles: short two-token strings need sub-token elements
    # for near-duplicates to reach band-collision similarity.
    kwargs.setdefault("use_qgrams", True)
    postings = PersistentMinHashPostings(engine, **kwargs)
    for rid, text in enumerate(CORPUS):
        postings.add(Record(rid, (text,)))
    return postings


class TestColdBuild:
    def test_candidates_surface_near_duplicates(self):
        postings = build(Engine())
        assert 1 in postings.candidates(Record(0, (CORPUS[0],)))
        assert 3 in postings.candidates(Record(2, (CORPUS[2],)))

    def test_signatures_computed_once_per_record(self):
        postings = build(Engine())
        assert postings.signatures_computed == len(CORPUS)
        assert not postings.restored

    def test_duplicate_rid_rejected(self):
        postings = build(Engine())
        with pytest.raises(ValueError):
            postings.add(Record(0, ("again",)))

    def test_contains_and_len(self):
        postings = build(Engine())
        assert len(postings) == len(CORPUS)
        assert 0 in postings
        assert 99 not in postings


class TestWarmRestart:
    def test_restart_replays_log_without_hashing(self):
        engine = Engine()
        first = build(engine)
        probe = Record(0, (CORPUS[0],))
        expected = first.candidates(probe)
        second = PersistentMinHashPostings(engine)
        assert second.restored
        assert second.signatures_computed == 0
        assert len(second) == len(CORPUS)
        assert second.candidates(probe) == expected

    def test_tombstones_survive_restart(self):
        engine = Engine()
        first = build(engine)
        first.remove(1)
        second = PersistentMinHashPostings(engine)
        assert 1 not in second
        assert 1 not in second.candidates(Record(0, (CORPUS[0],)))

    def test_remove_unknown_rid_raises(self):
        postings = build(Engine())
        with pytest.raises(KeyError):
            postings.remove(42)

    def test_rid_can_be_readded_after_removal(self):
        postings = build(Engine())
        postings.remove(0)
        assert 0 not in postings
        postings.add(Record(0, (CORPUS[0],)))
        assert 0 in postings


class TestCompact:
    def test_compact_drops_tombstoned_rows(self):
        engine = Engine()
        postings = build(engine)
        postings.remove(0)
        postings.remove(1)
        probe = Record(2, (CORPUS[2],))
        before = postings.candidates(probe)
        dropped = postings.compact()
        assert dropped > 0
        assert postings.candidates(probe) == before
        # A restart over the compacted tables sees the same live set.
        restarted = PersistentMinHashPostings(engine)
        assert len(restarted) == len(CORPUS) - 2
        assert restarted.candidates(probe) == before

    def test_compact_is_idempotent(self):
        postings = build(Engine())
        postings.remove(0)
        postings.compact()
        assert postings.compact() == 0


class TestSnapshot:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "postings.json"
        first = build(Engine())
        first.remove(4)
        first.save(path)
        probe = Record(0, (CORPUS[0],))
        loaded = PersistentMinHashPostings.load(path, Engine())
        assert loaded.restored
        assert loaded.signatures_computed == 0
        assert len(loaded) == len(CORPUS) - 1
        assert loaded.candidates(probe) == first.candidates(probe)

    def test_load_refuses_an_occupied_engine(self, tmp_path):
        path = tmp_path / "postings.json"
        engine = Engine()
        build(engine).save(path)
        with pytest.raises(ValueError):
            PersistentMinHashPostings.load(path, engine)
