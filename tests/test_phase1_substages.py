"""Phase-1 sub-stage attribution and the kernel cache-bypass flag.

The vectorized index build splits Phase 1 into attributed sub-stages
(``tokenize`` / ``sign`` / ``bucket`` on the build side, ``candidates``
/ ``verify`` on the lookup side).  These tests pin the accounting
contract: the timers flow from the index through
:class:`~repro.core.nn_phase.Phase1Stats` into ``RunStats.to_dict``
and the bench payloads, kernel-backed runs report a ``null`` pair-cache
rate plus an explicit ``cache_bypassed`` flag instead of a misleading
``0.0``, and the shard planner reuses (and accounts for) the index's
signature batch.
"""

import pytest

from repro.core.formulation import DEParams
from repro.core.nn_phase import Phase1Stats
from repro.data.loaders import load_dataset
from repro.distances.kernels.compat import have_numpy
from repro.eval.bench_phase1 import build_throughput_table, run_build_throughput
from repro.eval.bench_scale import check_scale_payload
from repro.index.signatures import SignatureFactory
from repro.run.config import RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.run.stats import RunStats
from repro.shard.plan import plan_shards

PARAMS = DEParams.combined(3, 0.4, c=4.0)

#: Sub-stages the MinHash index attributes on the build side and the
#: lookup side respectively.
BUILD_SUBSTAGES = {"tokenize", "sign", "bucket"}
LOOKUP_SUBSTAGES = {"candidates"}


@pytest.fixture(scope="module")
def relation():
    return load_dataset("org", n_entities=120, seed=0).relation


def run_staged(relation, **overrides):
    config = RunConfig(
        distance="cosine", index="minhash", **overrides
    )
    context = RunContext.create(config)
    return StagedPipeline(context).run(relation, PARAMS)


class TestSubstageAccounting:
    def test_minhash_run_attributes_substages(self, relation):
        result = run_staged(relation)
        substages = result.stats.phase1.substage_seconds
        assert BUILD_SUBSTAGES <= set(substages)
        assert LOOKUP_SUBSTAGES <= set(substages)
        assert all(seconds > 0.0 for seconds in substages.values())

    @pytest.mark.skipif(not have_numpy(), reason="numpy not installed")
    def test_kernel_run_attributes_verify(self, relation):
        result = run_staged(relation, kernel="numpy")
        substages = result.stats.phase1.substage_seconds
        assert "verify" in substages
        assert BUILD_SUBSTAGES <= set(substages)

    def test_substages_survive_to_dict(self, relation):
        result = run_staged(relation)
        payload = result.stats.to_dict()
        assert payload["phase1"]["substages"] == dict(
            result.stats.phase1.substage_seconds
        )

    def test_sharded_run_aggregates_substages(self, relation):
        result = run_staged(relation, shards=2, shards_in_flight=1)
        substages = result.stats.phase1.substage_seconds
        assert BUILD_SUBSTAGES <= set(substages)

    def test_add_substages_merges(self):
        stats = Phase1Stats()
        stats.add_substages({"sign": 1.0})
        stats.add_substages({"sign": 0.5, "bucket": 0.25})
        stats.add_substages(None)
        stats.add_substages({})
        assert stats.substage_seconds == {"sign": 1.5, "bucket": 0.25}


class TestCacheBypass:
    def test_flag_requires_kernel_and_no_cache_traffic(self):
        stats = Phase1Stats()
        assert not stats.cache_bypassed
        stats.kernel_evaluations = 10
        assert stats.cache_bypassed
        stats.cache_misses = 1
        assert not stats.cache_bypassed

    def test_to_dict_nulls_rate_on_bypass(self):
        run_stats = RunStats()
        run_stats.phase1.kernel_evaluations = 10
        payload = run_stats.to_dict()["phase1"]
        assert payload["cache_hit_rate"] is None
        assert payload["cache_bypassed"] is True

    def test_to_dict_keeps_rate_on_scalar_runs(self):
        run_stats = RunStats()
        run_stats.phase1.cache_hits = 3
        run_stats.phase1.cache_misses = 1
        payload = run_stats.to_dict()["phase1"]
        assert payload["cache_hit_rate"] == 0.75
        assert payload["cache_bypassed"] is False


class TestBuildThroughput:
    def test_payload_and_table(self):
        payload = run_build_throughput(n_entities=60)
        backends = [row["backend"] for row in payload["rows"]]
        assert backends[0] == "scalar"
        assert "python" in backends
        if have_numpy():
            assert "numpy" in backends
            assert payload["speedup_numpy_vs_python"] is not None
            assert payload["vectorized_backend"] == "numpy"
        assert payload["speedup_vectorized_vs_scalar"] is not None
        assert payload["parity"] is True
        assert payload["vocab_compression"] > 1.0
        table = build_throughput_table(payload)
        assert "scalar" in table
        assert "identical" in table


class TestScaleSpeedupGate:
    PAYLOAD = {
        "runs": [{"checksum": "abc"}],
        "small_parity": {"ok": True},
        "parity": True,
        "min_plan_recall": 1.0,
        "n": 100,
        "build_throughput": {
            "parity": True,
            "speedup_vectorized_vs_scalar": 3.0,
        },
    }

    def test_speedup_above_floor_passes(self):
        assert "speedup" not in check_scale_payload(
            self.PAYLOAD, min_speedup=2.0
        )

    def test_speedup_below_floor_fails(self):
        failures = check_scale_payload(self.PAYLOAD, min_speedup=5.0)
        assert failures["speedup"]

    def test_missing_speedup_fails_when_gated(self):
        payload = dict(self.PAYLOAD, build_throughput={})
        failures = check_scale_payload(payload, min_speedup=1.0)
        assert failures["speedup"]

    def test_no_gate_without_min_speedup(self):
        payload = dict(
            self.PAYLOAD,
            build_throughput={
                "parity": True,
                "speedup_vectorized_vs_scalar": 0.1,
            },
        )
        assert "speedup" not in check_scale_payload(payload)

    def test_build_parity_failure_is_checksum_class(self):
        payload = dict(self.PAYLOAD, build_throughput={"parity": False})
        failures = check_scale_payload(payload)
        assert any("build-throughput" in f for f in failures["checksum"])


class TestPlanSignatureReuse:
    def test_plan_reuses_index_signatures(self, relation):
        from repro.distances.tokens import tokenize

        ids = relation.ids()
        factory = SignatureFactory(64, backend="auto")
        signatures = factory.sign_records(
            ids, lambda rid: tokenize(relation.get(rid).text())
        )
        fresh = plan_shards(relation, 2)
        reused = plan_shards(relation, 2, signatures=signatures)
        assert reused.members == fresh.members
        assert reused.recall == fresh.recall
        # A fresh plan pays for signing; a reusing plan does not.
        assert fresh.sign_seconds > 0.0
        assert reused.sign_seconds == 0.0
        assert "sign_seconds" in fresh.to_dict()

    def test_mismatched_signatures_are_ignored(self, relation):
        factory = SignatureFactory(32, backend="auto")  # wrong n_hashes
        signatures = factory.sign_sets([{"a"}])
        plan = plan_shards(relation, 2, signatures=signatures)
        assert plan.sign_seconds > 0.0
        assert plan.members == plan_shards(relation, 2).members
