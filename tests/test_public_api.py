"""Tests for the top-level public API surface."""


import repro
from repro import Relation, deduplicate


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_classes_exported(self):
        for name in (
            "DEParams",
            "DuplicateEliminator",
            "Partition",
            "EditDistance",
            "FuzzyMatchDistance",
            "BruteForceIndex",
            "QgramInvertedIndex",
        ):
            assert name in repro.__all__


class TestDeduplicateConvenience:
    def test_finds_obvious_duplicates(self):
        relation = Relation.from_strings(
            "r",
            [
                "cascade systems corporation",
                "cascade systems corp",
                "granite manufacturing limited",
                "sterling partners group",
            ],
        )
        result = deduplicate(relation, k=3, c=4.0)
        assert result.duplicate_groups == [(0, 1)]

    def test_custom_distance(self):
        from repro import EditDistance

        relation = Relation.from_strings(
            "r", ["abcdef", "abcdeg", "zzzzzz", "qqqqqq"]
        )
        result = deduplicate(relation, k=2, c=3.0, distance=EditDistance())
        assert result.duplicate_groups == [(0, 1)]

    def test_docstring_example(self):
        """The module docstring's quickstart must stay true."""
        from repro import DEParams, DuplicateEliminator, EditDistance
        from repro.data import table1_relation

        solver = DuplicateEliminator(EditDistance())
        result = solver.run(table1_relation(), DEParams.size(5, c=4.0))
        groups = result.duplicate_groups
        for expected in [(0, 1), (2, 3), (4, 5)]:
            assert expected in groups

    def test_empty_relation(self):
        relation = Relation.from_strings("r", [])
        result = deduplicate(relation)
        assert result.duplicate_groups == []
        assert len(result.partition) == 0

    def test_single_record(self):
        relation = Relation.from_strings("r", ["only one"])
        result = deduplicate(relation)
        assert result.partition.groups == ((0,),)


class TestDoctests:
    def test_package_docstring_examples_hold(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 3
        assert results.failed == 0
