"""Tests for the online serving layer (config, session, stage, trace)."""

import pytest

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.data.schema import Relation
from repro.run.config import ConfigError, RunConfig
from repro.run.context import RunContext
from repro.run.serve import (
    Decision,
    IncrementalStage,
    ServeConfig,
    ServeSession,
    parse_trace_line,
)
from repro.run.stages import RunState
from repro.run.stats import RunStats

WORDS = [
    "cascade systems",
    "cascade sistems",
    "granite manufacturing",
    "granite manufacturing inc",
    "omega research",
]

TRACE = [("add", (w,)) for w in WORDS]


class TestParseTraceLine:
    def test_blank_and_comment_lines_are_skipped(self):
        assert parse_trace_line("") is None
        assert parse_trace_line("   ") is None
        assert parse_trace_line("# a comment") is None

    def test_add_line(self):
        assert parse_trace_line("add,alpha,beta") == ("add", ("alpha", "beta"))

    def test_add_arity_checked_when_requested(self):
        with pytest.raises(ValueError):
            parse_trace_line("add,only one", n_fields=2)
        assert parse_trace_line("add,a,b", n_fields=2) == ("add", ("a", "b"))

    def test_remove_line(self):
        assert parse_trace_line("remove,7") == ("remove", 7)

    def test_remove_needs_integer_rid(self):
        with pytest.raises(ValueError):
            parse_trace_line("remove,xyz")

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            parse_trace_line("upsert,a")


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig()
        assert config.candidates == "exact"
        assert config.params() == DEParams.size(5, c=4.0)

    def test_theta_selects_diameter_cut(self):
        config = ServeConfig(theta=0.2)
        assert config.params() == DEParams.diameter(0.2, c=4.0)

    def test_unknown_distance_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig(distance="nope")

    def test_unknown_candidate_mode_rejected(self):
        with pytest.raises(ConfigError):
            ServeConfig(candidates="oracle")

    def test_cut_required(self):
        with pytest.raises(ConfigError):
            ServeConfig(k=None, theta=None)

    def test_store_requires_minhash(self):
        with pytest.raises(ConfigError):
            ServeConfig(store="p.json")

    def test_verify_requires_exact_candidates(self):
        with pytest.raises(ConfigError):
            ServeConfig(candidates="minhash", verify=True)

    def test_refit_every_bounds(self):
        with pytest.raises(ConfigError):
            ServeConfig(refit_every=0)


class TestServeSession:
    def session(self, **kwargs):
        return ServeSession(ServeConfig(distance="edit", k=3, **kwargs))

    def test_first_arrival_is_canonical(self):
        decision = self.session().insert((WORDS[0],))
        assert decision.decision == "canonical"
        assert decision.rid == 0
        assert decision.canonical == 0
        assert decision.group_size == 1

    def test_near_duplicate_joins_earlier_record(self):
        session = self.session()
        session.insert((WORDS[0],))
        decision = session.insert((WORDS[1],))
        assert decision.decision == "duplicate"
        assert decision.canonical == 0
        assert "duplicate of [0]" in decision.render()

    def test_remove_decision(self):
        session = self.session()
        session.insert((WORDS[0],))
        decision = session.delete(0)
        assert decision.op == "remove"
        assert decision.decision == "removed"
        assert len(session.dedup) == 0

    def test_replay_yields_one_decision_per_operation(self):
        session = self.session()
        decisions = list(session.replay(TRACE + [("remove", 4)]))
        assert len(decisions) == len(TRACE) + 1
        assert [d.seq for d in decisions] == list(range(1, len(decisions) + 1))
        assert decisions[-1].op == "remove"

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            self.session().apply("upsert", ("x",))

    def test_verify_passes_in_exact_mode(self):
        session = self.session()
        list(session.replay(TRACE + [("remove", 1)]))
        report = session.verify(label="trace")
        assert report.ok, report.render()

    def test_minhash_session_owns_engine_and_postings(self):
        session = self.session(candidates="minhash")
        assert session.engine is not None
        assert session.postings is not None
        list(session.replay(TRACE))
        assert len(session.postings) == len(WORDS)
        session.delete(0)
        assert 0 not in session.postings

    def test_store_round_trip_warm_restarts(self, tmp_path):
        store = tmp_path / "postings.json"
        first = self.session(candidates="minhash", store=str(store))
        list(first.replay(TRACE))
        assert first.save_store() == store
        second = self.session(candidates="minhash", store=str(store))
        assert second.postings.restored
        assert second.postings.signatures_computed == 0
        assert len(second.postings) == len(WORDS)

    def test_save_store_is_a_noop_in_exact_mode(self):
        assert self.session().save_store() is None


class TestIncrementalStage:
    def test_stage_leaves_batch_identical_state(self):
        params = DEParams.size(3, c=4.0)
        ctx = RunContext.create(RunConfig(distance="edit"))
        relation = Relation(name="serve", schema=("value",))
        state = RunState(
            relation=relation,
            params=params,
            stats=RunStats(),
        )
        stage = IncrementalStage(TRACE + [("remove", 4)])
        assert stage.name == "incremental"
        stage.run(ctx, state)
        assert len(state.relation) == len(WORDS) - 1
        assert state.partition is not None
        assert state.cs_pairs is not None
        batch = DuplicateEliminator(ctx.distance).run(state.relation, params)
        assert state.partition.checksum() == batch.partition.checksum()

    def test_stage_rejects_unknown_trace_operation(self):
        ctx = RunContext.create(RunConfig(distance="edit"))
        state = RunState(
            relation=Relation(name="serve", schema=("value",)),
            params=DEParams.size(3, c=4.0),
            stats=RunStats(),
        )
        with pytest.raises(ValueError):
            IncrementalStage([("upsert", ("x",))]).run(ctx, state)


class TestDecisionRender:
    def test_add_render_shapes(self):
        canonical = Decision(1, "add", 0, "canonical", 0, 1, 0.001)
        duplicate = Decision(2, "add", 1, "duplicate", 0, 2, 0.002)
        removal = Decision(3, "remove", 1, "removed", -1, 0, 0.0)
        assert "canonical (group size 1)" in canonical.render()
        assert "duplicate of [0]" in duplicate.render()
        assert removal.render().startswith("#3 remove [1]")
