"""Tests for RunConfig validation, round-tripping, and CLI mapping."""

import io

import pytest

from repro.cli import build_parser, main
from repro.run.config import ConfigError, RunConfig, VERIFY_MODES
from repro.run.context import RunContext
from repro.run.registry import make_distance, make_index


class TestValidation:
    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.distance == "fms"
        assert config.index == "brute"
        assert not config.use_engine

    @pytest.mark.parametrize(
        "changes",
        [
            {"order": "zigzag"},
            {"pool": "fibers"},
            {"n_workers": 0},
            {"chunk_size": 0},
            {"buffer_pages": 0},
            {"page_capacity": 0},
            {"verify": "loud"},
            {"spill": True},  # spill without use_engine
            {"shards": 0},
            {"shard_overlap": -0.1},
            {"shard_overlap": 1.01},
            {"shards_in_flight": 0},
            {"shards": 2, "shards_in_flight": 3},  # in-flight > shards
        ],
    )
    def test_invalid_values_rejected(self, changes):
        with pytest.raises(ConfigError):
            RunConfig(**changes)

    def test_shard_fields_accepted(self):
        config = RunConfig(shards=4, shard_overlap=0.5, shards_in_flight=2)
        assert config.shards == 4
        assert config.shard_overlap == 0.5
        assert config.shards_in_flight == 2
        # in-flight == shards is the boundary case and is legal.
        assert RunConfig(shards=3, shards_in_flight=3).shards_in_flight == 3

    def test_config_error_is_value_error(self):
        with pytest.raises(ValueError):
            RunConfig(verify="loud")

    def test_all_verify_modes_accepted(self):
        for mode in VERIFY_MODES:
            assert RunConfig(verify=mode).verify == mode

    def test_spill_with_engine_accepted(self):
        config = RunConfig(spill=True, use_engine=True)
        assert config.spill

    def test_replace_validates(self):
        base = RunConfig()
        assert base.replace(n_workers=4).n_workers == 4
        with pytest.raises(ConfigError):
            base.replace(spill=True)

    def test_frozen(self):
        with pytest.raises(Exception):
            RunConfig().order = "random"


class TestRoundTrip:
    def test_dict_round_trip(self):
        config = RunConfig(
            distance="edit",
            index="bktree",
            n_workers=3,
            use_engine=True,
            spill=True,
            buffer_pages=16,
            verify="strict",
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown RunConfig keys"):
            RunConfig.from_dict({"distance": "edit", "turbo": True})

    def test_cli_round_trip(self):
        args = build_parser().parse_args(
            [
                "dedup", "in.csv", "--distance", "edit", "--index", "qgram",
                "--workers", "2", "--spill", "--buffer-pages", "32",
                "--verify",
            ]
        )
        config = RunConfig.from_cli_args(args)
        assert config.distance == "edit"
        assert config.index == "qgram"
        assert config.n_workers == 2
        assert config.spill and config.use_engine  # --spill implies engine
        assert config.buffer_pages == 32
        assert config.verify == "report"
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_cli_shard_flags(self):
        args = build_parser().parse_args(
            [
                "dedup", "in.csv", "--shards", "3",
                "--shard-overlap", "0.1", "--shards-in-flight", "2",
            ]
        )
        config = RunConfig.from_cli_args(args)
        assert config.shards == 3
        assert config.shard_overlap == 0.1
        assert config.shards_in_flight == 2
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_engine_flag_alone(self):
        args = build_parser().parse_args(["dedup", "in.csv", "--engine"])
        config = RunConfig.from_cli_args(args)
        assert config.use_engine and not config.spill

    def test_describe_shows_non_defaults(self):
        assert RunConfig().describe() == "RunConfig()"
        assert "spill=True" in RunConfig(spill=True, use_engine=True).describe()


class TestCLIExitCodes:
    @pytest.mark.parametrize(
        "argv",
        [
            ["dedup", "in.csv", "--engine", "--buffer-pages", "0"],
            ["dedup", "in.csv", "--workers", "0"],
            ["dedup", "in.csv", "--spill", "--page-capacity", "0"],
            ["dedup", "in.csv", "--shards", "0"],
            ["dedup", "in.csv", "--shards", "2", "--shards-in-flight", "4"],
            ["dedup", "in.csv", "--shards", "2", "--shard-overlap", "1.5"],
            ["dedup", "in.csv", "--shards", "2", "--shard-overlap", "-0.5"],
        ],
    )
    def test_invalid_config_exits_2(self, argv):
        # Config validation fires before the input file is read.
        assert main(argv, out=io.StringIO()) == 2


class TestContext:
    def test_create_resolves_registry_names(self):
        context = RunContext.create(RunConfig(distance="edit", index="bktree"))
        assert context.distance.name.startswith("cached(")
        assert context.index is not None
        assert context.engine is None

    def test_engine_sized_from_config(self):
        context = RunContext.create(
            RunConfig(use_engine=True, buffer_pages=7, page_capacity=5)
        )
        assert context.engine is not None
        assert context.engine.buffer.capacity == 7
        assert context.engine.disk.page_capacity == 5

    def test_spill_without_engine_rejected(self):
        config = RunConfig(spill=True, use_engine=True)
        with pytest.raises(ConfigError):
            RunContext(config, make_distance("edit"), make_index("brute"))

    def test_cache_distance_off(self):
        context = RunContext.create(RunConfig(cache_distance=False))
        assert not context.distance.name.startswith("cached(")

    def test_with_config_resizes_engine(self):
        base = RunContext.create(RunConfig(use_engine=True, buffer_pages=8))
        sibling = base.with_config(RunConfig(use_engine=True, buffer_pages=4))
        assert sibling.engine is not base.engine
        assert sibling.engine.buffer.capacity == 4
        same = base.with_config(RunConfig(use_engine=True, buffer_pages=8))
        assert same.engine is base.engine

    def test_stats_registry(self):
        context = RunContext.create(RunConfig())
        assert context.last_stats is None
        first = context.new_stats()
        second = context.new_stats()
        assert context.runs == [first, second]
        assert context.last_stats is second
