"""Tests for the cluster-level ER metrics."""

import pytest

from repro.core.result import Partition
from repro.data.duplicates import GoldStandard
from repro.eval.cluster_metrics import (
    bcubed,
    closest_cluster_f1,
    variation_of_information,
)


def gold_of(groups):
    gold = GoldStandard()
    for entity, group in enumerate(groups):
        for rid in group:
            gold.add(rid, entity)
    return gold


class TestBCubed:
    def test_perfect(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.from_groups([[0, 1], [2]])
        score = bcubed(partition, gold)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_all_singletons(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.singletons([0, 1, 2])
        score = bcubed(partition, gold)
        assert score.precision == 1.0  # every predicted cluster is pure
        # recall: records 0,1 recover half their cluster, 2 all of it.
        assert score.recall == pytest.approx((0.5 + 0.5 + 1.0) / 3)

    def test_everything_merged(self):
        gold = gold_of([[0, 1], [2, 3]])
        partition = Partition.from_groups([[0, 1, 2, 3]])
        score = bcubed(partition, gold)
        assert score.recall == 1.0
        assert score.precision == pytest.approx(0.5)

    def test_empty_gold(self):
        score = bcubed(Partition.singletons([]), GoldStandard())
        assert score.precision == 1.0
        assert score.f1 == 1.0

    def test_partial_overlap(self):
        gold = gold_of([[0, 1, 2]])
        partition = Partition.from_groups([[0, 1], [2]])
        score = bcubed(partition, gold)
        assert score.precision == 1.0
        assert score.recall == pytest.approx((2 / 3 + 2 / 3 + 1 / 3) / 3)


class TestClosestClusterF1:
    def test_perfect(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.from_groups([[0, 1], [2]])
        assert closest_cluster_f1(partition, gold) == pytest.approx(1.0)

    def test_one_to_one_matching(self):
        # One predicted cluster cannot be credited to two gold clusters.
        gold = gold_of([[0, 1], [2, 3]])
        partition = Partition.from_groups([[0, 1, 2, 3]])
        score = closest_cluster_f1(partition, gold)
        # First gold cluster matches the big one at F1 = 2*(1/2*1)/(3/2)=2/3,
        # the second finds nothing unused.
        assert score == pytest.approx((2 / 3 * 2 + 0.0 * 2) / 4)

    def test_empty_gold(self):
        assert closest_cluster_f1(Partition.singletons([0]), GoldStandard()) == 1.0

    def test_better_split_scores_higher(self):
        gold = gold_of([[0, 1], [2, 3]])
        good = Partition.from_groups([[0, 1], [2, 3]])
        merged = Partition.from_groups([[0, 1, 2, 3]])
        assert closest_cluster_f1(good, gold) > closest_cluster_f1(merged, gold)


class TestVariationOfInformation:
    def test_identical_clusterings(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.from_groups([[0, 1], [2]])
        assert variation_of_information(partition, gold) == pytest.approx(0.0)

    def test_distance_grows_with_disagreement(self):
        gold = gold_of([[0, 1], [2, 3]])
        same = Partition.from_groups([[0, 1], [2, 3]])
        merged = Partition.from_groups([[0, 1, 2, 3]])
        shattered = Partition.singletons([0, 1, 2, 3])
        assert variation_of_information(same, gold) < variation_of_information(
            merged, gold
        )
        assert variation_of_information(same, gold) < variation_of_information(
            shattered, gold
        )

    def test_symmetric_in_structure(self):
        # VI of merged-vs-pairs equals VI of pairs-vs-merged (by
        # symmetry of the formula); check via two constructions.
        gold_pairs = gold_of([[0, 1], [2, 3]])
        merged = Partition.from_groups([[0, 1, 2, 3]])
        gold_merged = gold_of([[0, 1, 2, 3]])
        pairs = Partition.from_groups([[0, 1], [2, 3]])
        assert variation_of_information(merged, gold_pairs) == pytest.approx(
            variation_of_information(pairs, gold_merged)
        )

    def test_empty(self):
        assert variation_of_information(Partition.singletons([]), GoldStandard()) == 0.0

    def test_non_negative(self):
        gold = gold_of([[0, 1, 2], [3], [4, 5]])
        partition = Partition.from_groups([[0, 3], [1, 2], [4], [5]])
        assert variation_of_information(partition, gold) >= 0.0
