"""Vectorized-kernel parity: numpy batch kernels vs. the scalar path.

The kernels (``repro.distances.kernels``) are pure accelerations: every
query answered through a kernel must be *bit-identical* — same neighbor
ids, same float distances, same NG counts, same partitions — to the
scalar per-pair baseline.  These tests drive random relations through
both backends across the three batch entry points and the per-query
path, check the bit-parallel Myers and banded DP against the reference
Levenshtein, and pin down the accounting split (``kernel_evaluations``
vs. ``evaluations``) and the no-numpy fallback contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.core.pipeline import DuplicateEliminator
from repro.data.loaders import load_dataset
from repro.data.schema import Relation
from repro.distances.cosine import CosineDistance
from repro.distances.edit import EditDistance, levenshtein
from repro.distances.fms import FuzzyMatchDistance
from repro.distances.jaccard import TokenJaccardDistance
from repro.distances.kernels import KernelUnavailable, have_numpy
from repro.distances.kernels.edit import banded_levenshtein, myers_levenshtein
from repro.index.bruteforce import BruteForceIndex
from repro.run.config import ConfigError, RunConfig
from repro.verify.parity import nn_signature

needs_numpy = pytest.mark.skipif(
    not have_numpy(), reason="numpy not installed (the perf extra)"
)

DISTANCES = {
    "cosine": CosineDistance,
    "jaccard": TokenJaccardDistance,
    "edit": EditDistance,
}

#: Tokenizable text so cosine/jaccard see multi-token vectors; repeated
#: letters and spaces produce empty-token and identical-record edges.
texts = st.lists(
    st.text(alphabet="abc d", min_size=0, max_size=16),
    min_size=2,
    max_size=12,
    unique=True,
)


def build_pair(words, distance_name):
    """The same brute-force index on the kernel and scalar backends."""
    relation = Relation.from_strings("r", words)
    scalar = BruteForceIndex()
    scalar.build(relation, DISTANCES[distance_name]())
    kernel = BruteForceIndex()
    kernel.enable_kernel("numpy")
    kernel.build(relation, DISTANCES[distance_name]())
    assert kernel.kernel_backend == "numpy"
    return relation, scalar, kernel


def exact(neighbor_lists):
    """Render neighbor lists for bit-exact comparison (no approx)."""
    return [[(n.rid, n.distance) for n in row] for row in neighbor_lists]


@needs_numpy
class TestBatchParity:
    @pytest.mark.parametrize("distance_name", sorted(DISTANCES))
    @settings(max_examples=25, deadline=None)
    @given(words=texts, k=st.integers(1, 4))
    def test_knn_batch(self, distance_name, words, k):
        relation, scalar, kernel = build_pair(words, distance_name)
        records = list(relation)
        assert exact(kernel.knn_batch(records, k)) == exact(
            scalar.knn_batch(records, k)
        )

    @pytest.mark.parametrize("distance_name", sorted(DISTANCES))
    @settings(max_examples=25, deadline=None)
    @given(words=texts, radius=st.floats(0.0, 1.0))
    def test_within_batch(self, distance_name, words, radius):
        relation, scalar, kernel = build_pair(words, distance_name)
        records = list(relation)
        for inclusive in (False, True):
            assert exact(
                kernel.within_batch(records, radius, inclusive)
            ) == exact(scalar.within_batch(records, radius, inclusive))

    @pytest.mark.parametrize("distance_name", sorted(DISTANCES))
    @pytest.mark.parametrize(
        "shape", [{"k": 3}, {"theta": 0.4}, {"k": 2, "theta": 0.6}]
    )
    @settings(max_examples=20, deadline=None)
    @given(words=texts)
    def test_phase1_batch(self, distance_name, shape, words):
        relation, scalar, kernel = build_pair(words, distance_name)
        records = list(relation)
        got = kernel.phase1_batch(records, p=2.0, **shape)
        want = scalar.phase1_batch(records, p=2.0, **shape)
        assert [(exact([n])[0], ng) for n, ng in got] == [
            (exact([n])[0], ng) for n, ng in want
        ]

    @settings(max_examples=20, deadline=None)
    @given(words=texts)
    def test_phase1_batch_radius_fn(self, words):
        relation, scalar, kernel = build_pair(words, "cosine")
        records = list(relation)
        radius_fn = lambda nn: min(1.0, 3.0 * nn + 0.05)  # noqa: E731
        got = kernel.phase1_batch(records, k=3, radius_fn=radius_fn)
        want = scalar.phase1_batch(records, k=3, radius_fn=radius_fn)
        assert [(exact([n])[0], ng) for n, ng in got] == [
            (exact([n])[0], ng) for n, ng in want
        ]

    @pytest.mark.parametrize("distance_name", sorted(DISTANCES))
    @settings(max_examples=15, deadline=None)
    @given(words=texts, k=st.integers(1, 3))
    def test_per_query_knn_and_within(self, distance_name, words, k):
        """The sequential (non-batch) path is kernelized per query too."""
        relation, scalar, kernel = build_pair(words, distance_name)
        for record in relation:
            assert exact([kernel.knn(record, k)]) == exact(
                [scalar.knn(record, k)]
            )
            assert exact([kernel.within(record, 0.5)]) == exact(
                [scalar.within(record, 0.5)]
            )
            assert kernel.neighborhood_growth(
                record
            ) == scalar.neighborhood_growth(record)


@needs_numpy
class TestWorkerParity:
    @pytest.mark.parametrize("distance_name", sorted(DISTANCES))
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_nn_relation_identical_across_backends(
        self, distance_name, n_workers
    ):
        relation = load_dataset(
            "org", n_entities=40, duplicate_fraction=0.4, seed=3
        ).relation
        params = DEParams.size(4, c=4.0)
        signatures = []
        for mode in ("python", "numpy"):
            index = BruteForceIndex()
            index.enable_kernel(mode)
            index.build(relation, DISTANCES[distance_name]())
            nn = prepare_nn_lists(
                relation, index, params, order="sequential",
                n_workers=n_workers,
            )
            signatures.append(nn_signature(nn))
        assert signatures[0] == signatures[1]

    def test_full_pipeline_partition_identical(self):
        relation = load_dataset(
            "org", n_entities=50, duplicate_fraction=0.4, seed=1
        ).relation
        params = DEParams.size(5, c=4.0)
        results = {}
        for mode in ("python", "numpy"):
            solver = DuplicateEliminator(
                CosineDistance(),
                index=BruteForceIndex(),
                config=RunConfig(kernel=mode),
            )
            results[mode] = solver.run(relation, params)
        assert results["python"].partition == results["numpy"].partition
        assert nn_signature(results["python"].nn_relation) == nn_signature(
            results["numpy"].nn_relation
        )


class TestEditKernels:
    @settings(max_examples=200, deadline=None)
    @given(
        st.text(alphabet="abcde", min_size=1, max_size=64),
        st.text(alphabet="abcdef", max_size=80),
    )
    def test_myers_matches_reference(self, pattern, text):
        assert myers_levenshtein(pattern, text) == levenshtein(pattern, text)

    def test_myers_rejects_long_pattern(self):
        with pytest.raises(ValueError):
            myers_levenshtein("a" * 65, "b")

    def test_myers_empty_text(self):
        assert myers_levenshtein("abc", "") == 3

    @settings(max_examples=150, deadline=None)
    @given(
        st.text(alphabet="abc", max_size=20),
        st.text(alphabet="abcd", max_size=20),
        st.integers(0, 12),
    )
    def test_banded_exact_within_bound(self, a, b, bound):
        raw = levenshtein(a, b)
        got = banded_levenshtein(a, b, bound)
        if raw <= bound:
            assert got == raw
        else:
            assert got > bound

    def test_banded_boundaries(self):
        # Empty strings on both sides.
        assert banded_levenshtein("", "", 0) == 0
        assert banded_levenshtein("", "abc", 3) == 3
        assert banded_levenshtein("abc", "", 2) > 2
        # Distance exactly at the cutoff must come back exact.
        assert banded_levenshtein("kitten", "sitting", 3) == 3
        assert banded_levenshtein("kitten", "sitting", 2) > 2
        # Negative bound: any value > bound.
        assert banded_levenshtein("a", "a", -1) > -1
        # Unicode (astral plane and combining forms are just code points).
        assert banded_levenshtein("café", "cafe", 1) == 1
        assert myers_levenshtein("\U0001f600ab", "ab") == 1


@needs_numpy
class TestAccounting:
    def test_kernel_runs_count_kernel_evaluations_only(self):
        relation = Relation.from_strings(
            "r", [f"record alpha {i} beta {i % 7}" for i in range(40)]
        )
        index = BruteForceIndex()
        index.enable_kernel("numpy")
        index.build(relation, CosineDistance())
        stats = Phase1Stats()
        prepare_nn_lists(
            relation, index, DEParams.size(3, c=4.0),
            order="sequential", stats=stats, n_workers=2,
        )
        assert stats.kernel_evaluations > 0
        # Every pair went through the kernel, none through scalar calls.
        assert stats.evaluations == 0
        assert index.kernel_evaluations == stats.kernel_evaluations

    def test_scalar_runs_report_zero_kernel_evaluations(self):
        relation = Relation.from_strings(
            "r", [f"record alpha {i}" for i in range(12)]
        )
        index = BruteForceIndex()
        index.build(relation, CosineDistance())
        stats = Phase1Stats()
        prepare_nn_lists(
            relation, index, DEParams.size(3, c=4.0),
            order="sequential", stats=stats,
        )
        assert stats.kernel_evaluations == 0
        assert stats.evaluations > 0

    def test_distance_reports_kernel_evaluations(self):
        relation = Relation.from_strings(
            "r", [f"token {i} word {i % 3}" for i in range(20)]
        )
        distance = CosineDistance()
        index = BruteForceIndex()
        index.enable_kernel("numpy")
        index.build(relation, distance)
        index.knn_batch(list(relation), 3)
        assert distance.kernel_evaluations > 0

    def test_run_stats_carry_backend_and_counter(self):
        relation = load_dataset(
            "org", n_entities=30, duplicate_fraction=0.3, seed=0
        ).relation
        solver = DuplicateEliminator(
            CosineDistance(),
            index=BruteForceIndex(),
            config=RunConfig(kernel="numpy"),
        )
        result = solver.run(relation, DEParams.size(4, c=4.0))
        payload = result.stats.to_dict()
        assert payload["kernel_backend"] == "numpy"
        assert payload["phase1"]["kernel_evaluations"] > 0


class TestFallbacks:
    def test_unknown_kernel_mode_rejected(self):
        with pytest.raises(ValueError):
            BruteForceIndex().enable_kernel("cuda")
        with pytest.raises(ConfigError):
            RunConfig(kernel="cuda")

    def test_auto_mode_without_kernel_support_stays_scalar(self):
        """fms has no kernel implementation: auto degrades silently."""
        relation = Relation.from_strings("r", ["alpha beta", "alpha bexa"])
        index = BruteForceIndex()
        index.enable_kernel("auto")
        index.build(relation, FuzzyMatchDistance())
        assert index.kernel_backend == "python"
        assert len(index.knn(relation.get(0), 1)) == 1

    @needs_numpy
    def test_forced_numpy_with_unsupported_distance_stays_scalar(self):
        """kernel='numpy' demands numpy, not that every distance has a
        kernel: an unsupported distance still answers on the scalar
        path instead of failing the run."""
        relation = Relation.from_strings("r", ["alpha beta", "alpha bexa"])
        index = BruteForceIndex()
        index.enable_kernel("numpy")
        index.build(relation, FuzzyMatchDistance())
        assert index.kernel_backend == "python"

    def test_forced_numpy_without_numpy_raises(self, monkeypatch):
        import repro.distances.kernels.compat as compat

        monkeypatch.setattr(compat, "_NUMPY", None)
        monkeypatch.setattr(compat, "_SEARCHED", True)
        relation = Relation.from_strings("r", ["alpha beta", "alpha bexa"])
        index = BruteForceIndex()
        index.enable_kernel("numpy")
        with pytest.raises(KernelUnavailable):
            index.build(relation, CosineDistance())

    def test_auto_without_numpy_falls_back(self, monkeypatch):
        import repro.distances.kernels.compat as compat

        monkeypatch.setattr(compat, "_NUMPY", None)
        monkeypatch.setattr(compat, "_SEARCHED", True)
        relation = Relation.from_strings("r", ["alpha beta", "alpha bexa"])
        index = BruteForceIndex()
        index.enable_kernel("auto")
        index.build(relation, CosineDistance())
        assert index.kernel_backend == "python"
        assert len(index.knn(relation.get(0), 1)) == 1


@needs_numpy
class TestSubsetPairsParity:
    """``pairs_array`` (the LSH candidate-verification route) must be
    bit-identical to slicing the full distance row, on both the sparse
    subset-gather path and the dense full-row fallback."""

    @staticmethod
    def make_kernel(relation, distance_name):
        distance = DISTANCES[distance_name]()
        distance.prepare(relation)
        return distance.make_kernel(relation)

    @settings(max_examples=40, deadline=None)
    @given(words=texts, distance_name=st.sampled_from(["cosine", "jaccard"]))
    def test_subset_matches_full_row(self, words, distance_name):
        import numpy as np

        relation = Relation.from_strings("r", words)
        kernel = self.make_kernel(relation, distance_name)
        rids = relation.ids()
        for query in rids:
            others = [rid for rid in rids if rid != query]
            row = kernel._distance_row(kernel._v.row_of[query])
            for subset in (others, others[:1], others[::2]):
                if not subset:
                    continue
                got = kernel.pairs_array(query, subset)
                want = row[[kernel._v.row_of[rid] for rid in subset]]
                np.testing.assert_array_equal(got, want)

    def test_sparse_path_exercised(self):
        """A subset small enough relative to n must take the gather
        path (the ``len(rids) * 4 >= n`` dense switch not taken) and
        still agree bitwise with the dense row."""
        import numpy as np

        words = [f"tok{i} shared common" for i in range(40)]
        relation = Relation.from_strings("r", words)
        for distance_name in ("cosine", "jaccard"):
            kernel = self.make_kernel(relation, distance_name)
            subset = [1, 7, 23]  # 3 * 4 < 40: sparse route
            got = kernel.pairs_array(0, subset)
            row = kernel._distance_row(kernel._v.row_of[0])
            want = row[[kernel._v.row_of[rid] for rid in subset]]
            np.testing.assert_array_equal(got, want)

    def test_pairs_list_matches_array(self):
        relation = Relation.from_strings(
            "r", ["alpha beta", "alpha bexa", "gamma delta", "alpha"]
        )
        kernel = self.make_kernel(relation, "cosine")
        assert kernel.pairs(0, [1, 2, 3]) == kernel.pairs_array(
            0, [1, 2, 3]
        ).tolist()
