"""Tests for the blocking strategies (related-work baseline)."""

import pytest

from repro.cluster.blocking import (
    blocking_recall,
    candidate_pairs_from_blocks,
    first_token_key,
    key_blocking,
    prefix_key,
    sorted_neighborhood,
)
from repro.data.schema import Record, Relation


@pytest.fixture
def relation():
    return Relation.from_strings(
        "r",
        [
            "golden dragon",          # 0
            "golden dragon express",  # 1
            "jade palace",            # 2
            "jade place",             # 3
            "gulden dragon",          # 4 — typo in the first token!
        ],
    )


class TestKeys:
    def test_first_token_key(self):
        assert first_token_key(Record(0, ("Golden Dragon",))) == "golden"

    def test_first_token_key_empty(self):
        assert first_token_key(Record(0, ("",))) == ""

    def test_prefix_key(self):
        key = prefix_key(4)
        assert key(Record(0, ("Golden Dragon",))) == "gold"


class TestKeyBlocking:
    def test_blocks_by_first_token(self, relation):
        blocks = key_blocking(relation)
        assert sorted(blocks["golden"]) == [0, 1]
        assert sorted(blocks["jade"]) == [2, 3]
        assert blocks["gulden"] == [4]

    def test_candidate_pairs(self, relation):
        pairs = candidate_pairs_from_blocks(key_blocking(relation))
        assert pairs == {(0, 1), (2, 3)}

    def test_typo_in_key_escapes_block(self, relation):
        """The paper's objection: record 4 is a near-duplicate of 0 but
        a first-token typo puts it in a different block."""
        pairs = candidate_pairs_from_blocks(key_blocking(relation))
        assert (0, 4) not in pairs


class TestSortedNeighborhood:
    def test_window_covers_adjacent_keys(self, relation):
        pairs = sorted_neighborhood(relation, window=3)
        # Sort order: golden(0), golden(1), gulden(4), jade(2), jade(3)
        assert (0, 1) in pairs
        assert (1, 4) in pairs  # adjacent in sort order
        assert (2, 3) in pairs

    def test_window_size_bounds_pairs(self, relation):
        window2 = sorted_neighborhood(relation, window=2)
        window4 = sorted_neighborhood(relation, window=4)
        assert window2 <= window4
        assert len(window2) == len(relation) - 1

    def test_invalid_window(self, relation):
        with pytest.raises(ValueError):
            sorted_neighborhood(relation, window=1)


class TestBlockingRecall:
    def test_full_coverage(self):
        assert blocking_recall({(0, 1)}, {(0, 1)}) == 1.0

    def test_partial_coverage(self):
        assert blocking_recall({(0, 1)}, {(0, 1), (2, 3)}) == 0.5

    def test_no_required_pairs(self):
        assert blocking_recall(set(), set()) == 1.0
