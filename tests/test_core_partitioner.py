"""Tests for the partitioning step (Phase 2, second step)."""

from repro.core.cspairs import CSPair
from repro.core.formulation import DEParams
from repro.core.partitioner import extract_group, partition_records
from repro.core.result import Partition


def pair(id1, id2, flags, ng1=2, ng2=2):
    return CSPair(id1=id1, id2=id2, ng1=ng1, ng2=ng2, flags=tuple(flags))


class TestExtractGroup:
    def test_pair_group(self):
        rows = [pair(0, 1, [True])]
        group = extract_group(0, 2, rows, DEParams.size(2, c=4.0), set())
        assert group == [0, 1]

    def test_largest_group_preferred(self):
        rows = [
            pair(0, 1, [True, True, True]),
            pair(0, 2, [False, True, True]),
            pair(0, 3, [False, True, True]),
        ]
        group = extract_group(0, 2, rows, DEParams.size(4, c=4.0), set())
        assert group == [0, 1, 2, 3]

    def test_incomplete_partner_count_falls_back(self):
        # m=3 requires exactly 2 partners; only one supports it.
        rows = [pair(0, 1, [True, True]), pair(0, 2, [False, False])]
        group = extract_group(0, 2, rows, DEParams.size(3, c=4.0), set())
        assert group == [0, 1]

    def test_sn_rejection_falls_back_to_smaller(self):
        # The 3-group has a dense member (ng 9); the pair passes.
        rows = [
            pair(0, 1, [True, True], ng2=2),
            pair(0, 2, [False, True], ng2=9),
        ]
        group = extract_group(0, 2, rows, DEParams.size(3, c=4.0), set())
        assert group == [0, 1]

    def test_sn_rejection_total(self):
        rows = [pair(0, 1, [True], ng1=9, ng2=9)]
        assert extract_group(0, 9, rows, DEParams.size(2, c=4.0), set()) is None

    def test_avg_aggregation(self):
        rows = [pair(0, 1, [True], ng1=2, ng2=9)]
        params_max = DEParams.size(2, agg="max", c=6.0)
        params_avg = DEParams.size(2, agg="avg", c=6.0)
        assert extract_group(0, 2, rows, params_max, set()) is None
        assert extract_group(0, 2, rows, params_avg, set()) == [0, 1]

    def test_assigned_partner_blocks_group(self):
        rows = [pair(0, 1, [True])]
        assert extract_group(0, 2, rows, DEParams.size(2, c=4.0), {1}) is None

    def test_no_rows(self):
        assert extract_group(0, 2, [], DEParams.size(2, c=4.0), set()) is None


class TestPartitionRecords:
    def test_unmatched_become_singletons(self):
        rows = [pair(0, 1, [True])]
        partition = partition_records([0, 1, 2, 3], rows, DEParams.size(2, c=4.0))
        assert partition == Partition.from_groups([[0, 1], [2], [3]])

    def test_disjoint_groups(self):
        rows = [pair(0, 1, [True]), pair(2, 3, [True])]
        partition = partition_records([0, 1, 2, 3], rows, DEParams.size(2, c=4.0))
        assert partition.non_trivial_groups() == [(0, 1), (2, 3)]

    def test_anchor_already_assigned_is_skipped(self):
        # Group {0,1,2} claims 1; the later rows under 1 must be ignored.
        rows = [
            pair(0, 1, [False, True]),
            pair(0, 2, [False, True]),
            pair(1, 2, [True, False]),
        ]
        partition = partition_records([0, 1, 2], rows, DEParams.size(3, c=4.0))
        assert partition.non_trivial_groups() == [(0, 1, 2)]

    def test_group_under_minimum_id_only(self):
        # Rows under anchor 1 see only one partner (2) even though the
        # real compact set is {0,1,2}; the group is found under 0.
        rows = [
            pair(0, 1, [False, True]),
            pair(0, 2, [False, True]),
            pair(1, 2, [False, True]),
        ]
        partition = partition_records([0, 1, 2], rows, DEParams.size(3, c=4.0))
        assert partition.non_trivial_groups() == [(0, 1, 2)]

    def test_empty_pairs(self):
        partition = partition_records([0, 1], [], DEParams.size(2, c=4.0))
        assert partition == Partition.singletons([0, 1])

    def test_minimum_number_of_groups_on_chain(self):
        # cs2(0,1) and cs2(2,3): two pairs, not one chain (contrast with
        # single-linkage, which would merge on transitivity).
        rows = [pair(0, 1, [True]), pair(1, 2, [False]), pair(2, 3, [True])]
        partition = partition_records([0, 1, 2, 3], rows, DEParams.size(2, c=4.0))
        assert partition.non_trivial_groups() == [(0, 1), (2, 3)]
