"""Tests for CSPairs construction (both the direct and engine paths)."""


from repro.core.cspairs import (
    CSPair,
    build_cs_pairs,
    build_cs_pairs_engine,
    cs_pairs_from_table,
    materialize_nn_reln,
    max_pair_size,
    prefix_equal_flags,
)
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.nn_phase import prepare_nn_lists
from repro.index.base import Neighbor
from repro.index.bruteforce import BruteForceIndex
from repro.storage.engine import Engine

from tests.helpers import absdiff_distance, numbers_relation


def make_nn(entries):
    nn = NNRelation()
    for rid, neighbor_ids, ng in entries:
        nn.add(
            NNEntry(
                rid=rid,
                neighbors=tuple(
                    Neighbor(0.01 * (i + 1), nid)
                    for i, nid in enumerate(neighbor_ids)
                ),
                ng=ng,
            )
        )
    return nn


class TestPrefixFlags:
    def test_mutual_pair_cs2(self):
        flags = prefix_equal_flags(0, (1, 9), 1, (0, 8), max_m=2)
        assert flags == (True,)

    def test_non_mutual_cs2(self):
        flags = prefix_equal_flags(0, (2, 9), 1, (0, 8), max_m=2)
        assert flags == (False,)

    def test_group_of_four_pattern(self):
        # The paper's Figure 6: {10, 15, 100, 150} with equal 4-sets.
        flags = prefix_equal_flags(
            10, (15, 100, 150), 15, (10, 100, 150), max_m=4
        )
        assert flags == (True, True, True)

    def test_flags_not_monotone(self):
        # cs2 true but cs3 false: third neighbors differ.
        flags = prefix_equal_flags(0, (1, 5), 1, (0, 7), max_m=3)
        assert flags == (True, False)

    def test_cs_can_become_true_later(self):
        # cs2 false (different nearest) but cs3 true (same 3-set).
        flags = prefix_equal_flags(0, (2, 1), 1, (0, 2), max_m=3)
        assert flags == (False, True)


class TestMaxPairSize:
    def test_size_spec_bounds_by_k(self):
        assert max_pair_size(10, 10, DEParams.size(4)) == 4

    def test_short_lists_bound(self):
        assert max_pair_size(2, 5, DEParams.size(10)) == 3

    def test_diameter_spec_uses_list_lengths(self):
        assert max_pair_size(3, 4, DEParams.diameter(0.3)) == 4


class TestBuildCsPairs:
    def test_only_mutual_pairs(self):
        nn = make_nn(
            [
                (0, [1, 2], 2),
                (1, [0, 2], 2),
                (2, [1, 0], 3),
            ]
        )
        pairs = build_cs_pairs(nn, DEParams.size(2))
        keys = {(p.id1, p.id2) for p in pairs}
        # With K=2 all three mutual-in-2-list pairs qualify except where
        # one side's truncated list omits the other.
        assert (0, 1) in keys

    def test_non_mutual_excluded(self):
        nn = make_nn(
            [
                (0, [1], 2),
                (1, [2], 2),
                (2, [1], 2),
            ]
        )
        pairs = build_cs_pairs(nn, DEParams.size(2))
        keys = {(p.id1, p.id2) for p in pairs}
        assert (0, 1) not in keys
        assert (1, 2) in keys

    def test_sorted_output(self):
        nn = make_nn(
            [
                (0, [1, 2], 2),
                (1, [0, 2], 2),
                (2, [0, 1], 2),
            ]
        )
        pairs = build_cs_pairs(nn, DEParams.size(3))
        keys = [(p.id1, p.id2) for p in pairs]
        assert keys == sorted(keys)

    def test_ng_values_carried(self):
        nn = make_nn([(0, [1], 5), (1, [0], 7)])
        pairs = build_cs_pairs(nn, DEParams.size(2))
        assert pairs[0].ng1 == 5
        assert pairs[0].ng2 == 7

    def test_supports_size(self):
        pair = CSPair(0, 1, 2, 2, (True, False))
        assert pair.supports_size(2)
        assert not pair.supports_size(3)
        assert not pair.supports_size(4)
        assert not pair.supports_size(1)


class TestEnginePath:
    def test_engine_matches_direct(self):
        relation = numbers_relation([0, 1, 10, 11, 12, 50])
        distance = absdiff_distance()
        index = BruteForceIndex()
        index.build(relation, distance)
        params = DEParams.size(4)
        nn = prepare_nn_lists(relation, index, params)

        direct = build_cs_pairs(nn, params)

        engine = Engine()
        materialize_nn_reln(engine, nn)
        table = build_cs_pairs_engine(engine, params)
        via_engine = cs_pairs_from_table(table)

        assert via_engine == direct

    def test_engine_matches_direct_diameter_spec(self):
        relation = numbers_relation([0, 1, 10, 11, 12, 50])
        distance = absdiff_distance()
        index = BruteForceIndex()
        index.build(relation, distance)
        params = DEParams.diameter(0.02)
        nn = prepare_nn_lists(relation, index, params)

        direct = build_cs_pairs(nn, params)
        engine = Engine()
        materialize_nn_reln(engine, nn)
        via_engine = cs_pairs_from_table(build_cs_pairs_engine(engine, params))
        assert via_engine == direct

    def test_nn_reln_table_schema(self):
        engine = Engine()
        nn = make_nn([(0, [1], 2), (1, [0], 2)])
        table = materialize_nn_reln(engine, nn)
        assert table.schema == ("id", "nn_list", "dists", "ng")
        assert table.n_rows == 2
