"""Tests for the Partition type."""

import pytest

from repro.core.result import Partition


class TestConstruction:
    def test_canonical_form(self):
        partition = Partition.from_groups([[3, 1], [2], [5, 4]])
        assert partition.groups == ((1, 3), (2,), (4, 5))

    def test_duplicate_member_rejected(self):
        with pytest.raises(ValueError, match="two groups"):
            Partition(groups=((1, 2), (2, 3)))

    def test_empty_groups_dropped(self):
        partition = Partition.from_groups([[1], [], [2]])
        assert partition.groups == ((1,), (2,))

    def test_singletons(self):
        partition = Partition.singletons([3, 1, 2])
        assert partition.groups == ((1,), (2,), (3,))

    def test_duplicate_ids_within_group_deduped(self):
        partition = Partition.from_groups([[1, 1, 2]])
        assert partition.groups == ((1, 2),)


class TestQueries:
    def test_group_of(self):
        partition = Partition.from_groups([[1, 2], [3]])
        assert partition.group_of(2) == (1, 2)

    def test_group_of_unknown_raises(self):
        partition = Partition.from_groups([[1]])
        with pytest.raises(KeyError):
            partition.group_of(99)

    def test_ids(self):
        partition = Partition.from_groups([[2, 4], [1]])
        assert partition.ids() == [1, 2, 4]

    def test_non_trivial_groups(self):
        partition = Partition.from_groups([[1, 2], [3], [4, 5, 6]])
        assert partition.non_trivial_groups() == [(1, 2), (4, 5, 6)]

    def test_duplicate_pairs(self):
        partition = Partition.from_groups([[1, 2, 3], [4]])
        assert partition.duplicate_pairs() == {(1, 2), (1, 3), (2, 3)}

    def test_same_group(self):
        partition = Partition.from_groups([[1, 2], [3]])
        assert partition.same_group(1, 2)
        assert not partition.same_group(1, 3)
        assert not partition.same_group(1, 99)

    def test_contains_and_len_and_iter(self):
        partition = Partition.from_groups([[1], [2, 3]])
        assert 3 in partition
        assert 9 not in partition
        assert len(partition) == 2
        assert list(partition) == [(1,), (2, 3)]


class TestRelations:
    def test_refines(self):
        fine = Partition.from_groups([[1], [2], [3, 4]])
        coarse = Partition.from_groups([[1, 2], [3, 4]])
        assert fine.refines(coarse)
        assert not coarse.refines(fine)

    def test_refines_self(self):
        partition = Partition.from_groups([[1, 2], [3]])
        assert partition.refines(partition)

    def test_refines_different_universe(self):
        a = Partition.from_groups([[1]])
        b = Partition.from_groups([[2]])
        assert not a.refines(b)

    def test_is_union_of_groups(self):
        base = Partition.from_groups([[1, 2], [3, 4], [5]])
        merged = Partition.from_groups([[1, 2, 3, 4], [5]])
        assert merged.is_union_of_groups((1, 2, 3, 4), base)
        assert not merged.is_union_of_groups((1, 2, 3), base)

    def test_equality_is_structural(self):
        assert Partition.from_groups([[2, 1]]) == Partition.from_groups([[1, 2]])
