"""Tests for tokenization and q-gram utilities."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.distances.tokens import (
    normalize,
    positional_qgrams,
    qgram_counts,
    qgrams,
    shared_count,
    token_counts,
    tokenize,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("The DOORS") == "the doors"

    def test_strips_punctuation(self):
        assert normalize("I'm Holding On") == "i m holding on"

    def test_collapses_whitespace(self):
        assert normalize("a   b\t c") == "a b c"

    def test_empty(self):
        assert normalize("") == ""
        assert normalize("  ,. ") == ""

    def test_keeps_digits(self):
        assert normalize("Route 66") == "route 66"


class TestTokenize:
    def test_basic(self):
        assert tokenize("The Doors, LA Woman") == ["the", "doors", "la", "woman"]

    def test_empty_gives_empty_list(self):
        assert tokenize("...") == []

    def test_counts(self):
        assert token_counts("a b a") == Counter({"a": 2, "b": 1})

    @given(st.text(max_size=30))
    def test_tokens_have_no_spaces(self, text):
        assert all(" " not in token for token in tokenize(text))


class TestQgrams:
    def test_padded_count(self):
        # Padded q-grams of a length-n string: n + q - 1 grams.
        grams = qgrams("abcd", q=3)
        assert len(grams) == 4 + 3 - 1

    def test_unpadded(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_short_string_unpadded(self):
        assert qgrams("ab", q=3, pad=False) == ["ab"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_padding_marks_boundaries(self):
        grams = qgrams("ab", q=2)
        assert grams[0].startswith("\x01")
        assert grams[-1].endswith("\x02")

    def test_normalization_applied(self):
        assert qgrams("AB", q=2, pad=False) == qgrams("ab", q=2, pad=False)

    def test_counts_multiset(self):
        counts = qgram_counts("aaaa", q=2, pad=False)
        assert counts["aa"] == 3

    def test_positional(self):
        positions = positional_qgrams("abc", q=3, pad=False)
        assert positions == [("abc", 0)]

    @given(st.text(alphabet="abc", min_size=1, max_size=20))
    def test_padded_gram_count_formula(self, text):
        cleaned = normalize(text)
        if cleaned:
            assert len(qgrams(text, q=3)) == len(cleaned) + 2


class TestSharedCount:
    def test_multiset_semantics(self):
        assert shared_count(["a", "a", "b"], ["a", "c"]) == 1
        assert shared_count(["a", "a"], ["a", "a", "a"]) == 2

    def test_disjoint(self):
        assert shared_count(["x"], ["y"]) == 0
