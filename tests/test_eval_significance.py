"""Tests for the cluster-bootstrap significance utilities."""

import pytest

from repro.core.result import Partition
from repro.data.duplicates import GoldStandard
from repro.eval.significance import bootstrap_difference, bootstrap_score


def gold_of(groups):
    gold = GoldStandard()
    for entity, group in enumerate(groups):
        for rid in group:
            gold.add(rid, entity)
    return gold


@pytest.fixture
def setting():
    # 30 entities: 20 duplicated pairs, 10 singletons.  Large enough
    # that a bootstrap resample almost surely contains both recovered
    # and missed entities.
    pair_groups = [[i * 2, i * 2 + 1] for i in range(20)]
    singleton_groups = [[40 + i] for i in range(10)]
    groups = pair_groups + singleton_groups
    gold = gold_of(groups)
    perfect = Partition.from_groups(groups)
    # `half` recovers the first 10 pairs only.
    half = Partition.from_groups(
        pair_groups[:10]
        + [[rid] for pair in pair_groups[10:] for rid in pair]
        + singleton_groups
    )
    return gold, perfect, half


class TestBootstrapScore:
    def test_perfect_partition_ci_is_degenerate(self, setting):
        gold, perfect, _ = setting
        ci = bootstrap_score(perfect, gold, metric="f1", n_resamples=100)
        assert ci.point == 1.0
        assert ci.low == 1.0
        assert ci.high == 1.0

    def test_point_estimate_matches_pairwise_metric(self, setting):
        from repro.eval.metrics import pairwise_scores

        gold, _, half = setting
        ci = bootstrap_score(half, gold, metric="recall", n_resamples=50)
        assert ci.point == pytest.approx(pairwise_scores(half, gold).recall)

    def test_interval_brackets_point(self, setting):
        gold, _, half = setting
        ci = bootstrap_score(half, gold, metric="f1", n_resamples=200)
        assert ci.low <= ci.point <= ci.high

    def test_deterministic_under_seed(self, setting):
        gold, _, half = setting
        a = bootstrap_score(half, gold, n_resamples=100, seed=5)
        b = bootstrap_score(half, gold, n_resamples=100, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_unknown_metric_rejected(self, setting):
        gold, perfect, _ = setting
        with pytest.raises(ValueError):
            bootstrap_score(perfect, gold, metric="accuracy", n_resamples=10)

    def test_str_rendering(self, setting):
        gold, perfect, _ = setting
        text = str(bootstrap_score(perfect, gold, n_resamples=10))
        assert "@ 95%" in text


class TestBootstrapDifference:
    def test_clear_difference_is_significant(self, setting):
        gold, perfect, half = setting
        ci = bootstrap_difference(
            perfect, half, gold, metric="recall", n_resamples=300
        )
        assert ci.point > 0.0
        assert ci.excludes_zero()

    def test_self_difference_is_zero(self, setting):
        gold, perfect, _ = setting
        ci = bootstrap_difference(perfect, perfect, gold, n_resamples=100)
        assert ci.point == 0.0
        assert not ci.excludes_zero()

    def test_sign_flips_with_order(self, setting):
        gold, perfect, half = setting
        forward = bootstrap_difference(
            perfect, half, gold, metric="recall", n_resamples=100
        )
        backward = bootstrap_difference(
            half, perfect, gold, metric="recall", n_resamples=100
        )
        assert forward.point == pytest.approx(-backward.point)

    def test_false_positive_precision_penalty(self, setting):
        gold, perfect, _ = setting
        # A partition that wrongly merges two singleton entities.
        sloppy = Partition.from_groups(
            [[i * 2, i * 2 + 1] for i in range(20)]
            + [[40, 41]]
            + [[42 + i] for i in range(8)]
        )
        ci = bootstrap_difference(
            perfect, sloppy, gold, metric="precision", n_resamples=200
        )
        assert ci.point > 0.0
