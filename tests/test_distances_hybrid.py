"""Tests for the hybrid similarities (Monge-Elkan, SoftTFIDF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Record, Relation
from repro.distances.hybrid import MongeElkanDistance, SoftTfIdfDistance

words = st.text(alphabet="abcdef ", max_size=20)


def corpus():
    return Relation.from_strings(
        "orgs",
        [
            "cascade systems corporation",
            "cascade systms corporation",
            "summit logistics",
            "boeing corporation",
            "granite manufacturing",
        ],
    )


class TestMongeElkan:
    @pytest.fixture
    def me(self):
        d = MongeElkanDistance()
        d.prepare(corpus())
        return d

    def test_identity(self, me):
        relation = corpus()
        assert me.distance(relation.get(0), relation.get(0)) == pytest.approx(0.0)

    def test_typo_tolerant(self, me):
        relation = corpus()
        typo = me.distance(relation.get(0), relation.get(1))
        different = me.distance(relation.get(0), relation.get(2))
        assert typo < different

    def test_symmetric(self, me):
        relation = corpus()
        a, b = relation.get(0), relation.get(3)
        assert me.distance(a, b) == pytest.approx(me.distance(b, a))

    def test_empty_records(self, me):
        assert me.distance(Record(50, ("",)), Record(51, ("",))) == 0.0
        assert me.distance(Record(50, ("",)), Record(51, ("abc",))) > 0.5

    @settings(max_examples=40)
    @given(words, words)
    def test_unit_interval(self, a, b):
        d = MongeElkanDistance()
        assert 0.0 <= d.distance(Record(0, (a,)), Record(1, (b,))) <= 1.0

    def test_out_of_corpus(self, me):
        a = Record(60, ("zzzz qqqq",))
        b = Record(61, ("zzzz qqqp",))
        assert me.distance(a, b) < 0.2


class TestSoftTfIdf:
    @pytest.fixture
    def soft(self):
        d = SoftTfIdfDistance()
        d.prepare(corpus())
        return d

    def test_requires_prepare(self):
        d = SoftTfIdfDistance()
        with pytest.raises(RuntimeError):
            d.distance(Record(0, ("a",)), Record(1, ("b",)))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SoftTfIdfDistance(threshold=0.0)

    def test_identity(self, soft):
        relation = corpus()
        assert soft.distance(relation.get(0), relation.get(0)) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_fuzzy_token_matching_beats_plain_cosine(self, soft):
        from repro.distances.cosine import CosineDistance

        relation = corpus()
        plain = CosineDistance()
        plain.prepare(relation)
        a, b = relation.get(0), relation.get(1)  # "systems" vs "systms"
        assert soft.distance(a, b) < plain.distance(a, b)

    def test_symmetric(self, soft):
        relation = corpus()
        a, b = relation.get(0), relation.get(1)
        assert soft.distance(a, b) == pytest.approx(soft.distance(b, a))

    def test_disjoint_records(self, soft):
        a = Record(70, ("xxxx",))
        b = Record(71, ("pppp",))
        assert soft.distance(a, b) == 1.0

    def test_empty_records(self, soft):
        assert soft.distance(Record(70, ("",)), Record(71, ("",))) == 0.0
        assert soft.distance(Record(70, ("",)), Record(71, ("abc",))) == 1.0

    def test_unit_interval_on_corpus(self, soft):
        relation = corpus()
        for a in relation:
            for b in relation:
                assert 0.0 <= soft.distance(a, b) <= 1.0

    def test_high_threshold_reduces_to_exact_matching(self):
        relation = corpus()
        strict = SoftTfIdfDistance(threshold=1.0)
        strict.prepare(relation)
        loose = SoftTfIdfDistance(threshold=0.85)
        loose.prepare(relation)
        a, b = relation.get(0), relation.get(1)
        # The typo token only matches under the loose threshold.
        assert loose.distance(a, b) < strict.distance(a, b)
