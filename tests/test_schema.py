"""Tests for the relational data model (repro.data.schema)."""

import pytest

from repro.data.schema import Record, Relation


class TestRecord:
    def test_text_joins_fields(self):
        record = Record(0, ("The Doors", "LA Woman"))
        assert record.text() == "The Doors LA Woman"

    def test_text_custom_separator(self):
        record = Record(0, ("a", "b"))
        assert record.text("|") == "a|b"

    def test_getitem_and_len(self):
        record = Record(3, ("x", "y", "z"))
        assert record[1] == "y"
        assert len(record) == 3

    def test_records_are_hashable_and_equal_by_value(self):
        assert Record(1, ("a",)) == Record(1, ("a",))
        assert hash(Record(1, ("a",))) == hash(Record(1, ("a",)))

    def test_records_are_immutable(self):
        record = Record(0, ("a",))
        with pytest.raises(AttributeError):
            record.rid = 5


class TestRelation:
    def test_from_rows_assigns_sequential_ids(self):
        relation = Relation.from_rows("r", ("v",), [["a"], ["b"], ["c"]])
        assert relation.ids() == [0, 1, 2]

    def test_from_strings(self):
        relation = Relation.from_strings("r", ["x", "y"])
        assert relation.schema == ("value",)
        assert relation.get(1).fields == ("y",)

    def test_get_by_id(self):
        relation = Relation.from_strings("r", ["x", "y"])
        assert relation.get(0).text() == "x"

    def test_contains(self):
        relation = Relation.from_strings("r", ["x"])
        assert 0 in relation
        assert 5 not in relation

    def test_duplicate_id_rejected(self):
        relation = Relation.from_strings("r", ["x"])
        with pytest.raises(ValueError, match="duplicate record id"):
            relation.add(Record(0, ("y",)))

    def test_arity_mismatch_rejected_on_add(self):
        relation = Relation("r", ("a", "b"))
        with pytest.raises(ValueError, match="fields"):
            relation.add(Record(0, ("only-one",)))

    def test_arity_mismatch_rejected_on_init(self):
        with pytest.raises(ValueError):
            Relation("r", ("a", "b"), [Record(0, ("x",))])

    def test_texts(self):
        relation = Relation.from_rows("r", ("a", "b"), [["x", "y"]])
        assert relation.texts() == ["x y"]

    def test_project(self):
        relation = Relation.from_rows("r", ("a", "b"), [["x", "y"], ["u", "v"]])
        projected = relation.project(["b"])
        assert projected.schema == ("b",)
        assert projected.get(0).fields == ("y",)
        assert projected.get(1).fields == ("v",)

    def test_project_unknown_attribute_raises(self):
        relation = Relation.from_rows("r", ("a",), [["x"]])
        with pytest.raises(ValueError):
            relation.project(["nope"])

    def test_subset(self):
        relation = Relation.from_strings("r", ["a", "b", "c"])
        sub = relation.subset([0, 2])
        assert sub.ids() == [0, 2]

    def test_rename(self):
        relation = Relation.from_strings("r", ["a"])
        assert relation.rename("other").name == "other"

    def test_iteration_order_is_insertion_order(self):
        relation = Relation("r", ("v",))
        relation.add(Record(5, ("x",)))
        relation.add(Record(1, ("y",)))
        assert [r.rid for r in relation] == [5, 1]

    def test_non_dense_ids_supported(self):
        relation = Relation("r", ("v",), [Record(10, ("a",)), Record(99, ("b",))])
        assert relation.get(99).fields == ("b",)
        assert len(relation) == 2

    def test_to_mapping(self):
        relation = Relation.from_strings("r", ["a"])
        mapping = relation.to_mapping()
        assert mapping[0].fields == ("a",)
