"""Tests for evaluation metrics, PR sweeps, and reporting."""

import pytest

from repro.core.result import Partition
from repro.data.duplicates import GoldStandard
from repro.data.loaders import load_dataset
from repro.distances.edit import EditDistance
from repro.eval.experiment import (
    QualityExperiment,
    QualityResult,
    default_ks,
    default_thetas,
)
from repro.eval.metrics import PRScore, group_scores, pairwise_scores
from repro.eval.pr_curve import (
    PRPoint,
    PRSweep,
    QualitySweeper,
    truncate_to_k,
    truncate_to_radius,
)
from repro.eval.report import format_kv, format_pr_sweeps, format_table


def gold_of(groups):
    gold = GoldStandard()
    entity = 0
    for group in groups:
        for rid in group:
            gold.add(rid, entity)
        entity += 1
    return gold


class TestPRScore:
    def test_perfect(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.from_groups([[0, 1], [2]])
        score = pairwise_scores(partition, gold)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_false_positive(self):
        gold = gold_of([[0], [1], [2]])
        partition = Partition.from_groups([[0, 1], [2]])
        score = pairwise_scores(partition, gold)
        assert score.precision == 0.0
        assert score.recall == 1.0  # no true pairs exist

    def test_false_negative(self):
        gold = gold_of([[0, 1], [2]])
        partition = Partition.singletons([0, 1, 2])
        score = pairwise_scores(partition, gold)
        assert score.precision == 1.0  # nothing returned
        assert score.recall == 0.0

    def test_partial_group(self):
        gold = gold_of([[0, 1, 2]])
        partition = Partition.from_groups([[0, 1], [2]])
        score = pairwise_scores(partition, gold)
        assert score.recall == pytest.approx(1 / 3)
        assert score.precision == 1.0

    def test_f1_zero_when_nothing_right(self):
        score = PRScore(true_positives=0, returned=5, actual=5)
        assert score.f1 == 0.0

    def test_str_rendering(self):
        score = PRScore(1, 2, 4)
        assert "P=0.500" in str(score)
        assert "R=0.250" in str(score)

    def test_group_scores(self):
        gold = gold_of([[0, 1], [2, 3], [4]])
        partition = Partition.from_groups([[0, 1], [2], [3], [4]])
        gs = group_scores(partition, gold)
        assert gs.exact_matches == 1
        assert gs.predicted_groups == 1
        assert gs.actual_groups == 2
        assert gs.group_recall == 0.5


class TestTruncation:
    def make_nn(self):
        from repro.core.neighborhood import NNEntry, NNRelation
        from repro.index.base import Neighbor

        nn = NNRelation()
        nn.add(
            NNEntry(
                rid=0,
                neighbors=(Neighbor(0.1, 1), Neighbor(0.2, 2), Neighbor(0.3, 3)),
                ng=2,
            )
        )
        return nn

    def test_truncate_to_k(self):
        nn = truncate_to_k(self.make_nn(), 2)
        assert nn.get(0).neighbor_ids == (1, 2)
        assert nn.get(0).ng == 2  # NG untouched

    def test_truncate_to_radius(self):
        nn = truncate_to_radius(self.make_nn(), 0.25)
        assert nn.get(0).neighbor_ids == (1, 2)

    def test_truncate_to_radius_strict(self):
        nn = truncate_to_radius(self.make_nn(), 0.2)
        assert nn.get(0).neighbor_ids == (1,)


class TestSweeps:
    @pytest.fixture(scope="class")
    def sweeper(self):
        dataset = load_dataset("birds", n_entities=40, duplicate_fraction=0.4, seed=2)
        return dataset, QualitySweeper(
            dataset, EditDistance(), k_max=5, theta_max=0.5
        )

    def test_thr_sweep_monotone_recall(self, sweeper):
        _, sw = sweeper
        sweep = sw.sweep_thr([0.1, 0.2, 0.3, 0.4])
        recalls = [p.recall for p in sweep.points]
        assert recalls == sorted(recalls)

    def test_de_size_sweep(self, sweeper):
        _, sw = sweeper
        sweep = sw.sweep_de_size([2, 3, 4], c=4.0)
        assert len(sweep.points) == 3
        assert all(0.0 <= p.precision <= 1.0 for p in sweep.points)

    def test_de_diameter_sweep(self, sweeper):
        _, sw = sweeper
        sweep = sw.sweep_de_diameter([0.1, 0.3], c=4.0)
        assert [p.parameter for p in sweep.points] == [0.1, 0.3]

    def test_sweep_bounds_enforced(self, sweeper):
        _, sw = sweeper
        with pytest.raises(ValueError):
            sw.sweep_thr([0.9])
        with pytest.raises(ValueError):
            sw.sweep_de_size([10], c=4.0)
        with pytest.raises(ValueError):
            sw.sweep_de_diameter([0.9], c=4.0)

    def test_best_f1_and_precision_at_recall(self):
        sweep = PRSweep(
            method="m",
            points=[
                PRPoint("m", 1, precision=0.9, recall=0.2, f1=0.33),
                PRPoint("m", 2, precision=0.7, recall=0.5, f1=0.58),
            ],
        )
        assert sweep.best_f1().parameter == 2
        assert sweep.precision_at_recall(0.4) == 0.7
        assert sweep.precision_at_recall(0.9) == 0.0


class TestQualityExperiment:
    def test_runs_all_sweeps(self):
        dataset = load_dataset("birds", n_entities=30, duplicate_fraction=0.4, seed=2)
        result = QualityExperiment(
            dataset, EditDistance(), k_max=4, theta_max=0.4, c_values=(4.0,)
        ).run()
        assert "thr" in result.sweeps
        assert len(result.de_sweeps()) == 2  # DE_S and DE_D at one c

    def test_quality_result_helpers(self):
        result = QualityResult(dataset="d", distance="edit")
        result.add(
            PRSweep("thr", [PRPoint("thr", 0.1, precision=0.5, recall=0.5, f1=0.5)])
        )
        result.add(
            PRSweep("DE_S", [PRPoint("DE_S", 2, precision=0.8, recall=0.5, f1=0.6)])
        )
        assert result.best_de_precision_at(0.4) == 0.8
        assert result.de_wins_at(0.4)

    def test_default_grids(self):
        assert default_ks(5) == [2, 3, 4, 5]
        thetas = default_thetas(0.6, n=6)
        assert len(thetas) == 6
        assert thetas[-1] == pytest.approx(0.6)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2), (30, 40)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_pr_sweeps(self):
        sweep = PRSweep(
            "thr", [PRPoint("thr", 0.1, precision=0.5, recall=0.25, f1=0.33)]
        )
        text = format_pr_sweeps([sweep])
        assert "thr" in text
        assert "0.250" in text

    def test_format_pr_sweeps_mapping(self):
        sweep = PRSweep("m", [PRPoint("m", 1, precision=1, recall=1, f1=1)])
        assert "m" in format_pr_sweeps({"m": sweep})

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "b": "two"}, title="K")
        assert text.splitlines()[0] == "K"
        assert "alpha : 1" in text
