"""Tests for edit distance and its variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Record
from repro.distances.edit import EditDistance, damerau_levenshtein, levenshtein

short_text = st.text(alphabet="abcde ", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("microsoft", "microsft", 1),
            ("twain", "twian", 2),  # plain Levenshtein: transposition = 2
            ("abc", "abc", 0),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_max_distance_early_exit(self):
        assert levenshtein("aaaaaaaa", "bbbbbbbb", max_distance=3) == 4

    def test_max_distance_length_gap(self):
        assert levenshtein("a", "abcdefgh", max_distance=2) == 3

    def test_max_distance_does_not_change_small_results(self):
        assert levenshtein("kitten", "sitting", max_distance=10) == 3

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0) or (a == b and d == 0)

    @settings(max_examples=60)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_agrees_with_reference_dp(self, a, b):
        # Straightforward full-matrix reference implementation.
        la, lb = len(a), len(b)
        dp = [[0] * (lb + 1) for _ in range(la + 1)]
        for i in range(la + 1):
            dp[i][0] = i
        for j in range(lb + 1):
            dp[0][j] = j
        for i in range(1, la + 1):
            for j in range(1, lb + 1):
                dp[i][j] = min(
                    dp[i - 1][j] + 1,
                    dp[i][j - 1] + 1,
                    dp[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
                )
        assert levenshtein(a, b) == dp[la][lb]


class TestDamerau:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein("twain", "twian") == 1

    def test_equals_levenshtein_without_transpositions(self):
        assert damerau_levenshtein("kitten", "sitting") == 3

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    def test_empty_strings(self):
        assert damerau_levenshtein("", "abc") == 3
        assert damerau_levenshtein("abc", "") == 3


class TestEditDistanceFunction:
    def test_normalized_range(self):
        d = EditDistance()
        a, b = Record(0, ("kitten",)), Record(1, ("sitting",))
        assert d.distance(a, b) == pytest.approx(3 / 7)

    def test_identical_records_distance_zero(self):
        d = EditDistance()
        assert d.distance(Record(0, ("x y",)), Record(1, ("x y",))) == 0.0

    def test_text_normalization_on_by_default(self):
        d = EditDistance()
        # Case differences vanish under normalization; punctuation
        # becomes whitespace ("I'm" -> "i m").
        assert d.distance(Record(0, ("The DOORS",)), Record(1, ("the doors",))) == 0.0
        assert d.distance(Record(0, ("I'm Holding",)), Record(1, ("I m Holding",))) == 0.0

    def test_normalization_can_be_disabled(self):
        d = EditDistance(normalize_text=False)
        assert d.distance(Record(0, ("AB",)), Record(1, ("ab",))) == 1.0

    def test_damerau_variant_cheaper_on_transposition(self):
        plain = EditDistance()
        damerau = EditDistance(damerau=True)
        a, b = Record(0, ("twain",)), Record(1, ("twian",))
        assert damerau.distance(a, b) < plain.distance(a, b)

    def test_empty_records(self):
        d = EditDistance()
        assert d.distance(Record(0, ("",)), Record(1, ("",))) == 0.0
        assert d.distance(Record(0, ("",)), Record(1, ("abc",))) == 1.0

    def test_multi_field_records_joined(self):
        d = EditDistance()
        a = Record(0, ("The Doors", "LA Woman"))
        b = Record(1, ("Doors", "LA Woman"))
        assert 0.0 < d.distance(a, b) < 0.5

    @given(short_text, short_text)
    def test_always_in_unit_interval(self, a, b):
        d = EditDistance()
        value = d.distance(Record(0, (a,)), Record(1, (b,)))
        assert 0.0 <= value <= 1.0

    def test_similarity_is_complement(self):
        d = EditDistance()
        a, b = Record(0, ("abc",)), Record(1, ("abd",))
        assert d.similarity(a, b) == pytest.approx(1.0 - d.distance(a, b))

    def test_callable_protocol(self):
        d = EditDistance()
        a, b = Record(0, ("abc",)), Record(1, ("abd",))
        assert d(a, b) == d.distance(a, b)
