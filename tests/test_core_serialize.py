"""Tests for DE result serialization."""

import json

import pytest

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.core.serialize import (
    load_result,
    nn_relation_from_dict,
    nn_relation_to_dict,
    params_from_dict,
    params_to_dict,
    partition_from_dict,
    partition_to_dict,
    save_result,
)
from repro.core.result import Partition

from tests.helpers import absdiff_distance, numbers_relation


@pytest.fixture
def result():
    relation = numbers_relation([0, 1, 100, 101, 500])
    return DuplicateEliminator(absdiff_distance()).run(
        relation, DEParams.size(3, c=4.0)
    )


class TestRoundTrips:
    def test_partition(self):
        partition = Partition.from_groups([[0, 1], [2]])
        assert partition_from_dict(partition_to_dict(partition)) == partition

    def test_params_size(self):
        params = DEParams.size(4, agg="avg", c=6.0, p=2.5)
        assert params_from_dict(params_to_dict(params)) == params

    def test_params_diameter(self):
        params = DEParams.diameter(0.25, agg="max2", c=3.0)
        assert params_from_dict(params_to_dict(params)) == params

    def test_params_unknown_cut_rejected(self):
        with pytest.raises(ValueError, match="unknown cut"):
            params_from_dict(
                {"cut": {"type": "volume"}, "agg": "max", "c": 4.0, "p": 2.0}
            )

    def test_nn_relation(self, result):
        payload = nn_relation_to_dict(result.nn_relation)
        restored = nn_relation_from_dict(payload)
        assert restored.ids() == result.nn_relation.ids()
        for entry in result.nn_relation:
            other = restored.get(entry.rid)
            assert other.neighbors == entry.neighbors
            assert other.ng == entry.ng


class TestFileRoundTrip:
    def test_save_and_load(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        partition, nn_relation, params = load_result(path)
        assert partition == result.partition
        assert params == result.params
        assert nn_relation.ng_values() == result.nn_relation.ng_values()

    def test_file_is_valid_json_with_stats(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-de-result"
        assert payload["stats"]["phase1_lookups"] == 5

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a saved DE result"):
            load_result(path)

    def test_phase2_rerun_from_loaded_nn(self, result, tmp_path):
        """A loaded NN relation supports Phase-2-only re-solving."""
        path = tmp_path / "run.json"
        save_result(result, path)
        _, nn_relation, params = load_result(path)
        relation = numbers_relation([0, 1, 100, 101, 500])
        solver = DuplicateEliminator(absdiff_distance())
        again = solver.run_from_nn(relation, nn_relation, params)
        assert again.partition == result.partition
