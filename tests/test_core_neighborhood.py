"""Tests for the NN relation (Phase-1 output model)."""

import pytest

from repro.core.neighborhood import NNEntry, NNRelation
from repro.index.base import Neighbor


def entry(rid, neighbor_ids, ng=2, base=0.1):
    return NNEntry(
        rid=rid,
        neighbors=tuple(
            Neighbor(base * (i + 1), nid) for i, nid in enumerate(neighbor_ids)
        ),
        ng=ng,
    )


class TestNNEntry:
    def test_neighbor_ids(self):
        assert entry(0, [5, 3]).neighbor_ids == (5, 3)

    def test_nn_distance(self):
        assert entry(0, [5, 3]).nn_distance == pytest.approx(0.1)

    def test_nn_distance_empty(self):
        assert entry(0, []).nn_distance == float("inf")

    def test_prefix_set_includes_self(self):
        e = entry(0, [5, 3, 8])
        assert e.prefix_set(1) == {0}
        assert e.prefix_set(2) == {0, 5}
        assert e.prefix_set(4) == {0, 5, 3, 8}

    def test_prefix_set_too_large_raises(self):
        with pytest.raises(ValueError, match="cannot form"):
            entry(0, [5]).prefix_set(3)

    def test_prefix_set_size_zero_raises(self):
        with pytest.raises(ValueError):
            entry(0, [5]).prefix_set(0)

    def test_max_group_size(self):
        assert entry(0, [1, 2, 3]).max_group_size == 4

    def test_contains_within_list(self):
        e = entry(0, [5, 3])
        assert e.contains_within_list(3)
        assert not e.contains_within_list(99)


class TestNNRelation:
    def test_add_and_get(self):
        nn = NNRelation()
        nn.add(entry(0, [1]))
        assert nn.get(0).rid == 0

    def test_duplicate_add_rejected(self):
        nn = NNRelation()
        nn.add(entry(0, [1]))
        with pytest.raises(ValueError):
            nn.add(entry(0, [2]))

    def test_iteration_sorted_by_id(self):
        nn = NNRelation()
        nn.add(entry(5, [1]))
        nn.add(entry(2, [1]))
        assert [e.rid for e in nn] == [2, 5]

    def test_ids(self):
        nn = NNRelation()
        nn.add(entry(3, []))
        nn.add(entry(1, []))
        assert nn.ids() == [1, 3]

    def test_ng_values(self):
        nn = NNRelation()
        nn.add(entry(0, [], ng=4))
        nn.add(entry(1, [], ng=2))
        assert nn.ng_values() == [4, 2]

    def test_nn_lists(self):
        nn = NNRelation()
        nn.add(entry(0, [1, 2]))
        lists = nn.nn_lists()
        assert [n.rid for n in lists[0]] == [1, 2]

    def test_as_rows(self):
        nn = NNRelation()
        nn.add(entry(0, [2, 1], ng=3))
        assert nn.as_rows() == [(0, (2, 1), (pytest.approx(0.1), pytest.approx(0.2)), 3)]

    def test_rows_round_trip(self):
        from repro.core.neighborhood import entry_from_row

        original = entry(0, [2, 1], ng=3)
        assert entry_from_row(NNRelation({0: original}).as_rows()[0]) == original

    def test_contains_and_len(self):
        nn = NNRelation()
        nn.add(entry(7, []))
        assert 7 in nn
        assert 8 not in nn
        assert len(nn) == 1
