"""Tests for the explanation utility."""

import pytest

from repro.core.explain import explain_group, explain_pair
from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.data.embedded import table1_relation
from repro.distances.edit import EditDistance

from tests.helpers import absdiff_distance, numbers_relation


@pytest.fixture(scope="module")
def table1_result():
    relation = table1_relation()
    solver = DuplicateEliminator(EditDistance())
    return solver.run(relation, DEParams.size(5, c=4.0))


class TestExplainPair:
    def test_grouped_pair(self, table1_result):
        explanation = explain_pair(table1_result, 0, 1)
        assert explanation.grouped
        assert explanation.mutual
        assert 2 in explanation.equal_set_sizes
        assert explanation.sn_passes
        assert "grouped" in explanation.verdict

    def test_sn_blocked_pair(self, table1_result):
        # Tuples 10 and 11 ("Are You Ready") are mutual NNs but their
        # neighborhood growth is 4: SN blocks them at c=4.
        explanation = explain_pair(table1_result, 10, 11)
        assert not explanation.grouped
        assert explanation.ng_a == 4
        assert explanation.ng_b == 4
        if explanation.equal_set_sizes:
            assert explanation.sn_passes is False
            assert "SN fails" in explanation.verdict

    def test_unrelated_pair(self, table1_result):
        explanation = explain_pair(table1_result, 0, 13)
        assert not explanation.grouped
        assert "NN lists" in explanation.verdict or "CS fails" in explanation.verdict

    def test_order_insensitive(self, table1_result):
        a = explain_pair(table1_result, 1, 0)
        assert a.rid_a == 0
        assert a.rid_b == 1

    def test_same_record_rejected(self, table1_result):
        with pytest.raises(ValueError):
            explain_pair(table1_result, 3, 3)

    def test_render_contains_key_facts(self, table1_result):
        text = explain_pair(table1_result, 0, 1).render()
        assert "records 0 and 1" in text
        assert "grouped together: YES" in text
        assert "verdict" in text

    def test_non_mutual_verdict(self):
        # 0-1 close; 2 closer to 3. Pair (1, 2): 2's nearest is 3.
        relation = numbers_relation([0, 1, 10, 11, 500])
        result = DuplicateEliminator(absdiff_distance()).run(
            relation, DEParams.size(3, c=4.0)
        )
        explanation = explain_pair(result, 1, 2)
        assert not explanation.grouped
        assert not explanation.mutual or not explanation.equal_set_sizes


class TestExplainGroup:
    def test_group_rendering(self, table1_result):
        text = explain_group(table1_result, 0)
        assert "group of record 0" in text
        assert "[0]" in text and "[1]" in text
        assert "ng=" in text

    def test_singleton_rendering(self, table1_result):
        text = explain_group(table1_result, 10)
        assert "singleton" in text
