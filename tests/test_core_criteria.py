"""Tests for the CS and SN criteria (specification-level definitions)."""

import pytest

from repro.core.criteria import (
    AGGREGATIONS,
    aggregate,
    agg_avg,
    agg_max,
    agg_max2,
    group_diameter,
    is_compact_set,
    is_sn_group,
    neighborhood_growth_brute,
    nn_distance_brute,
)

from tests.helpers import absdiff_distance, numbers_relation


class TestAggregations:
    def test_max(self):
        assert agg_max([1.0, 3.0, 2.0]) == 3.0

    def test_avg(self):
        assert agg_avg([1.0, 3.0]) == 2.0

    def test_max2(self):
        assert agg_max2([5.0, 1.0, 3.0]) == 3.0

    def test_max2_single_value(self):
        assert agg_max2([4.0]) == 4.0

    def test_registry(self):
        assert set(AGGREGATIONS) == {"max", "avg", "max2"}

    def test_aggregate_by_name(self):
        assert aggregate("max", [1.0, 2.0]) == 2.0

    def test_aggregate_unknown_name(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            aggregate("median", [1.0])

    def test_aggregate_empty(self):
        with pytest.raises(ValueError, match="empty"):
            aggregate("max", [])


class TestNnDistance:
    def test_basic(self):
        relation = numbers_relation([0, 3, 10])
        assert nn_distance_brute(relation, absdiff_distance(), 0) == pytest.approx(
            0.003
        )

    def test_singleton(self):
        relation = numbers_relation([42])
        assert nn_distance_brute(relation, absdiff_distance(), 0) == float("inf")


class TestNeighborhoodGrowth:
    def test_pair_in_isolation(self):
        relation = numbers_relation([0, 1, 100, 200])
        # 0's nn is 1 (d=1); radius 2 holds only 1 -> ng = 2.
        assert neighborhood_growth_brute(relation, absdiff_distance(), 0) == 2

    def test_dense_region(self):
        relation = numbers_relation([0, 1, 2, 3, 100])
        # 1's nn at d=1; radius 2 strictly holds 0 and 2 -> ng = 3.
        assert neighborhood_growth_brute(relation, absdiff_distance(), 1) == 3

    def test_table1_series_has_higher_growth(self, table1, edit):
        # The "Ears/Eyes" base tuple (rid 6) sits amid its series.
        ng_series = neighborhood_growth_brute(table1, edit, 6)
        ng_duplicate = neighborhood_growth_brute(table1, edit, 0)
        assert ng_series > ng_duplicate

    def test_table1_are_you_ready_family(self, table1, edit):
        # Tuples 10-13 share the track title: growth 4 each (paper text).
        for rid in (10, 11, 12, 13):
            assert neighborhood_growth_brute(table1, edit, rid) == 4


class TestCompactSet:
    def test_singleton_trivially_compact(self):
        relation = numbers_relation([0, 10])
        assert is_compact_set(relation, absdiff_distance(), [0])

    def test_mutual_nn_pair_compact(self):
        relation = numbers_relation([0, 1, 10, 20])
        assert is_compact_set(relation, absdiff_distance(), [0, 1])

    def test_non_mutual_pair_not_compact(self):
        # 1 is closer to 2 than to 0? values: 0, 3, 4.  {0,3}: 3's nearest
        # is 4, so {0,3} is not compact.
        relation = numbers_relation([0, 3, 4])
        assert not is_compact_set(relation, absdiff_distance(), [0, 1])

    def test_larger_compact_group(self):
        relation = numbers_relation([0, 1, 2, 50, 100])
        assert is_compact_set(relation, absdiff_distance(), [0, 1, 2])

    def test_whole_relation_compact(self):
        # Degenerate case the paper notes: all of R is compact.
        relation = numbers_relation([0, 5, 9])
        assert is_compact_set(relation, absdiff_distance(), [0, 1, 2])

    def test_group_split_by_outsider(self):
        # 0 and 2 with 1 in between: {0, 2} is not compact.
        relation = numbers_relation([0, 1, 2])
        assert not is_compact_set(relation, absdiff_distance(), [0, 2])

    def test_table1_duplicates_are_compact(self, table1, edit):
        for group in ([0, 1], [2, 3], [4, 5]):
            assert is_compact_set(table1, edit, group)


class TestSnGroup:
    def test_singleton_trivially_sn(self):
        relation = numbers_relation([0, 1])
        assert is_sn_group(relation, absdiff_distance(), [0], "max", c=1.5)

    def test_sparse_pair_passes(self):
        relation = numbers_relation([0, 1, 100, 200])
        assert is_sn_group(relation, absdiff_distance(), [0, 1], "max", c=3.0)

    def test_dense_group_fails_max(self):
        relation = numbers_relation([0, 1, 2, 3, 4])
        assert not is_sn_group(relation, absdiff_distance(), [1, 2], "max", c=3.0)

    def test_avg_more_permissive_than_max(self):
        relation = numbers_relation([0, 1, 2, 100])
        # ng: 0 -> 2 (0's nn=1, radius 2 covers 1 only... values 0,1 ->
        # covers 1; 2 at distance 2 not strict) ; 1 -> 3; so max=3, avg=2.5.
        assert not is_sn_group(relation, absdiff_distance(), [0, 1], "max", c=3.0)
        assert is_sn_group(relation, absdiff_distance(), [0, 1], "avg", c=3.0)

    def test_custom_p(self):
        relation = numbers_relation([0, 1, 3, 100])
        assert is_sn_group(relation, absdiff_distance(), [0, 1], "max", c=3.0, p=2.0)
        assert not is_sn_group(
            relation, absdiff_distance(), [0, 1], "max", c=3.0, p=5.0
        )


class TestDiameter:
    def test_diameter(self):
        relation = numbers_relation([0, 5, 9])
        assert group_diameter(relation, absdiff_distance(), [0, 1, 2]) == pytest.approx(
            0.009
        )

    def test_singleton_diameter_zero(self):
        relation = numbers_relation([7])
        assert group_diameter(relation, absdiff_distance(), [0]) == 0.0
