"""Parity tests for the columnar signature factory.

The factory's whole contract is *bit-identity*: whatever backend signs
a relation — the pure-python per-record loop or the vocabulary-hashed
numpy gather — the signatures, band keys, and LSH buckets must be
byte-for-byte the ones :func:`~repro.index.minhash.minhash_signature`
and :func:`~repro.index.minhash.band_keys` produce.  Hypothesis drives
arbitrary unicode (including astral-plane) token sets through both
paths; a divisor matrix covers every ``(n_hashes, n_bands)`` shape the
index accepts; and the persistent postings' batch loader must leave
logs indistinguishable from one-at-a-time inserts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Record, Relation
from repro.distances.kernels.compat import have_numpy
from repro.index.minhash import _PRIME, band_keys, minhash_signature
from repro.index.postings import PersistentMinHashPostings
from repro.index.signatures import (
    SignatureFactory,
    group_band_buckets,
    resolve_signer_backend,
)
from repro.storage.engine import Engine

BACKENDS = ["python"] + (["numpy"] if have_numpy() else [])

# Arbitrary unicode tokens, astral plane included: the keyed blake2b
# hashes utf-8 bytes, so surrogate-free text is the only constraint.
tokens_strategy = st.lists(
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",), min_codepoint=1
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=0,
    max_size=12,
)


class TestSignatureParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=60, deadline=None)
    @given(token_sets=st.lists(tokens_strategy, min_size=1, max_size=6))
    def test_sign_sets_matches_scalar(self, backend, token_sets):
        factory = SignatureFactory(16, backend=backend)
        signed = factory.sign_sets([set(ts) for ts in token_sets])
        for tokens, signature in zip(token_sets, signed.tuples):
            assert signature == minhash_signature(set(tokens), 16)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_set_signs_all_prime(self, backend):
        factory = SignatureFactory(8, backend=backend)
        signed = factory.sign_sets([set()])
        assert signed.tuples[0] == (_PRIME,) * 8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_rows_between_full_rows(self, backend):
        # Empty CSR rows are the reduceat hazard: boundaries collide.
        sets = [{"a", "b"}, set(), {"c"}, set(), set(), {"a", "c"}]
        factory = SignatureFactory(8, backend=backend)
        signed = factory.sign_sets(sets)
        for tokens, signature in zip(sets, signed.tuples):
            assert signature == minhash_signature(tokens, 8)

    def test_backends_agree(self):
        if not have_numpy():
            pytest.skip("numpy unavailable")
        sets = [{"cascade", "systems"}, {"café", "\U0001f600"}, set()]
        python = SignatureFactory(32, backend="python").sign_sets(sets)
        numpy = SignatureFactory(32, backend="numpy").sign_sets(sets)
        assert python.tuples == numpy.tuples
        assert python.backend == "python"
        assert numpy.backend == "numpy"

    def test_auto_resolution(self):
        expected = "numpy" if have_numpy() else "python"
        assert resolve_signer_backend("auto") == expected
        assert SignatureFactory(8, backend="auto").backend == expected


class TestBandGroupingParity:
    SETS = [
        {"cascade", "systems"},
        {"cascade", "sistems"},
        {"granite"},
        set(),
        {"granite", "manufacturing", "inc"},
        {"cascade", "systems"},  # exact duplicate: must share buckets
    ]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "n_hashes,n_bands",
        [(h, b) for h in (8, 16, 64) for b in (1, 2, 4, 8, 16, 32, 64)
         if b <= h and h % b == 0],
    )
    def test_buckets_match_scalar_band_keys(self, backend, n_hashes, n_bands):
        factory = SignatureFactory(n_hashes, backend=backend)
        signed = factory.sign_sets(self.SETS)
        grouping = group_band_buckets(signed, n_bands)
        expected: dict = {}
        for row, tokens in enumerate(self.SETS):
            signature = minhash_signature(tokens, n_hashes)
            for band, key in band_keys(signature, n_bands):
                expected.setdefault((band, key), []).append(row)
        assert {
            key: members for key, members in grouping.buckets.items()
        } == expected
        for row, keys in enumerate(grouping.row_keys):
            signature = minhash_signature(self.SETS[row], n_hashes)
            assert keys == band_keys(signature, n_bands)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_row_buckets_alias_bucket_lists(self, backend):
        # row_buckets must share list identity with buckets so the
        # index's member-probe path never diverges from the key path.
        factory = SignatureFactory(16, backend=backend)
        grouping = group_band_buckets(factory.sign_sets(self.SETS), 4)
        for band, per_row in enumerate(grouping.row_buckets):
            for row, members in enumerate(per_row):
                key = grouping.row_keys[row][band]
                assert members is grouping.buckets[key]


class TestSignRecords:
    def test_rids_and_timings(self):
        relation = Relation.from_strings(
            "orgs", ["cascade systems", "cascade sistems", "granite"]
        )
        factory = SignatureFactory(16, backend="auto")
        signed = factory.sign_records(
            relation.ids(),
            lambda rid: set(relation.get(rid).text().split()),
        )
        assert signed.rids == relation.ids()
        assert set(signed.timings) == {"tokenize", "sign"}
        assert signed.matches(relation.ids(), 16)
        assert not signed.matches(relation.ids(), 32)
        assert not signed.matches(relation.ids()[:-1], 16)


class TestPostingsBatchParity:
    CORPUS = [
        "cascade systems",
        "cascade sistems",
        "granite manufacturing",
        "granite manufacturing inc",
        "zzz totally unrelated",
    ]

    def records(self):
        return [Record(rid, (text,)) for rid, text in enumerate(self.CORPUS)]

    def test_add_many_matches_sequential_adds(self):
        sequential = PersistentMinHashPostings(Engine(), use_qgrams=True)
        for record in self.records():
            sequential.add(record)
        batched = PersistentMinHashPostings(Engine(), use_qgrams=True)
        batched.add_many(self.records())
        assert batched._signatures == sequential._signatures
        assert batched._buckets == sequential._buckets
        assert batched.log_rows_appended == sequential.log_rows_appended
        assert batched.signatures_computed == sequential.signatures_computed
        for table in (sequential.signatures_table, sequential.postings_table):
            assert list(batched.engine.table(table).scan()) == list(
                sequential.engine.table(table).scan()
            )

    def test_warm_restart_after_add_many(self):
        engine = Engine()
        batched = PersistentMinHashPostings(engine, use_qgrams=True)
        batched.add_many(self.records())
        probe = Record(0, (self.CORPUS[0],))
        expected = batched.candidates(probe)
        restarted = PersistentMinHashPostings(engine, use_qgrams=True)
        assert restarted.restored
        assert restarted.signatures_computed == 0
        assert restarted.candidates(probe) == expected

    def test_add_many_rejects_duplicates(self):
        postings = PersistentMinHashPostings(Engine(), use_qgrams=True)
        with pytest.raises(ValueError):
            postings.add_many(
                [Record(0, ("a b",)), Record(0, ("c d",))]
            )
        postings.add(Record(1, ("a b",)))
        with pytest.raises(ValueError):
            postings.add_many([Record(1, ("a b",))])

    def test_add_many_empty_batch_is_noop(self):
        postings = PersistentMinHashPostings(Engine(), use_qgrams=True)
        postings.add_many([])
        assert len(postings) == 0
        assert postings.log_rows_appended == 0
