"""Tests for the ASCII figure rendering."""


from repro.eval.figures import loglog_plot, pr_plot, scatter
from repro.eval.pr_curve import PRPoint, PRSweep


class TestScatter:
    def test_empty(self):
        out = scatter({}, title="T")
        assert "(no data)" in out

    def test_points_placed(self):
        out = scatter({"a": [(0.0, 0.0), (1.0, 1.0)]}, width=10, height=5)
        lines = out.splitlines()
        # Bottom-left corner and top-right corner are marked.
        assert lines[1].rstrip().endswith(" ") or "o" in lines[1]
        assert any("o" in line for line in lines)

    def test_legend_lists_all_series(self):
        out = scatter({"alpha": [(0, 0)], "beta": [(1, 1)]})
        assert "o = alpha" in out
        assert "x = beta" in out

    def test_axis_ranges_shown(self):
        out = scatter({"a": [(2.0, 3.0), (4.0, 9.0)]}, x_label="n", y_label="t")
        assert "[2 .. 4]" in out
        assert "[3 .. 9]" in out

    def test_degenerate_single_point(self):
        out = scatter({"a": [(5.0, 5.0)]})
        assert "o" in out

    def test_custom_ranges_clamp(self):
        out = scatter({"a": [(2.0, 2.0)]}, x_range=(0, 1), y_range=(0, 1))
        assert "o" in out  # clamped into the corner, no crash


class TestPrPlot:
    def test_renders_sweeps(self):
        sweeps = [
            PRSweep("thr", [PRPoint("thr", 0.1, precision=0.4, recall=0.6, f1=0.48)]),
            PRSweep("DE", [PRPoint("DE", 3, precision=0.9, recall=0.6, f1=0.72)]),
        ]
        out = pr_plot(sweeps, title="quality")
        assert "quality" in out
        assert "recall" in out
        assert "precision" in out
        assert "o = thr" in out
        assert "x = DE" in out

    def test_mapping_input(self):
        sweep = PRSweep("m", [PRPoint("m", 1, precision=1, recall=1, f1=1)])
        assert "m" in pr_plot({"m": sweep})

    def test_higher_precision_plots_higher(self):
        low = PRSweep("low", [PRPoint("low", 1, precision=0.1, recall=0.5, f1=0.2)])
        high = PRSweep("high", [PRPoint("high", 1, precision=0.9, recall=0.5, f1=0.6)])
        out = pr_plot([low, high], height=10)
        lines = [line for line in out.splitlines() if line.startswith("  |")]
        row_of = {}
        for row, line in enumerate(lines):
            if "o" in line:
                row_of["low"] = row
            if "x" in line:
                row_of["high"] = row
        # Lower row index = higher on screen = higher precision.
        assert row_of["high"] < row_of["low"]


class TestLogLogPlot:
    def test_drops_nonpositive(self):
        out = loglog_plot({"t": [(0.0, 1.0), (10.0, 1.0)]})
        assert "o" in out

    def test_linear_series_is_diagonal(self):
        points = [(10**i, 10**i) for i in range(1, 5)]
        out = loglog_plot({"lin": points}, width=20, height=10)
        lines = [line[3:] for line in out.splitlines() if line.startswith("  |")]
        coords = [
            (row, col)
            for row, line in enumerate(lines)
            for col, char in enumerate(line)
            if char == "o"
        ]
        # Strictly monotone: as the column grows, the row shrinks.
        coords.sort(key=lambda rc: rc[1])
        rows = [row for row, _ in coords]
        assert rows == sorted(rows, reverse=True)
        assert len(coords) == 4
