"""Tests for the joint size+diameter cut specification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import group_diameter, is_compact_set, is_sn_group
from repro.core.formulation import CombinedCut, DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.core.serialize import params_from_dict, params_to_dict

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=16, unique=True
)


class TestCombinedCutType:
    def test_validation(self):
        with pytest.raises(ValueError):
            CombinedCut(0, 0.5)
        with pytest.raises(ValueError):
            CombinedCut(3, 1.0)

    def test_params_accessors(self):
        params = DEParams.combined(4, 0.2, c=5.0)
        assert params.k == 4
        assert params.theta == 0.2
        assert not params.is_size_spec

    def test_str(self):
        assert str(CombinedCut(3, 0.25)) == "size<=3&diam<=0.25"

    def test_serialization_roundtrip(self):
        params = DEParams.combined(4, 0.2, agg="avg", c=5.0)
        assert params_from_dict(params_to_dict(params)) == params


class TestCombinedSemantics:
    @settings(max_examples=40, deadline=None)
    @given(values_strategy, st.integers(2, 5), st.floats(0.01, 0.2))
    def test_both_bounds_hold(self, values, k, theta):
        relation = numbers_relation(values)
        distance = absdiff_distance()
        params = DEParams.combined(k, theta, c=4.0)
        result = DuplicateEliminator(distance, cache_distance=False).run(
            relation, params
        )
        for group in result.partition.non_trivial_groups():
            assert len(group) <= k
            assert group_diameter(relation, distance, group) < theta
            assert is_compact_set(relation, distance, group)
            assert is_sn_group(relation, distance, group, "max", 4.0)

    @settings(max_examples=25, deadline=None)
    @given(values_strategy, st.integers(2, 5))
    def test_reduces_to_size_spec_with_loose_theta(self, values, k):
        relation = numbers_relation(values)
        distance = absdiff_distance()
        size_only = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.size(k, c=4.0)
        )
        combined = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.combined(k, 0.999999, c=4.0)
        )
        assert combined.partition == size_only.partition

    @settings(max_examples=25, deadline=None)
    @given(values_strategy, st.floats(0.01, 0.2))
    def test_reduces_to_diameter_spec_with_loose_k(self, values, theta):
        relation = numbers_relation(values)
        distance = absdiff_distance()
        diameter_only = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.diameter(theta, c=4.0)
        )
        combined = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.combined(len(values) + 1, theta, c=4.0)
        )
        assert combined.partition == diameter_only.partition

    @settings(max_examples=20, deadline=None)
    @given(values_strategy)
    def test_engine_parity(self, values):
        relation = numbers_relation(values)
        params = DEParams.combined(3, 0.05, c=4.0)
        direct = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        )
        engined = DuplicateEliminator(
            absdiff_distance(), use_engine=True, cache_distance=False
        ).run(relation, params)
        assert direct.partition == engined.partition

    def test_combined_can_differ_from_both(self):
        # A triple within theta but bounded to pairs by K, plus a far
        # pair: K=2 truncation + theta jointly shape the result.
        relation = numbers_relation([0, 1, 2, 800, 801])
        distance = absdiff_distance()
        combined = DuplicateEliminator(distance, cache_distance=False).run(
            relation, DEParams.combined(2, 0.01, c=4.0)
        )
        for group in combined.partition.non_trivial_groups():
            assert len(group) <= 2
            assert group_diameter(relation, distance, group) < 0.01
