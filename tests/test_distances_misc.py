"""Tests for Jaccard, Jaro-Winkler, record combiners, and base wrappers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.schema import Record, Relation
from repro.distances.base import (
    CachedDistance,
    FunctionDistance,
    ScaledDistance,
    clamp01,
)
from repro.distances.edit import EditDistance
from repro.distances.jaccard import (
    QgramJaccardDistance,
    TokenJaccardDistance,
    WeightedJaccardDistance,
    jaccard_similarity,
    weighted_jaccard_similarity,
)
from repro.distances.jaro import (
    JaroWinklerDistance,
    jaro_similarity,
    jaro_winkler_similarity,
)
from repro.distances.record import (
    MaxFieldDistance,
    WeightedFieldDistance,
    normalized_edit,
)

words = st.text(alphabet="abcdef ", max_size=15)


class TestJaccard:
    def test_similarity_known(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard_similarity({"a"}, set()) == 0.0

    def test_weighted_prefers_heavy_overlap(self):
        weight = {"rare": 10.0, "common": 1.0}
        heavy = weighted_jaccard_similarity({"rare", "x"}, {"rare", "y"}, {**weight, "x": 1, "y": 1})
        light = weighted_jaccard_similarity({"common", "x"}, {"common", "y"}, {**weight, "x": 10, "y": 10})
        assert heavy > light

    def test_token_distance(self):
        d = TokenJaccardDistance()
        a, b = Record(0, ("golden dragon",)), Record(1, ("golden dragon express",))
        assert d.distance(a, b) == pytest.approx(1 / 3)

    def test_qgram_distance_robust_to_typo(self):
        d = QgramJaccardDistance(q=2)
        token = TokenJaccardDistance()
        a, b = Record(0, ("microsoft",)), Record(1, ("microsft",))
        assert d.distance(a, b) < token.distance(a, b)

    def test_weighted_requires_prepare(self):
        d = WeightedJaccardDistance()
        with pytest.raises(RuntimeError):
            d.distance(Record(0, ("a",)), Record(1, ("b",)))

    def test_weighted_distance_in_range(self):
        relation = Relation.from_strings("r", ["a b", "b c", "c d"])
        d = WeightedJaccardDistance()
        d.prepare(relation)
        value = d.distance(relation.get(0), relation.get(1))
        assert 0.0 < value < 1.0

    @given(words, words)
    def test_token_distance_unit_interval(self, a, b):
        d = TokenJaccardDistance()
        assert 0.0 <= d.distance(Record(0, (a,)), Record(1, (b,))) <= 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_winkler_boosts_common_prefix(self):
        assert jaro_winkler_similarity("prefixed", "prefixes") >= jaro_similarity(
            "prefixed", "prefixes"
        )

    def test_winkler_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)

    def test_distance_function(self):
        d = JaroWinklerDistance()
        assert d.distance(Record(0, ("martha",)), Record(1, ("martha",))) == 0.0

    @given(words, words)
    def test_distance_unit_interval(self, a, b):
        d = JaroWinklerDistance()
        assert 0.0 <= d.distance(Record(0, (a,)), Record(1, (b,))) <= 1.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert jaro_similarity(a, b) == pytest.approx(jaro_similarity(b, a))


class TestRecordCombiners:
    def test_normalized_edit(self):
        assert normalized_edit("abc", "abd") == pytest.approx(1 / 3)

    def test_weighted_fields_uniform_default(self):
        d = WeightedFieldDistance()
        a = Record(0, ("abc", "xyz"))
        b = Record(1, ("abc", "xyw"))
        assert d.distance(a, b) == pytest.approx(0.5 * (0 + 1 / 3))

    def test_weighted_fields_custom_weights(self):
        d = WeightedFieldDistance(weights=[1.0, 0.0])
        a = Record(0, ("same", "different"))
        b = Record(1, ("same", "other"))
        assert d.distance(a, b) == 0.0

    def test_weighted_fields_rejects_negative(self):
        with pytest.raises(ValueError):
            WeightedFieldDistance(weights=[-1.0, 2.0])

    def test_weighted_fields_rejects_all_zero(self):
        with pytest.raises(ValueError):
            WeightedFieldDistance(weights=[0.0, 0.0])

    def test_weighted_fields_arity_check(self):
        d = WeightedFieldDistance(weights=[1.0])
        with pytest.raises(ValueError):
            d.distance(Record(0, ("a", "b")), Record(1, ("c", "d")))

    def test_arity_mismatch_between_records(self):
        d = WeightedFieldDistance()
        with pytest.raises(ValueError):
            d.distance(Record(0, ("a",)), Record(1, ("a", "b")))

    def test_max_fields(self):
        d = MaxFieldDistance()
        a = Record(0, ("same", "abc"))
        b = Record(1, ("same", "xyz"))
        assert d.distance(a, b) == 1.0

    def test_max_fields_identical(self):
        d = MaxFieldDistance()
        assert d.distance(Record(0, ("a", "b")), Record(1, ("a", "b"))) == 0.0


class TestBaseWrappers:
    def test_clamp01(self):
        assert clamp01(-0.5) == 0.0
        assert clamp01(1.5) == 1.0
        assert clamp01(0.25) == 0.25

    def test_function_distance_clamps(self):
        d = FunctionDistance(lambda a, b: 2.0)
        assert d.distance(Record(0, ("x",)), Record(1, ("y",))) == 1.0

    def test_cached_distance_hits(self):
        inner = EditDistance()
        cached = CachedDistance(inner)
        a, b = Record(0, ("abc",)), Record(1, ("abd",))
        first = cached.distance(a, b)
        second = cached.distance(b, a)  # symmetric key
        assert first == second
        assert cached.calls == 2
        assert cached.misses == 1

    def test_cached_distance_cleared_on_prepare(self):
        cached = CachedDistance(EditDistance())
        a, b = Record(0, ("abc",)), Record(1, ("abd",))
        cached.distance(a, b)
        cached.prepare(Relation.from_strings("r", ["abc", "abd"]))
        cached.distance(a, b)
        assert cached.misses == 2

    def test_cached_distance_hit_rate(self):
        cached = CachedDistance(EditDistance())
        a, b = Record(0, ("abc",)), Record(1, ("abd",))
        assert cached.hit_rate == 0.0  # no calls yet: defined, not NaN
        cached.distance(a, b)
        cached.distance(a, b)
        cached.distance(b, a)
        assert cached.hits == 2
        assert cached.hit_rate == pytest.approx(2 / 3)
        assert len(cached) == 1

    def test_cached_distance_bounded_eviction(self):
        records = [Record(i, (f"word{i}",)) for i in range(6)]
        cached = CachedDistance(EditDistance(), max_entries=3)
        for other in records[1:]:
            cached.distance(records[0], other)
        assert len(cached) == 3
        assert cached.evictions == 2
        # Evicted pairs recompute to the same value.
        assert cached.distance(records[0], records[1]) == EditDistance().distance(
            records[0], records[1]
        )

    def test_bounded_eviction_is_fifo(self):
        # Eviction runs through OrderedDict.popitem(last=False): O(1)
        # and oldest-first.  The newest entries must survive.
        records = [Record(i, (f"w{i}",)) for i in range(4)]
        cached = CachedDistance(EditDistance(), max_entries=2)
        cached.distance(records[0], records[1])
        cached.distance(records[0], records[2])
        cached.distance(records[0], records[3])  # evicts the (0, 1) pair
        misses = cached.misses
        cached.distance(records[0], records[2])
        cached.distance(records[0], records[3])
        assert cached.misses == misses  # both survivors still cached
        cached.distance(records[0], records[1])
        assert cached.misses == misses + 1  # the oldest was the victim

    def test_cached_distance_rejects_bad_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            CachedDistance(EditDistance(), max_entries=0)

    def test_scaled_distance(self):
        scaled = ScaledDistance(EditDistance(), 0.5)
        a, b = Record(0, ("ab",)), Record(1, ("ax",))
        assert scaled.distance(a, b) == pytest.approx(0.25)

    def test_scaled_distance_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ScaledDistance(EditDistance(), 0.0)
        with pytest.raises(ValueError):
            ScaledDistance(EditDistance(), 1.5)
