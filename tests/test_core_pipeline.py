"""Tests for the end-to-end DE pipeline."""

import pytest

from repro.core.formulation import DEParams
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.core.pipeline import DuplicateEliminator
from repro.core.result import Partition
from repro.data.embedded import table1_duplicate_groups
from repro.distances.edit import EditDistance
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.storage.engine import Engine

from tests.helpers import absdiff_distance, numbers_relation


class TestBasicRuns:
    def test_numbers_pairs(self):
        relation = numbers_relation([0, 1, 100, 101, 500])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.size(3, c=3.0))
        assert result.partition.non_trivial_groups() == [(0, 1), (2, 3)]

    def test_table1_true_groups_found(self, table1):
        solver = DuplicateEliminator(EditDistance())
        result = solver.run(table1, DEParams.size(5, c=4.0))
        groups = set(result.partition.non_trivial_groups())
        for expected in table1_duplicate_groups():
            assert tuple(expected) in groups

    def test_table1_dense_family_never_grouped(self, table1):
        # Tuples 10-13 ("Are You Ready" under four artists) have ng = 4;
        # with c = 4 the SN criterion keeps them apart — the paper's key
        # claim against thresholding.
        solver = DuplicateEliminator(EditDistance())
        result = solver.run(table1, DEParams.size(5, c=4.0))
        for rid in (10, 11, 12, 13):
            assert result.partition.group_of(rid) == (rid,)

    def test_diameter_spec(self):
        relation = numbers_relation([0, 1, 100, 101, 500])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.diameter(0.01, c=3.0))
        assert result.partition.non_trivial_groups() == [(0, 1), (2, 3)]

    def test_diameter_bound_respected(self):
        relation = numbers_relation([0, 1, 100, 101, 500])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.diameter(0.0005, c=3.0))
        # Radius smaller than any gap: everything is a singleton.
        assert result.partition == Partition.singletons(relation.ids())

    def test_size_bound_respected(self):
        relation = numbers_relation([0, 1, 2, 3, 1000, 2000, 3000, 4000])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.size(2, c=9.0))
        assert all(len(g) <= 2 for g in result.partition)

    def test_sn_threshold_filters_dense_groups(self):
        # A uniform clump of 5 (interior ng = 3) plus an isolated pair
        # (ng = 2): with c = 3 the SN criterion filters the clump but
        # keeps the pair.
        relation = numbers_relation([0, 1, 2, 3, 4, 1000, 1001])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.size(5, c=3.0))
        assert result.partition.non_trivial_groups() == [(5, 6)]

    def test_result_metadata(self):
        relation = numbers_relation([0, 1, 50])
        solver = DuplicateEliminator(absdiff_distance())
        result = solver.run(relation, DEParams.size(2, c=3.0))
        assert result.phase1.lookups == 3
        assert result.phase1.seconds > 0.0
        assert result.n_cs_pairs >= 1
        assert len(result.nn_relation) == 3


class TestEngineParity:
    @pytest.mark.parametrize(
        "params",
        [DEParams.size(4, c=4.0), DEParams.diameter(0.3, c=4.0)],
        ids=["size", "diameter"],
    )
    def test_engine_and_direct_agree_on_table1(self, table1, params):
        direct = DuplicateEliminator(EditDistance()).run(table1, params)
        engined = DuplicateEliminator(EditDistance(), use_engine=True).run(
            table1, params
        )
        assert direct.partition == engined.partition

    def test_custom_engine_accepted(self, table1):
        engine = Engine(buffer_pages=16)
        solver = DuplicateEliminator(EditDistance(), engine=engine)
        result = solver.run(table1, DEParams.size(3, c=4.0))
        assert "CSPairs" in engine.catalog
        assert result.partition is not None


class TestIndexChoices:
    def test_bktree_matches_bruteforce(self, table1):
        params = DEParams.size(4, c=4.0)
        brute = DuplicateEliminator(EditDistance(), index=BruteForceIndex()).run(
            table1, params
        )
        bk = DuplicateEliminator(
            EditDistance(), index=BKTreeIndex(), cache_distance=False
        ).run(table1, params)
        assert brute.partition == bk.partition

    def test_lookup_orders_agree(self, table1):
        params = DEParams.size(4, c=4.0)
        results = {
            order: DuplicateEliminator(EditDistance(), order=order)
            .run(table1, params)
            .partition
            for order in ("bf", "random", "sequential")
        }
        assert results["bf"] == results["random"] == results["sequential"]


class TestRunFromNN:
    def test_phase2_only_reuse(self):
        relation = numbers_relation([0, 1, 100, 101])
        solver = DuplicateEliminator(absdiff_distance())
        params = DEParams.size(3, c=3.0)
        full = solver.run(relation, params)
        again = solver.run_from_nn(relation, full.nn_relation, params)
        assert again.partition == full.partition

    def test_sweeping_c_over_shared_phase1(self):
        relation = numbers_relation([0, 1, 2, 3, 4, 1000, 1001])
        solver = DuplicateEliminator(absdiff_distance())
        base = solver.run(relation, DEParams.size(5, c=3.0))
        permissive = solver.run_from_nn(
            relation, base.nn_relation, DEParams.size(5, c=9.0)
        )
        # Looser c admits the dense clump as a group too.
        assert len(permissive.partition.non_trivial_groups()) > len(
            base.partition.non_trivial_groups()
        )


class TestPostProcessing:
    def test_minimal_flag(self):
        relation = numbers_relation([0, 1, 100, 101])
        solver = DuplicateEliminator(absdiff_distance(), minimal=True)
        result = solver.run(relation, DEParams.size(4, c=5.0))
        assert result.partition.non_trivial_groups() == [(0, 1), (2, 3)]

    def test_cannot_link_splits(self):
        relation = numbers_relation([0, 1, 100, 101])
        solver = DuplicateEliminator(
            absdiff_distance(),
            cannot_link=lambda a, b: {a.fields[0], b.fields[0]} == {"0", "1"},
        )
        result = solver.run(relation, DEParams.size(3, c=3.0))
        assert result.partition.non_trivial_groups() == [(2, 3)]


class TestPhase1Stats:
    def test_throughput(self):
        stats = Phase1Stats(lookups=100, seconds=2.0)
        assert stats.throughput == 50.0

    def test_zero_seconds(self):
        assert Phase1Stats().throughput == 0.0

    def test_zero_lookups_with_elapsed_time(self):
        # A resumed/empty run may record time but no lookups; the
        # throughput must stay defined (0.0), not divide into nonsense.
        assert Phase1Stats(lookups=0, seconds=1.5).throughput == 0.0

    def test_cache_hit_rate_defined_without_traffic(self):
        assert Phase1Stats().cache_hit_rate == 0.0
        assert Phase1Stats(cache_hits=3, cache_misses=1).cache_hit_rate == 0.75

    def test_stats_accumulate_across_runs(self):
        relation = numbers_relation([0, 1, 10, 11])
        params = DEParams.size(2, c=4.0)
        stats = Phase1Stats()
        for _ in range(2):
            index = BruteForceIndex()
            index.build(relation, absdiff_distance())
            prepare_nn_lists(relation, index, params, stats=stats)
        assert stats.lookups == 8
        assert stats.seconds > 0.0
        assert stats.evaluations > 0
        # Two runs cost twice one run, not "only the last run".
        single = Phase1Stats()
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        prepare_nn_lists(relation, index, params, stats=single)
        assert stats.evaluations == 2 * single.evaluations

    def test_prepare_requires_matching_relation(self):
        relation = numbers_relation([0, 1])
        other = numbers_relation([5, 6])
        index = BruteForceIndex()
        index.build(relation, absdiff_distance())
        with pytest.raises(ValueError, match="not built over"):
            prepare_nn_lists(other, index, DEParams.size(2))
