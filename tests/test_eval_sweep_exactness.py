"""The PR-sweep shortcut must equal full Phase-1 recomputation.

QualitySweeper materializes Phase 1 once at the loosest setting and
*truncates* per sweep point.  These property tests verify the
assumption behind that: a truncated NN relation is identical to one
computed from scratch at the tighter setting, for both cut shapes —
so every sweep point's result is exactly what a fresh run would give.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulation import DEParams
from repro.core.nn_phase import prepare_nn_lists
from repro.core.pipeline import DuplicateEliminator
from repro.eval.pr_curve import truncate_to_k, truncate_to_radius
from repro.index.bruteforce import BruteForceIndex

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=16, unique=True
)


def phase1(relation, params):
    index = BruteForceIndex()
    index.build(relation, absdiff_distance())
    return prepare_nn_lists(relation, index, params)


class TestTruncationExactness:
    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.integers(2, 6))
    def test_k_truncation_equals_recomputation(self, values, k):
        relation = numbers_relation(values)
        loose = phase1(relation, DEParams.size(8))
        tight = phase1(relation, DEParams.size(k))
        truncated = truncate_to_k(loose, k)
        for entry in tight:
            other = truncated.get(entry.rid)
            assert other.neighbors == entry.neighbors
            assert other.ng == entry.ng  # NG is K-independent

    @settings(max_examples=30, deadline=None)
    @given(values_strategy, st.floats(0.01, 0.3))
    def test_radius_truncation_equals_recomputation(self, values, theta):
        relation = numbers_relation(values)
        loose = phase1(relation, DEParams.diameter(0.6))
        tight = phase1(relation, DEParams.diameter(theta))
        truncated = truncate_to_radius(loose, theta)
        for entry in tight:
            other = truncated.get(entry.rid)
            assert other.neighbors == entry.neighbors
            assert other.ng == entry.ng  # NG is theta-independent

    @settings(max_examples=20, deadline=None)
    @given(values_strategy, st.integers(2, 5), st.sampled_from([2.0, 4.0]))
    def test_swept_partition_equals_fresh_run(self, values, k, c):
        relation = numbers_relation(values)
        params = DEParams.size(k, c=c)
        loose = phase1(relation, DEParams.size(8))
        solver = DuplicateEliminator(absdiff_distance(), cache_distance=False)
        via_sweep = solver.run_from_nn(
            relation, truncate_to_k(loose, k), params
        ).partition
        fresh = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
            relation, params
        ).partition
        assert via_sweep == fresh
