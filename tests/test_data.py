"""Tests for error injection, generators, duplicate injection, loaders."""

import pytest

from repro.data.duplicates import GoldStandard, inject_duplicates
from repro.data.embedded import (
    integer_distance,
    integers_example,
    table1_expected_partition,
    table1_gold,
    table1_relation,
)
from repro.data.errors import ErrorModel
from repro.data.generators import GENERATORS, MediaGenerator, ParkGenerator
from repro.data.loaders import (
    dataset_names,
    load_dataset,
    relation_from_csv,
    relation_to_csv,
)


class TestErrorModel:
    def test_deterministic_under_seed(self):
        a = ErrorModel(seed=5).corrupt("golden dragon express", 2)
        b = ErrorModel(seed=5).corrupt("golden dragon express", 2)
        assert a == b

    def test_different_seeds_usually_differ(self):
        outcomes = {
            ErrorModel(seed=s).corrupt("golden dragon express", 2) for s in range(8)
        }
        assert len(outcomes) > 1

    def test_typo_transpose(self):
        model = ErrorModel(seed=0)
        assert model.typo_transpose("ab") == "ba"

    def test_typo_delete_never_empties(self):
        model = ErrorModel(seed=0)
        assert model.typo_delete("a") == "a"

    def test_typo_insert_lengthens(self):
        model = ErrorModel(seed=0)
        assert len(model.typo_insert("abc")) == 4

    def test_swap_tokens(self):
        model = ErrorModel(seed=0)
        assert model.swap_tokens("lisa simpson") == "simpson lisa"

    def test_drop_token_single_word_noop(self):
        model = ErrorModel(seed=0)
        assert model.drop_token("single") == "single"

    def test_abbreviate(self):
        model = ErrorModel(seed=0)
        assert model.abbreviate("acme corporation") == "acme corp"

    def test_expand(self):
        model = ErrorModel(seed=0)
        assert model.expand("acme corp") == "acme corporation"

    def test_move_leading_article(self):
        model = ErrorModel(seed=0)
        assert model.move_leading_article("The Beatles") == "Beatles, The"
        assert model.move_leading_article("Beatles") == "Beatles"

    def test_strip_punctuation(self):
        model = ErrorModel(seed=0)
        assert model.strip_punctuation("I'm Dr. Who,") == "Im Dr Who"

    def test_merge_tokens(self):
        model = ErrorModel(seed=0)
        assert model.merge_tokens("data base") == "database"

    def test_initial_token(self):
        model = ErrorModel(seed=1)
        result = model.initial_token("rajeev motwani")
        assert result in ("R motwani", "rajeev M")

    def test_corrupt_changes_text(self):
        model = ErrorModel(seed=3)
        assert model.corrupt("cascade systems corporation", 2) != (
            "cascade systems corporation"
        )

    def test_corrupt_fields_touches_only_nonempty(self):
        model = ErrorModel(seed=0)
        fields = model.corrupt_fields(("", "hello world"), n_errors=2)
        assert fields[0] == ""
        assert fields[1] != "hello world"

    def test_corrupt_fields_all_empty(self):
        model = ErrorModel(seed=0)
        assert model.corrupt_fields(("", ""), n_errors=2) == ("", "")


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_generates_requested_count(self, name):
        rows = GENERATORS[name].generate(50, seed=1)
        assert len(rows) == 50

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_rows_unique(self, name):
        rows = GENERATORS[name].generate(50, seed=1)
        assert len(set(rows)) == 50

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_deterministic(self, name):
        assert GENERATORS[name].generate(30, seed=2) == GENERATORS[name].generate(
            30, seed=2
        )

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_arity_matches_schema(self, name):
        generator = GENERATORS[name]
        rows = generator.generate(20, seed=0)
        assert all(len(row) == len(generator.schema) for row in rows)

    def test_media_contains_series_families(self):
        rows = MediaGenerator().generate(200, seed=0)
        assert any("Part II" in track for _, track in rows)

    def test_parks_has_no_families(self):
        # Parks rows are single emissions; no "Part"/"Outlet" markers.
        rows = ParkGenerator().generate(100, seed=0)
        assert not any("Outlet" in row[0] or "Part" in row[0] for row in rows)

    def test_vocabulary_exhaustion_raises(self):
        with pytest.raises(RuntimeError, match="exhausted"):
            ParkGenerator().generate(10_000, seed=0)


class TestInjectDuplicates:
    def test_gold_covers_all_records(self):
        dataset = inject_duplicates(
            "t", ("v",), [("a b c",), ("d e f",), ("g h i",)], seed=0
        )
        assert set(dataset.gold.entity_of) == set(dataset.relation.ids())

    def test_zero_fraction_gives_no_duplicates(self):
        dataset = inject_duplicates(
            "t", ("v",), [("a",), ("b",)], duplicate_fraction=0.0, seed=0
        )
        assert dataset.gold.true_pairs() == set()
        assert len(dataset.relation) == 2

    def test_full_fraction_duplicates_everything(self):
        dataset = inject_duplicates(
            "t",
            ("v",),
            [("alpha beta",), ("gamma delta",)],
            duplicate_fraction=1.0,
            seed=0,
        )
        assert dataset.gold.duplicate_fraction() == 1.0

    def test_duplicate_fraction_accounting(self):
        gold = GoldStandard()
        gold.add(0, 0)
        gold.add(1, 0)
        gold.add(2, 1)
        assert gold.duplicate_fraction() == pytest.approx(2 / 3)

    def test_true_pairs(self):
        gold = GoldStandard()
        for rid, entity in [(0, 0), (1, 0), (2, 0), (3, 1)]:
            gold.add(rid, entity)
        assert gold.true_pairs() == {(0, 1), (0, 2), (1, 2)}

    def test_groups(self):
        gold = GoldStandard()
        for rid, entity in [(0, 0), (1, 1), (2, 0)]:
            gold.add(rid, entity)
        assert gold.groups() == [[0, 2], [1]]

    def test_are_duplicates(self):
        gold = GoldStandard()
        gold.add(0, 0)
        gold.add(1, 0)
        gold.add(2, 1)
        assert gold.are_duplicates(0, 1)
        assert not gold.are_duplicates(0, 2)
        assert not gold.are_duplicates(0, 99)

    def test_deterministic(self):
        a = inject_duplicates("t", ("v",), [("hello world",)] , seed=4)
        b = inject_duplicates("t", ("v",), [("hello world",)] , seed=4)
        assert a.relation.texts() == b.relation.texts()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            inject_duplicates("t", ("v",), [("a",)], duplicate_fraction=1.5)


class TestLoaders:
    def test_dataset_names(self):
        assert dataset_names() == sorted(
            ["media", "org", "restaurants", "birds", "parks", "census",
             "claims"]
        )

    def test_load_dataset(self):
        dataset = load_dataset("birds", n_entities=40, seed=0)
        assert dataset.name == "birds"
        assert len(dataset.relation) >= 40

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")

    def test_parks_cap_enforced(self):
        with pytest.raises(ValueError, match="at most"):
            load_dataset("parks", n_entities=100_000)

    def test_csv_roundtrip(self, tmp_path):
        dataset = load_dataset("restaurants", n_entities=10, seed=0)
        path = tmp_path / "r.csv"
        relation_to_csv(dataset.relation, path)
        loaded = relation_from_csv(path)
        assert loaded.schema == dataset.relation.schema
        assert loaded.texts() == dataset.relation.texts()

    def test_csv_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            relation_from_csv(path)


class TestEmbedded:
    def test_table1_shape(self):
        relation = table1_relation()
        assert len(relation) == 14
        assert relation.schema == ("artist", "track")

    def test_table1_gold_matches_expected_partition(self):
        gold = table1_gold()
        expected = table1_expected_partition()
        assert {
            tuple(group) for group in gold.groups() if len(group) > 1
        } == set(expected.non_trivial_groups())

    def test_integers_example(self):
        relation = integers_example()
        assert [int(r.fields[0]) for r in relation] == [1, 2, 4, 21, 22, 31, 32]

    def test_integer_distance(self):
        relation = integers_example()
        d = integer_distance()
        assert d.distance(relation.get(0), relation.get(1)) == pytest.approx(0.01)


class TestGoldCsv:
    def test_gold_roundtrip(self, tmp_path):
        import csv

        from repro.data.loaders import gold_from_csv

        path = tmp_path / "gold.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("rid", "entity"))
            writer.writerows([(0, 0), (1, 0), (2, 1)])
        gold = gold_from_csv(path)
        assert gold.true_pairs() == {(0, 1)}

    def test_gold_without_header(self, tmp_path):
        import csv

        from repro.data.loaders import gold_from_csv

        path = tmp_path / "gold.csv"
        with path.open("w", newline="") as handle:
            csv.writer(handle).writerows([(5, 2), (6, 2)])
        gold = gold_from_csv(path)
        assert gold.are_duplicates(5, 6)


class TestGeneratorStructure:
    def test_census_households_share_surname_and_street(self):
        from repro.data.generators import CensusGenerator
        import random

        generator = CensusGenerator()
        rng = random.Random(0)
        households = [
            rows for rows in (generator._emit(rng) for _ in range(300))
            if len(rows) >= 2
        ]
        assert households, "no households emitted in 300 draws"
        for rows in households:
            last_names = {row[0] for row in rows}
            streets = {(row[3], row[4]) for row in rows}
            first_names = {row[1] for row in rows}
            assert len(last_names) == 1
            assert len(streets) == 1
            assert len(first_names) == len(rows)  # distinct members

    def test_org_chains_share_location(self):
        from repro.data.generators import OrgGenerator
        import random

        generator = OrgGenerator()
        rng = random.Random(1)
        chains = [
            rows for rows in (generator._emit(rng) for _ in range(300))
            if len(rows) >= 2
        ]
        assert chains, "no chains emitted in 300 draws"
        for rows in chains:
            addresses = {row[1:] for row in rows}
            assert len(addresses) == 1  # same street/city/state/zip
            assert all("Outlet" in row[0] for row in rows)

    def test_org_zipcodes_are_digits(self):
        from repro.data.generators import OrgGenerator

        rows = OrgGenerator().generate(40, seed=2)
        assert all(row[4].isdigit() for row in rows)

    def test_media_series_share_artist_and_base(self):
        from repro.data.generators import MediaGenerator
        import random

        generator = MediaGenerator()
        rng = random.Random(3)
        families = [
            rows for rows in (generator._emit(rng) for _ in range(200))
            if len(rows) >= 2
        ]
        assert families
        for rows in families:
            artists = {artist for artist, _ in rows}
            assert len(artists) == 1
            base = rows[0][1]
            assert all(track.startswith(base) for _, track in rows)
