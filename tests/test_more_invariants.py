"""Cross-module invariants on randomized instances."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explain import explain_pair
from repro.core.formulation import DEParams
from repro.core.merge import merge_partition
from repro.core.pipeline import DuplicateEliminator
from repro.core.review import fragile_groups, near_miss_pairs
from repro.eval.cluster_metrics import bcubed, variation_of_information
from repro.data.duplicates import GoldStandard

from tests.helpers import absdiff_distance, numbers_relation

values_strategy = st.lists(
    st.integers(0, 900), min_size=2, max_size=14, unique=True
)


def solve(values, k=4, c=4.0):
    relation = numbers_relation(values)
    result = DuplicateEliminator(absdiff_distance(), cache_distance=False).run(
        relation, DEParams.size(k, c=c)
    )
    return relation, result


class TestExplainConsistency:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_explanations_agree_with_partition(self, values):
        relation, result = solve(values)
        ids = relation.ids()
        for a in ids[:6]:
            for b in ids[:6]:
                if a >= b:
                    continue
                explanation = explain_pair(result, a, b)
                assert explanation.grouped == result.partition.same_group(a, b)
                if explanation.grouped:
                    assert explanation.verdict.startswith("grouped")
                else:
                    assert not explanation.verdict.startswith("grouped")

    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_ng_values_echo_nn_relation(self, values):
        relation, result = solve(values)
        ids = relation.ids()
        if len(ids) < 2:
            return
        explanation = explain_pair(result, ids[0], ids[1])
        assert explanation.ng_a == result.nn_relation.get(ids[0]).ng
        assert explanation.ng_b == result.nn_relation.get(ids[1]).ng


class TestMergeAccounting:
    @settings(max_examples=30, deadline=None)
    @given(values_strategy)
    def test_counts_add_up(self, values):
        relation, result = solve(values)
        merged = merge_partition(relation, result.partition)
        assert len(merged.golden) == len(result.partition)
        assert merged.n_merged_away == len(relation) - len(result.partition)
        covered = sorted(
            rid for sources in merged.lineage.values() for rid in sources
        )
        assert covered == relation.ids()

    @settings(max_examples=30, deadline=None)
    @given(values_strategy)
    def test_golden_values_come_from_sources(self, values):
        relation, result = solve(values)
        merged = merge_partition(relation, result.partition)
        for golden_rid, sources in merged.lineage.items():
            golden_value = merged.golden.get(golden_rid).fields[0]
            source_values = {relation.get(rid).fields[0] for rid in sources}
            assert golden_value in source_values


class TestReviewInvariants:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_near_misses_never_overlap_groups(self, values):
        relation, result = solve(values, c=3.0)
        grouped_pairs = result.partition.duplicate_pairs()
        for candidate in near_miss_pairs(result, limit=50):
            assert tuple(candidate.members) not in grouped_pairs
            assert candidate.margin >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_fragile_groups_are_emitted_groups(self, values):
        relation, result = solve(values, c=3.0)
        emitted = set(result.partition.non_trivial_groups())
        for candidate in fragile_groups(result, limit=50):
            assert candidate.members in emitted
            assert 0.0 < candidate.margin


class TestMetricsSanity:
    @settings(max_examples=25, deadline=None)
    @given(values_strategy)
    def test_perfect_prediction_scores_perfectly(self, values):
        relation, result = solve(values)
        # Use the result itself as "gold": all metrics must be perfect.
        gold = GoldStandard()
        for label, group in enumerate(result.partition.groups):
            for rid in group:
                gold.add(rid, label)
        score = bcubed(result.partition, gold)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert variation_of_information(result.partition, gold) < 1e-9
