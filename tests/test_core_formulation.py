"""Tests for DEParams and cut specifications."""

import pytest

from repro.core.formulation import DEParams, DiameterCut, SizeCut


class TestCuts:
    def test_size_cut_validates(self):
        with pytest.raises(ValueError):
            SizeCut(0)

    def test_diameter_cut_validates(self):
        with pytest.raises(ValueError):
            DiameterCut(0.0)
        with pytest.raises(ValueError):
            DiameterCut(1.0)

    def test_str(self):
        assert str(SizeCut(5)) == "size<=5"
        assert str(DiameterCut(0.25)) == "diam<=0.25"


class TestDEParams:
    def test_size_constructor(self):
        params = DEParams.size(5, c=4.0)
        assert params.is_size_spec
        assert params.k == 5

    def test_diameter_constructor(self):
        params = DEParams.diameter(0.3, c=6.0, agg="avg")
        assert not params.is_size_spec
        assert params.theta == 0.3
        assert params.agg == "avg"

    def test_k_on_diameter_spec_raises(self):
        params = DEParams.diameter(0.3)
        with pytest.raises(AttributeError):
            _ = params.k

    def test_theta_on_size_spec_raises(self):
        params = DEParams.size(3)
        with pytest.raises(AttributeError):
            _ = params.theta

    def test_rejects_unknown_aggregation(self):
        with pytest.raises(ValueError, match="aggregation"):
            DEParams.size(3, agg="median")

    def test_rejects_small_c(self):
        # A duplicate pair already has ng = 2; c <= 1 admits nothing.
        with pytest.raises(ValueError, match="c must"):
            DEParams.size(3, c=1.0)

    def test_rejects_small_p(self):
        with pytest.raises(ValueError, match="p must"):
            DEParams.size(3, p=1.0)

    def test_paper_default_p_is_two(self):
        assert DEParams.size(3).p == 2.0

    def test_describe(self):
        assert "size<=3" in DEParams.size(3).describe()

    def test_frozen(self):
        params = DEParams.size(3)
        with pytest.raises(AttributeError):
            params.c = 9.0
