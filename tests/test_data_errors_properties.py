"""Property-based tests for the error model: robustness on any input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.errors import ErrorModel

texts = st.text(max_size=40)
nice_texts = st.text(
    alphabet="abcdefghij '.", min_size=1, max_size=40
).filter(lambda t: t.strip())


class TestOperationsNeverCrash:
    @given(texts, st.integers(0, 10))
    def test_corrupt_total_robustness(self, text, seed):
        model = ErrorModel(seed=seed)
        result = model.corrupt(text, n_errors=2)
        assert isinstance(result, str)

    @given(nice_texts, st.integers(0, 10))
    def test_every_operation_individually(self, text, seed):
        model = ErrorModel(seed=seed)
        for operation in model._op_funcs:
            result = operation(text)
            assert isinstance(result, str)

    @given(nice_texts)
    def test_typo_delete_shortens_or_noop(self, text):
        model = ErrorModel(seed=0)
        result = model.typo_delete(text)
        assert len(result) in (len(text), len(text) - 1)

    @given(nice_texts)
    def test_typo_insert_lengthens(self, text):
        model = ErrorModel(seed=0)
        assert len(model.typo_insert(text)) == len(text) + 1

    @given(nice_texts)
    def test_transpose_preserves_multiset(self, text):
        model = ErrorModel(seed=0)
        assert sorted(model.typo_transpose(text)) == sorted(text)

    @given(nice_texts)
    def test_swap_tokens_preserves_tokens(self, text):
        model = ErrorModel(seed=0)
        assert sorted(model.swap_tokens(text).split()) == sorted(text.split())

    @given(nice_texts, st.integers(0, 5))
    def test_determinism(self, text, seed):
        a = ErrorModel(seed=seed).corrupt(text, 3)
        b = ErrorModel(seed=seed).corrupt(text, 3)
        assert a == b

    @settings(max_examples=30)
    @given(
        st.lists(nice_texts, min_size=1, max_size=4).map(tuple),
        st.integers(0, 5),
    )
    def test_corrupt_fields_arity_preserved(self, fields, seed):
        model = ErrorModel(seed=seed)
        result = model.corrupt_fields(fields, n_errors=2)
        assert len(result) == len(fields)

    @given(nice_texts)
    def test_abbreviation_roundtrip_known_tokens(self, text):
        model = ErrorModel(seed=0)
        expanded = model.expand(model.abbreviate("acme corporation"))
        assert expanded == "acme corporation"
