"""Tests for fuzzy match similarity (the paper's fms function)."""

import pytest

from repro.data.schema import Record, Relation
from repro.distances.fms import FuzzyMatchDistance, directed_fuzzy_match_distance
from repro.distances.idf import IdfTable


def org_corpus():
    return Relation.from_strings(
        "orgs",
        [
            "microsoft corp",
            "microsft corporation",
            "mic corporation",
            "boeing corporation",
            "intel corporation",
            "apple incorporated",
        ],
    )


@pytest.fixture
def fms():
    d = FuzzyMatchDistance()
    d.prepare(org_corpus())
    return d


class TestDirectedFmd:
    def test_identical_token_lists(self):
        idf = IdfTable.from_relation(org_corpus())
        assert directed_fuzzy_match_distance(["a", "b"], ["a", "b"], idf) == 0.0

    def test_empty_source_and_target(self):
        idf = IdfTable.from_relation(org_corpus())
        assert directed_fuzzy_match_distance([], [], idf) == 0.0

    def test_empty_source_nonempty_target(self):
        idf = IdfTable.from_relation(org_corpus())
        assert directed_fuzzy_match_distance([], ["a"], idf) == 1.0

    def test_full_mismatch_near_one(self):
        idf = IdfTable.from_relation(org_corpus())
        d = directed_fuzzy_match_distance(["xxxx"], ["yyyy"], idf)
        assert d > 0.5

    def test_in_unit_interval(self):
        idf = IdfTable.from_relation(org_corpus())
        d = directed_fuzzy_match_distance(
            ["microsoft", "corp"], ["boeing", "corporation"], idf
        )
        assert 0.0 <= d <= 1.0


class TestFuzzyMatchDistance:
    def test_requires_prepare(self):
        d = FuzzyMatchDistance()
        with pytest.raises(RuntimeError, match="prepare"):
            d.distance(Record(0, ("a",)), Record(1, ("b",)))

    def test_paper_example_ordering(self, fms):
        """The motivating example from section 5.

        'microsoft corp' is closer to 'microsft corporation' than to
        'mic corporation' under fms, even though edit distance says the
        opposite.
        """
        relation = org_corpus()
        target = relation.get(0)        # microsoft corp
        typo = relation.get(1)          # microsft corporation
        truncated = relation.get(2)     # mic corporation
        assert fms.distance(target, typo) < fms.distance(target, truncated)

    def test_low_idf_suffix_changes_matter_little(self, fms):
        relation = org_corpus()
        target = relation.get(0)        # microsoft corp
        typo = relation.get(1)          # microsft corporation
        other_company = relation.get(3)  # boeing corporation
        assert fms.distance(target, typo) < fms.distance(typo, other_company)

    def test_symmetric(self, fms):
        relation = org_corpus()
        a, b = relation.get(0), relation.get(1)
        assert fms.distance(a, b) == pytest.approx(fms.distance(b, a))

    def test_identity(self, fms):
        relation = org_corpus()
        assert fms.distance(relation.get(0), relation.get(0)) == 0.0

    def test_unit_interval(self, fms):
        relation = org_corpus()
        records = list(relation)
        for a in records:
            for b in records:
                assert 0.0 <= fms.distance(a, b) <= 1.0

    def test_out_of_corpus_records(self, fms):
        a = Record(100, ("zzzz qqqq",))
        b = Record(101, ("zzzz qqqr",))
        assert fms.distance(a, b) < 0.4

    def test_empty_records(self, fms):
        assert fms.distance(Record(100, ("",)), Record(101, ("",))) == 0.0
        # Both directions are total transformations: insert everything
        # one way, delete everything the other.
        assert fms.distance(Record(100, ("",)), Record(101, ("abc",))) == pytest.approx(
            1.0
        )

    def test_insertion_factor_zero_ignores_extra_target_tokens(self):
        d = FuzzyMatchDistance(insertion_factor=0.0)
        d.prepare(org_corpus())
        idf = d.idf
        fmd = directed_fuzzy_match_distance(
            ["microsoft"], ["microsoft", "corporation"], idf, insertion_factor=0.0
        )
        assert fmd == 0.0


class TestFmsProperties:
    """Property-based checks on random out-of-corpus strings."""

    def _prepared(self):
        d = FuzzyMatchDistance()
        d.prepare(org_corpus())
        return d

    def test_symmetry_random(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        fms = self._prepared()
        words = st.text(alphabet="abcd ", max_size=18)

        @settings(max_examples=60, deadline=None)
        @given(words, words)
        def check(a, b):
            ra, rb = Record(900, (a,)), Record(901, (b,))
            assert fms.distance(ra, rb) == pytest.approx(fms.distance(rb, ra))

        check()

    def test_unit_interval_random(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        fms = self._prepared()
        words = st.text(alphabet="abcd ", max_size=18)

        @settings(max_examples=60, deadline=None)
        @given(words, words)
        def check(a, b):
            value = fms.distance(Record(900, (a,)), Record(901, (b,)))
            assert 0.0 <= value <= 1.0

        check()

    def test_identity_random(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        fms = self._prepared()
        words = st.text(alphabet="abcd ", max_size=18)

        @settings(max_examples=40, deadline=None)
        @given(words)
        def check(a):
            assert fms.distance(Record(900, (a,)), Record(901, (a,))) == 0.0

        check()
