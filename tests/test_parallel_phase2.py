"""Parity and bounded-memory tests for the partitioned Phase 2.

The partitioned CSPairs self-join and the component-sharded partitioner
are defined to be bit-identical to the sequential reference for any
worker count, pool kind, or source (in-memory rows, engine-resident
table, out-of-core spill).  These tests pin that contract, the
streaming partitioner's bounded residency (the 2-page-buffer edge
case), and the new ``HashIndex.probe_batch`` / auto-external
``order_by`` storage primitives.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.cspairs import (
    build_cs_pairs,
    build_cs_pairs_engine,
    cs_pairs_from_table,
    iter_cs_pairs,
    materialize_nn_reln,
)
from repro.core.formulation import DEParams
from repro.core.nn_phase import prepare_nn_lists
from repro.core.partitioner import (
    _balance_components,
    mutual_components,
    partition_records,
    partition_records_sharded,
)
from repro.index.bruteforce import BruteForceIndex
from repro.parallel.join import (
    ParallelCSJoinEngine,
    build_cs_pairs_engine_parallel,
    build_cs_pairs_parallel,
    merge_runs,
)
from repro.run.config import ConfigError, RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.run.stats import Phase2Stats
from repro.storage.engine import Engine

from .helpers import absdiff_distance, numbers_relation

WORKER_COUNTS = (1, 2, 4)
POOLS = ("thread", "process")

#: Clustered 1-D values: several duplicate groups of varying size plus
#: isolated singletons, so Phase 2 produces a non-trivial CSPairs
#: relation with several mutual-NN components.
VALUES = [
    10, 11, 12,
    40, 41,
    75,
    100, 101, 102, 103,
    160, 161,
    220,
    300, 301, 302,
    360, 361,
    430,
    500, 501,
    560, 561, 562,
    640,
    700, 701,
    760, 761, 762, 763,
    850,
    900, 901,
    960,
]


@pytest.fixture(scope="module")
def instance():
    relation = numbers_relation(VALUES)
    distance = absdiff_distance(scale=1000.0)
    params = DEParams.size(4, c=4.0)
    index = BruteForceIndex()
    index.build(relation, distance)
    nn = prepare_nn_lists(relation, index, params)
    reference = build_cs_pairs(nn, params)
    return relation, distance, params, nn, reference


def _engine_with_nn(nn, buffer_pages=64, page_capacity=8) -> Engine:
    engine = Engine(buffer_pages=buffer_pages, page_capacity=page_capacity)
    materialize_nn_reln(engine, nn)
    return engine


# ----------------------------------------------------------------------
# HashIndex.probe_batch
# ----------------------------------------------------------------------


class TestHashIndexProbeBatch:
    def test_batch_matches_single_probes(self, instance):
        _, _, _, nn, _ = instance
        engine = _engine_with_nn(nn)
        index = engine.hash_index(engine.table("NN_Reln"), "id")
        keys = [row[0] for row in nn.as_rows()[:5]] + [-1, 10_000]
        assert index.probe_batch(keys) == [index.get(key) for key in keys]

    def test_missing_keys_yield_empty_buckets(self, instance):
        _, _, _, nn, _ = instance
        engine = _engine_with_nn(nn)
        index = engine.hash_index(engine.table("NN_Reln"), "id")
        assert index.probe_batch([-5, -6]) == [(), ()]

    def test_probe_counter_counts_batched_keys(self, instance):
        _, _, _, nn, _ = instance
        engine = _engine_with_nn(nn)
        index = engine.hash_index(engine.table("NN_Reln"), "id")
        assert index.probes == 0
        index.probe_batch([1, 2, 3])
        index.probe(1)
        assert index.probes == 4


# ----------------------------------------------------------------------
# Join parity: every worker count × pool × source
# ----------------------------------------------------------------------


class TestJoinParity:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_in_memory_matches_sequential(self, instance, n_workers, pool):
        _, _, params, nn, reference = instance
        pairs = build_cs_pairs_parallel(
            nn, params, n_workers=n_workers, pool=pool
        )
        assert pairs == reference

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_engine_matches_sequential(self, instance, n_workers, pool):
        _, _, params, nn, reference = instance
        engine = _engine_with_nn(nn)
        table = build_cs_pairs_engine_parallel(
            engine, params, n_workers=n_workers, pool=pool
        )
        assert cs_pairs_from_table(table) == reference

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_spilled_runs_match_sequential(self, instance, n_workers, pool):
        _, _, params, nn, reference = instance
        engine = _engine_with_nn(nn, buffer_pages=3, page_capacity=4)
        table = build_cs_pairs_engine_parallel(
            engine, params, n_workers=n_workers, pool=pool, spill_runs=True
        )
        assert cs_pairs_from_table(table) == reference

    def test_engine_table_matches_sequential_engine_builder(self, instance):
        _, _, params, nn, reference = instance
        sequential = _engine_with_nn(nn)
        sequential_rows = list(
            build_cs_pairs_engine(sequential, params).scan()
        )
        parallel = _engine_with_nn(nn)
        parallel_rows = list(
            build_cs_pairs_engine_parallel(parallel, params, n_workers=2).scan()
        )
        assert parallel_rows == sequential_rows

    def test_odd_chunk_size_still_exact(self, instance):
        _, _, params, nn, reference = instance
        pairs = build_cs_pairs_parallel(
            nn, params, n_workers=2, chunk_size=3
        )
        assert pairs == reference

    def test_spill_drops_scratch_run_tables(self, instance):
        _, _, params, nn, _ = instance
        engine = _engine_with_nn(nn, buffer_pages=3, page_capacity=4)
        build_cs_pairs_engine_parallel(
            engine, params, n_workers=2, spill_runs=True
        )
        leftovers = [
            name for name in engine.catalog.names()
            if name.startswith("CSPairs__run")
        ]
        assert leftovers == []

    def test_merge_runs_handles_overlapping_runs(self):
        runs = [
            [(1, 2, 0, 0, (True,)), (5, 6, 0, 0, (True,))],
            [(1, 4, 0, 0, (True,)), (3, 4, 0, 0, (True,))],
        ]
        merged = list(merge_runs(runs))
        assert [row[:2] for row in merged] == [(1, 2), (1, 4), (3, 4), (5, 6)]

    def test_join_stats_accounting(self, instance):
        _, _, params, nn, reference = instance
        stats = Phase2Stats()
        build_cs_pairs_parallel(nn, params, n_workers=2, stats=stats)
        assert stats.join_workers == 2
        assert stats.join_pool == "thread"
        assert stats.pairs_emitted == len(reference)
        assert stats.n_join_chunks == len(stats.worker_runs)
        assert stats.rows_probed <= len(nn.as_rows())
        assert stats.probes == sum(
            run["probes"] for run in stats.worker_runs
        )
        assert stats.peak_run_rows == max(
            run["pairs_emitted"] for run in stats.worker_runs
        )

    def test_rejects_bad_pool_and_workers(self):
        with pytest.raises(ValueError):
            ParallelCSJoinEngine(n_workers=0)
        with pytest.raises(ValueError):
            ParallelCSJoinEngine(pool="fibers")


# ----------------------------------------------------------------------
# Partitioner: streaming consumption and component sharding
# ----------------------------------------------------------------------


class TestPartitionerParity:
    def test_streaming_iterator_matches_list_input(self, instance):
        relation, _, params, _, reference = instance
        from_list = partition_records(relation.ids(), reference, params)
        from_iter = partition_records(
            relation.ids(), iter(reference), params
        )
        assert from_list == from_iter

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("pool", POOLS)
    def test_sharded_matches_sequential(self, instance, n_workers, pool):
        relation, _, params, _, reference = instance
        sequential = partition_records(relation.ids(), reference, params)
        sharded = partition_records_sharded(
            relation.ids(), reference, params,
            n_workers=n_workers, pool=pool,
        )
        assert sharded == sequential

    def test_components_partition_the_rows(self, instance):
        _, _, _, _, reference = instance
        components = mutual_components(reference)
        flattened = [row for component in components for row in component]
        assert sorted(flattened, key=lambda r: (r.id1, r.id2)) == reference
        # Within a component, global row order is preserved.
        for component in components:
            assert component == sorted(
                component, key=lambda r: (r.id1, r.id2)
            )
        # Components are vertex-disjoint.
        seen: set[int] = set()
        for component in components:
            ids = {row.id1 for row in component} | {
                row.id2 for row in component
            }
            assert not (ids & seen)
            seen |= ids

    def test_groups_never_span_components(self, instance):
        relation, _, params, _, reference = instance
        components = mutual_components(reference)
        membership = {}
        for index, component in enumerate(components):
            for row in component:
                membership[row.id1] = index
                membership[row.id2] = index
        partition = partition_records(relation.ids(), reference, params)
        for group in partition.non_trivial_groups():
            owners = {membership[rid] for rid in group}
            assert len(owners) == 1

    def test_sharded_records_stats(self, instance):
        relation, _, params, _, reference = instance
        stats = Phase2Stats()
        partition_records_sharded(
            relation.ids(), reference, params, n_workers=2, stats=stats
        )
        assert stats.n_components >= 2
        assert stats.partition_shards == 2
        assert stats.peak_group_rows >= 1

    def test_sharded_rejects_bad_pool(self, instance):
        relation, _, params, _, reference = instance
        with pytest.raises(ValueError):
            partition_records_sharded(
                relation.ids(), reference, params, pool="fibers"
            )

    def test_empty_cs_pairs(self):
        relation = numbers_relation([0, 500, 999])
        params = DEParams.size(3, c=2.0)
        assert partition_records(
            relation.ids(), [], params
        ) == partition_records_sharded(relation.ids(), [], params)


class TestBalanceComponents:
    """The heap-based lightest-shard packer behind the sharded scan."""

    @staticmethod
    def _reference(components, n_shards):
        # The pre-heap greedy: linear scan for the lightest shard,
        # lowest index winning ties.  The heap must reproduce it
        # exactly — (load, index) tuples order the same way.
        shards = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for component in components:
            lightest = loads.index(min(loads))
            shards[lightest].append(component)
            loads[lightest] += len(component)
        return shards

    def test_matches_linear_scan_reference(self):
        rng = random.Random(13)
        components = [
            list(range(rng.randrange(1, 9))) for _ in range(200)
        ]
        for n_shards in (1, 2, 5, 16):
            assert _balance_components(components, n_shards) == self._reference(
                components, n_shards
            )

    def test_loads_balanced_within_largest_component(self):
        rng = random.Random(7)
        components = [[0] * rng.randrange(1, 30) for _ in range(500)]
        shards = _balance_components(components, 8)
        loads = [sum(len(c) for c in shard) for shard in shards]
        largest = max(len(c) for c in components)
        # Greedy lightest-first keeps the spread below one component.
        assert max(loads) - min(loads) <= largest

    def test_scales_past_the_linear_scan(self):
        # Micro-bench: 20k components over 512 shards is O(C log S)
        # for the heap vs O(C*S) for the scan it replaced.  The bound
        # is deliberately loose (CI boxes are noisy); the point is
        # that the heap path stays comfortably sub-quadratic.
        components = [[0] * ((i % 7) + 1) for i in range(20_000)]
        started = time.perf_counter()
        shards = _balance_components(components, 512)
        elapsed = time.perf_counter() - started
        assert sum(len(shard) for shard in shards) == len(components)
        assert elapsed < 2.0


# ----------------------------------------------------------------------
# Full-pipeline parity + verification on every execution shape
# ----------------------------------------------------------------------


def _run_config(relation, distance, params, config: RunConfig):
    index = BruteForceIndex()
    context = RunContext.create(config, distance=distance, index=index)
    return StagedPipeline(context).run(relation, params)


class TestPipelineParity:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("pool", POOLS)
    @pytest.mark.parametrize("source", ("memory", "engine", "spill"))
    def test_phase2_workers_verified_parity(
        self, instance, n_workers, pool, source
    ):
        relation, distance, params, _, _ = instance
        baseline = _run_config(
            relation, distance, params, RunConfig(verify=False)
        )
        config = RunConfig(
            phase2_workers=n_workers,
            phase2_pool=pool,
            use_engine=source in ("engine", "spill"),
            spill=source == "spill",
            buffer_pages=8 if source == "spill" else RunConfig.buffer_pages,
            verify="report",
        )
        result = _run_config(relation, distance, params, config)
        assert result.partition == baseline.partition
        assert result.verification is not None and result.verification.ok

    def test_phase2_stats_surface_in_run_stats(self, instance):
        relation, distance, params, _, reference = instance
        config = RunConfig(phase2_workers=2, use_engine=True)
        result = _run_config(relation, distance, params, config)
        phase2 = result.stats.phase2
        assert phase2.join_workers == 2
        assert phase2.pairs_emitted == len(reference)
        assert result.stats.n_cs_pairs == len(reference)
        payload = result.stats.to_dict()
        assert payload["phase2"]["pairs_emitted"] == len(reference)
        assert payload["phase2"]["partition_streamed"] is True


# ----------------------------------------------------------------------
# The 2-page-buffer edge case: bounded residency end to end
# ----------------------------------------------------------------------


class TestTwoPageBufferStreaming:
    def test_spilled_run_streams_cs_pairs(self, instance):
        relation, distance, params, _, reference = instance
        baseline = _run_config(
            relation, distance, params, RunConfig(verify=False)
        )
        config = RunConfig(
            use_engine=True,
            spill=True,
            buffer_pages=2,
            page_capacity=4,
        )
        index = BruteForceIndex()
        context = RunContext.create(config, distance=distance, index=index)
        result = StagedPipeline(context).run(relation, params)

        # Same answer as the fully in-memory path.
        assert result.partition == baseline.partition
        # The CSPairs row list was never materialized...
        assert result.cs_pairs is None
        phase2 = result.stats.phase2
        # ...the partitioner consumed the table as a stream...
        assert phase2.partition_streamed is True
        assert phase2.pairs_emitted == len(reference)
        # ...holding at most one anchor's rows at a time, which is far
        # smaller than the relation...
        assert 1 <= phase2.peak_group_rows < len(reference)
        assert phase2.peak_group_rows <= params.k
        # ...and every in-memory join run stayed a bounded slice (one
        # chunk's worth of anchors, each contributing < k pairs).
        pool_rows = 2 * 4
        chunk_anchors = max(8, pool_rows)
        assert phase2.peak_run_rows <= chunk_anchors * params.k
        # The tiny pool actually evicted: the table really lived on
        # "disk", not in the pool.
        assert result.stats.buffer is not None
        assert result.stats.buffer.evictions > 0

    def test_verifier_passes_on_two_page_run(self, instance):
        relation, distance, params, _, _ = instance
        config = RunConfig(
            use_engine=True,
            spill=True,
            buffer_pages=2,
            page_capacity=4,
            verify="report",
        )
        result = _run_config(relation, distance, params, config)
        assert result.verification is not None and result.verification.ok


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------


class TestPhase2Config:
    def test_round_trip(self):
        config = RunConfig(phase2_workers=4, phase2_pool="process")
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(phase2_workers=0)
        with pytest.raises(ConfigError):
            RunConfig(phase2_pool="fibers")

    def test_from_cli_args_maps_phase2_flags(self):
        import argparse

        args = argparse.Namespace(phase2_workers=3, phase2_pool="process")
        config = RunConfig.from_cli_args(args)
        assert config.phase2_workers == 3
        assert config.phase2_pool == "process"

    def test_describe_mentions_non_default_phase2(self):
        assert "phase2_workers=2" in RunConfig(phase2_workers=2).describe()


# ----------------------------------------------------------------------
# order_by: automatic external sort for oversized sources
# ----------------------------------------------------------------------


class TestOrderByAutoExternal:
    def test_large_source_sorts_externally_and_correctly(self):
        engine = Engine(buffer_pages=2, page_capacity=4)
        table = engine.create_table("t", ("key", "payload"))
        rows = [((37 * i) % 101, i) for i in range(80)]
        table.insert_many(rows)
        assert table.n_pages > engine.buffer.capacity
        out = engine.order_by("sorted", table, key=lambda row: row[0])
        assert list(out.scan()) == sorted(rows, key=lambda row: row[0])
        leftovers = [
            name for name in engine.catalog.names()
            if name.startswith("sorted__run")
        ]
        assert leftovers == []

    def test_small_source_still_sorts_in_memory(self):
        engine = Engine(buffer_pages=8, page_capacity=8)
        table = engine.create_table("t", ("key",))
        table.insert_many([(3,), (1,), (2,)])
        out = engine.order_by("sorted", table, key=lambda row: row[0])
        assert list(out.scan()) == [(1,), (2,), (3,)]


# ----------------------------------------------------------------------
# iter_cs_pairs
# ----------------------------------------------------------------------


def test_iter_cs_pairs_streams_table(instance):
    _, _, params, nn, reference = instance
    engine = _engine_with_nn(nn)
    table = build_cs_pairs_engine(engine, params)
    iterator = iter_cs_pairs(table)
    assert next(iterator) == reference[0]
    assert [reference[0]] + list(iterator) == reference


# ----------------------------------------------------------------------
# the bench harness and its --check gate
# ----------------------------------------------------------------------


class TestBenchPhase2:
    def test_payload_parity_and_clean_gate(self):
        from repro.eval.bench_phase2 import (
            check_phase2_payload,
            phase2_table,
            run_phase2_bench,
        )

        payload = run_phase2_bench(
            entities=12, workers=(1, 2), repeats=1, distance="edit",
            buffer_pages=16, page_capacity=8, spill_buffer_pages=2,
        )
        assert payload["repeats"] == 1
        assert [run["pairs"] for run in payload["runs"]].count(
            payload["runs"][0]["pairs"]
        ) == len(payload["runs"])
        for source in ("memory", "engine", "spill"):
            assert payload["parity"][source] is True
        assert payload["parity"]["cross_source"] is True
        assert payload["partition"]["parity"] is True
        failures = check_phase2_payload(payload)
        assert failures["checksum"] == []
        assert "phase2 join" in phase2_table(payload)

    def test_gate_separates_checksum_from_throughput(self):
        from repro.eval.bench_phase2 import check_phase2_payload

        def run(source, mode, workers, throughput):
            return {
                "source": source, "mode": mode, "workers": workers,
                "throughput": throughput,
            }

        payload = {
            "parity": {
                "memory": True, "engine": False,
                "spill": True, "cross_source": False,
            },
            "partition": {"parity": True},
            "runs": [
                run("memory", "partitioned", 1, 100.0),
                run("memory", "partitioned", 2, 20.0),
                run("engine", "partitioned", 1, 100.0),
                run("engine", "partitioned", 2, 90.0),
                run("spill", "partitioned", 1, 0.0),
            ],
        }
        failures = check_phase2_payload(payload)
        assert sorted(failures["checksum"]) == [
            "CSPairs checksum mismatch: cross_source",
            "CSPairs checksum mismatch: engine",
        ]
        assert failures["throughput"] == [
            "memory @ 2 workers: throughput 0.20x of 1-worker (< 0.5x)"
        ]
        relaxed = check_phase2_payload(payload, min_relative_throughput=0.1)
        assert relaxed["throughput"] == []
