"""Tier-1 smoke test for the Phase-1 scalability benchmark.

The full matrix (n >= 2000, the 2x speedup assertion) lives in
``benchmarks/test_bench_phase1_parallel.py``; this smoke keeps the
harness itself — payload shape, parity checks, JSON artifact, table
rendering — exercised on every test run with a relation small enough
to stay fast.
"""

import json

from repro.eval.bench_phase1 import (
    index_matrix_table,
    phase1_table,
    run_index_matrix,
    run_phase1_bench,
    write_phase1_json,
)


class TestBenchPhase1Smoke:
    def test_small_matrix_end_to_end(self, tmp_path):
        payload = run_phase1_bench(
            sizes=(30,), workers=(1, 2), dataset="org", distance="edit"
        )

        # One per-query baseline plus one batch run per worker count.
        assert [run["mode"] for run in payload["runs"]] == [
            "per-query",
            "batch",
            "batch",
        ]
        assert all(run["lookups"] == run["n"] for run in payload["runs"])
        assert all(run["throughput"] > 0.0 for run in payload["runs"])

        # All execution modes computed the identical NN relation.
        assert payload["parity"] and all(payload["parity"].values())
        assert len({run["checksum"] for run in payload["runs"]}) == 1

        # The batch path must beat per-query even at toy sizes; assert
        # only a sane lower bound here (the benchmark asserts 2x).
        (speedup,) = payload["speedup_batch_vs_per_query"].values()
        assert speedup > 0.5

        # The symmetry savings are architectural, not timing-dependent:
        # batch evaluates at most ~a quarter of the per-query pairs.
        per_query = payload["runs"][0]["evaluations"]
        batch = payload["runs"][1]["evaluations"]
        assert batch * 3 < per_query

        path = write_phase1_json(payload, tmp_path / "BENCH_phase1.json")
        assert json.loads(path.read_text())["benchmark"] == "phase1_parallel"

        table = phase1_table(payload)
        assert "per-query" in table and "batch" in table

        # No matrix requested: the payload records that explicitly.
        assert payload["index_matrix"] is None


class TestIndexMatrixSmoke:
    def test_matrix_rows_and_skips(self):
        matrix = run_index_matrix(
            ["minhash", "bktree"],
            n_entities=25,
            distance="cosine",
            recall_sample=10,
        )
        rows = {row["index"]: row for row in matrix["rows"]}
        assert set(rows) == {"brute", "minhash", "bktree"}

        # The BK-tree cannot index cosine distance: a skipped row, not
        # a crashed matrix.
        assert "EditDistance" in rows["bktree"]["skipped"]

        brute = rows["brute"]
        assert brute["recall"]["mean_recall"] == 1.0
        assert brute["evaluations_ratio_vs_brute"] == 1.0
        assert brute["evaluations_pruned"] == 0

        minhash = rows["minhash"]
        assert minhash["candidates_generated"] > 0
        assert 0.0 <= minhash["recall"]["mean_recall"] <= 1.0
        assert minhash["total_evaluations"] == (
            minhash["evaluations"] + minhash["build_evaluations"]
        )

        table = index_matrix_table(matrix)
        assert "minhash" in table and "skipped" in table
