"""Tests for the paged storage substrate (pages, buffer, tables, engine)."""

import pytest

from repro.index.cache import PagedPostingStore
from repro.storage.buffer import BufferPool
from repro.storage.engine import Engine
from repro.storage.pages import DiskManager, Page


class TestPages:
    def test_allocate_sequential_ids(self):
        disk = DiskManager()
        assert disk.allocate().page_id == 0
        assert disk.allocate().page_id == 1

    def test_page_capacity(self):
        page = Page(0, capacity=2)
        page.append("a")
        page.append("b")
        assert page.full
        with pytest.raises(ValueError):
            page.append("c")

    def test_append_marks_dirty(self):
        page = Page(0)
        assert not page.dirty
        page.append("x")
        assert page.dirty

    def test_allocate_run_splits_across_pages(self):
        disk = DiskManager(page_capacity=3)
        page_ids = disk.allocate_run(list(range(8)))
        assert len(page_ids) == 3
        items = [item for pid in page_ids for item in disk.read(pid).items]
        assert items == list(range(8))

    def test_allocate_run_empty(self):
        disk = DiskManager()
        page_ids = disk.allocate_run([])
        assert len(page_ids) == 1

    def test_read_counts_physical_reads(self):
        disk = DiskManager()
        page = disk.allocate()
        disk.read(page.page_id)
        disk.read(page.page_id)
        assert disk.physical_reads == 2

    def test_io_stall_scales_with_read_cost(self):
        disk = DiskManager(read_cost=2.5)
        page = disk.allocate()
        disk.read(page.page_id)
        assert disk.io_stall == 2.5


class TestBufferPool:
    def test_miss_then_hit(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity=2)
        pool.get(page.page_id)
        pool.get(page.page_id)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio == 0.5

    def test_lru_eviction(self):
        disk = DiskManager()
        pages = [disk.allocate() for _ in range(3)]
        pool = BufferPool(disk, capacity=2)
        pool.get(pages[0].page_id)
        pool.get(pages[1].page_id)
        pool.get(pages[2].page_id)  # evicts page 0
        assert not pool.resident(pages[0].page_id)
        assert pool.resident(pages[1].page_id)
        assert pool.stats.evictions == 1

    def test_access_refreshes_lru_position(self):
        disk = DiskManager()
        pages = [disk.allocate() for _ in range(3)]
        pool = BufferPool(disk, capacity=2)
        pool.get(pages[0].page_id)
        pool.get(pages[1].page_id)
        pool.get(pages[0].page_id)  # refresh 0
        pool.get(pages[2].page_id)  # evicts 1, not 0
        assert pool.resident(pages[0].page_id)
        assert not pool.resident(pages[1].page_id)

    def test_eviction_writes_back_dirty_pages(self):
        disk = DiskManager()
        pages = [disk.allocate() for _ in range(2)]
        pool = BufferPool(disk, capacity=1)
        frame = pool.get(pages[0].page_id)
        frame.append("data")
        pool.get(pages[1].page_id)
        assert disk.physical_writes == 1
        assert not pages[0].dirty

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=0)

    def test_clear_flushes(self):
        disk = DiskManager()
        page = disk.allocate()
        pool = BufferPool(disk, capacity=2)
        pool.get(page.page_id).append("x")
        pool.clear()
        assert disk.physical_writes == 1
        assert len(pool) == 0

    def test_hit_ratio_zero_when_untouched(self):
        pool = BufferPool(DiskManager(), capacity=1)
        assert pool.stats.hit_ratio == 0.0


class TestHeapTable:
    def test_insert_and_scan(self):
        engine = Engine()
        table = engine.create_table("t", ("a", "b"))
        table.insert(("x", 1))
        table.insert(("y", 2))
        assert table.rows() == [("x", 1), ("y", 2)]

    def test_arity_check(self):
        engine = Engine()
        table = engine.create_table("t", ("a", "b"))
        with pytest.raises(ValueError, match="arity"):
            table.insert(("only-one",))

    def test_spills_to_multiple_pages(self):
        engine = Engine(page_capacity=4)
        table = engine.create_table("t", ("a",))
        table.insert_many((i,) for i in range(10))
        assert table.n_pages == 3
        assert len(table.rows()) == 10

    def test_scan_where(self):
        engine = Engine()
        table = engine.create_table("t", ("a",))
        table.insert_many([(i,) for i in range(5)])
        assert list(table.scan_where(lambda r: r[0] % 2 == 0)) == [(0,), (2,), (4,)]

    def test_column_index(self):
        engine = Engine()
        table = engine.create_table("t", ("a", "b"))
        assert table.column_index("b") == 1
        with pytest.raises(KeyError):
            table.column_index("zzz")

    def test_scans_go_through_buffer(self):
        engine = Engine(page_capacity=2)
        table = engine.create_table("t", ("a",))
        table.insert_many([(i,) for i in range(6)])
        engine.reset_stats()
        table.rows()
        assert engine.buffer.stats.accesses >= 3


class TestCatalog:
    def test_create_and_get(self):
        engine = Engine()
        engine.create_table("t", ("a",))
        assert engine.table("t").schema == ("a",)

    def test_duplicate_create_rejected(self):
        engine = Engine()
        engine.create_table("t", ("a",))
        with pytest.raises(ValueError, match="exists"):
            engine.create_table("t", ("a",))

    def test_replace(self):
        engine = Engine()
        engine.create_table("t", ("a",)).insert(("x",))
        engine.create_table("t", ("a",), replace=True)
        assert engine.table("t").n_rows == 0

    def test_drop(self):
        engine = Engine()
        engine.create_table("t", ("a",))
        engine.catalog.drop_table("t")
        with pytest.raises(KeyError):
            engine.table("t")

    def test_names(self):
        engine = Engine()
        engine.create_table("b", ("x",))
        engine.create_table("a", ("x",))
        assert engine.catalog.names() == ["a", "b"]


class TestEngineOperators:
    def test_select_into(self):
        engine = Engine()
        src = engine.create_table("src", ("a",))
        src.insert_many([(i,) for i in range(6)])
        out = engine.select_into(
            "out", src, predicate=lambda r: r[0] > 2, project=lambda r: (r[0] * 10,)
        )
        assert out.rows() == [(30,), (40,), (50,)]

    def test_hash_index(self):
        engine = Engine()
        src = engine.create_table("src", ("k", "v"))
        src.insert_many([("a", 1), ("b", 2), ("a", 3)])
        index = engine.hash_index(src, "k")
        assert sorted(row[1] for row in index["a"]) == [1, 3]

    def test_index_join(self):
        engine = Engine()
        left = engine.create_table("left", ("id", "ref"))
        left.insert_many([(1, "x"), (2, "y")])
        right = engine.create_table("right", ("key", "val"))
        right.insert_many([("x", 10), ("y", 20), ("z", 30)])
        index = engine.hash_index(right, "key")
        out = engine.index_join(
            "joined",
            ("id", "val"),
            left,
            probe_keys=lambda row: [row[1]],
            index=index,
            on=lambda lhs, rhs: True,
            project=lambda lhs, rhs: (lhs[0], rhs[1]),
        )
        assert sorted(out.rows()) == [(1, 10), (2, 20)]

    def test_order_by(self):
        engine = Engine()
        src = engine.create_table("src", ("a",))
        src.insert_many([(3,), (1,), (2,)])
        out = engine.order_by("sorted", src, key=lambda r: r[0])
        assert out.rows() == [(1,), (2,), (3,)]

    def test_group_iter(self):
        engine = Engine()
        src = engine.create_table("src", ("k", "v"))
        src.insert_many([("a", 1), ("a", 2), ("b", 3)])
        groups = list(Engine.group_iter(src, key=lambda r: r[0]))
        assert groups == [("a", [("a", 1), ("a", 2)]), ("b", [("b", 3)])]

    def test_group_iter_empty(self):
        engine = Engine()
        src = engine.create_table("src", ("k",))
        assert list(Engine.group_iter(src, key=lambda r: r[0])) == []


class TestPagedPostingStore:
    def test_put_get_roundtrip(self):
        pool = BufferPool(DiskManager(page_capacity=4), capacity=8)
        store = PagedPostingStore(pool)
        store.put("gram", [1, 2, 3, 4, 5, 6])
        assert store.get("gram") == [1, 2, 3, 4, 5, 6]

    def test_missing_key(self):
        pool = BufferPool(DiskManager(), capacity=2)
        store = PagedPostingStore(pool)
        assert store.get("nope") == []

    def test_duplicate_put_rejected(self):
        pool = BufferPool(DiskManager(), capacity=2)
        store = PagedPostingStore(pool)
        store.put("k", [1])
        with pytest.raises(ValueError):
            store.put("k", [2])

    def test_small_lists_share_pages(self):
        disk = DiskManager(page_capacity=8)
        pool = BufferPool(disk, capacity=8)
        store = PagedPostingStore(pool)
        store.put("a", [1, 2])
        store.put("b", [3, 4])
        # Both fit on the first page.
        assert disk.n_pages == 1
        assert store.get("a") == [1, 2]
        assert store.get("b") == [3, 4]

    def test_reads_counted_by_buffer(self):
        disk = DiskManager(page_capacity=2)
        pool = BufferPool(disk, capacity=4)
        store = PagedPostingStore(pool)
        store.put("k", [1, 2, 3, 4, 5])
        pool.reset_stats()
        store.get("k")
        assert pool.stats.accesses == 3  # ceil(5 / 2) pages
