"""Tests for the approximate indexes (q-gram inverted, MinHash)."""

import pytest

from repro.data.schema import Relation
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance
from repro.distances.jaccard import TokenJaccardDistance
from repro.index.bruteforce import BruteForceIndex
from repro.index.inverted import QgramInvertedIndex
from repro.index.minhash import MinHashIndex
from repro.storage.buffer import BufferPool
from repro.storage.pages import DiskManager

NAMES = [
    "cascade systems corporation",
    "cascade systems corp",
    "summit logistics incorporated",
    "summit logistic incorporated",
    "pioneer foods company",
    "pioneer food company",
    "evergreen consulting group",
    "evergreen consulting",
    "harbor analytics limited",
    "granite manufacturing",
    "sterling partners",
    "beacon holdings",
]


@pytest.fixture
def relation():
    return Relation.from_strings("orgs", NAMES)


class TestQgramInverted:
    def test_finds_obvious_duplicates(self, relation):
        idx = QgramInvertedIndex()
        idx.build(relation, CachedDistance(EditDistance()))
        hits = idx.knn(relation.get(0), 1)
        assert hits[0].rid == 1

    def test_top1_agreement_with_bruteforce(self, relation):
        idx = QgramInvertedIndex()
        idx.build(relation, CachedDistance(EditDistance()))
        ref = BruteForceIndex()
        ref.build(relation, CachedDistance(EditDistance()))
        agree = sum(
            idx.knn(r, 1)[0].rid == ref.knn(r, 1)[0].rid for r in relation
        )
        assert agree == len(relation)

    def test_within_returns_only_in_radius(self, relation):
        idx = QgramInvertedIndex()
        idx.build(relation, CachedDistance(EditDistance()))
        for hit in idx.within(relation.get(0), 0.3):
            assert hit.distance < 0.3

    def test_exhaustive_fallback_fills_short_lists(self):
        # Two clusters with no shared q-grams: fallback must still
        # produce k neighbors.
        relation = Relation.from_strings("r", ["aaaa", "aaab", "zzzz", "zzzy"])
        idx = QgramInvertedIndex(exhaustive_fallback=True)
        idx.build(relation, EditDistance())
        assert len(idx.knn(relation.get(0), 3)) == 3

    def test_no_fallback_truncates(self):
        relation = Relation.from_strings("r", ["aaaa", "aaab", "zzzz", "zzzy"])
        idx = QgramInvertedIndex(exhaustive_fallback=False)
        idx.build(relation, EditDistance())
        assert len(idx.knn(relation.get(0), 3)) < 3

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QgramInvertedIndex(q=0)

    def test_paged_postings_hit_buffer(self, relation):
        disk = DiskManager(page_capacity=8)
        pool = BufferPool(disk, capacity=64)
        idx = QgramInvertedIndex(buffer_pool=pool)
        idx.build(relation, CachedDistance(EditDistance()))
        pool.reset_stats()
        idx.knn(relation.get(0), 3)
        assert pool.stats.accesses > 0

    def test_paged_results_match_unpaged(self, relation):
        disk = DiskManager(page_capacity=8)
        pool = BufferPool(disk, capacity=64)
        paged = QgramInvertedIndex(buffer_pool=pool)
        paged.build(relation, CachedDistance(EditDistance()))
        plain = QgramInvertedIndex()
        plain.build(relation, CachedDistance(EditDistance()))
        for record in relation:
            assert [n.rid for n in paged.knn(record, 4)] == [
                n.rid for n in plain.knn(record, 4)
            ]


class TestMinHash:
    def test_finds_obvious_duplicates(self, relation):
        idx = MinHashIndex()
        idx.build(relation, CachedDistance(TokenJaccardDistance()))
        hits = idx.knn(relation.get(2), 1)
        assert hits[0].rid == 3

    def test_signature_deterministic(self, relation):
        a = MinHashIndex()
        a.build(relation, TokenJaccardDistance())
        b = MinHashIndex()
        b.build(relation, TokenJaccardDistance())
        assert a._signatures == b._signatures

    def test_rejects_bad_band_config(self):
        with pytest.raises(ValueError):
            MinHashIndex(n_hashes=10, n_bands=3)

    def test_qgram_mode_robust_to_typos(self):
        relation = Relation.from_strings("r", ["microsoft", "microsft", "boeing", "intel"])
        idx = MinHashIndex(use_qgrams=True, q=2)
        idx.build(relation, CachedDistance(EditDistance()))
        hits = idx.knn(relation.get(0), 1)
        assert hits[0].rid == 1

    def test_within_radius_semantics(self, relation):
        idx = MinHashIndex()
        idx.build(relation, CachedDistance(TokenJaccardDistance()))
        for hit in idx.within(relation.get(0), 0.5):
            assert hit.distance < 0.5

    def test_fallback_fills_k(self, relation):
        idx = MinHashIndex(exhaustive_fallback=True)
        idx.build(relation, CachedDistance(TokenJaccardDistance()))
        assert len(idx.knn(relation.get(0), 6)) == 6

    def test_empty_token_records(self):
        relation = Relation.from_strings("r", ["", "", "abc"])
        idx = MinHashIndex()
        idx.build(relation, CachedDistance(TokenJaccardDistance()))
        hits = idx.knn(relation.get(0), 2)
        assert len(hits) == 2
