"""Tests for the BK-tree index: must agree exactly with brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Relation
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex

WORDS = [
    "golden dragon",
    "golden dragon express",
    "jade palace",
    "jade place",
    "little bistro",
    "litle bistro",
    "royal kitchen",
    "royal kitchn",
    "blue table",
    "red table",
    "urban grill",
    "the urban grill",
]


@pytest.fixture
def built():
    relation = Relation.from_strings("words", WORDS)
    bk = BKTreeIndex()
    bk.build(relation, EditDistance())
    ref = BruteForceIndex()
    ref.build(relation, CachedDistance(EditDistance()))
    return relation, bk, ref


class TestExactness:
    def test_knn_matches_bruteforce(self, built):
        relation, bk, ref = built
        for record in relation:
            for k in (1, 3, 5):
                got = [(n.rid, pytest.approx(n.distance)) for n in bk.knn(record, k)]
                want = [(n.rid, pytest.approx(n.distance)) for n in ref.knn(record, k)]
                assert got == want, f"record {record.rid}, k={k}"

    def test_within_matches_bruteforce(self, built):
        relation, bk, ref = built
        for record in relation:
            for radius in (0.1, 0.3, 0.5):
                got = [n.rid for n in bk.within(record, radius)]
                want = [n.rid for n in ref.within(record, radius)]
                assert got == want

    def test_within_inclusive(self, built):
        relation, bk, ref = built
        record = relation.get(0)
        radius = ref.knn(record, 1)[0].distance
        strict = {n.rid for n in bk.within(record, radius)}
        inclusive = {n.rid for n in bk.within(record, radius, inclusive=True)}
        assert strict <= inclusive
        assert inclusive == {n.rid for n in ref.within(record, radius, inclusive=True)}

    def test_ng_matches_bruteforce(self, built):
        relation, bk, ref = built
        for record in relation:
            assert bk.neighborhood_growth(record) == ref.neighborhood_growth(record)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=8),
            min_size=2,
            max_size=12,
            unique=True,
        )
    )
    def test_knn_matches_bruteforce_random(self, words):
        relation = Relation.from_strings("rand", words)
        bk = BKTreeIndex()
        bk.build(relation, EditDistance())
        ref = BruteForceIndex()
        ref.build(relation, EditDistance())
        for record in relation:
            got = [n.rid for n in bk.knn(record, 3)]
            want = [n.rid for n in ref.knn(record, 3)]
            assert got == want


class TestConstraints:
    def test_rejects_non_edit_distance(self):
        from repro.distances.jaccard import TokenJaccardDistance

        relation = Relation.from_strings("r", ["a", "b"])
        bk = BKTreeIndex()
        with pytest.raises(TypeError, match="EditDistance"):
            bk.build(relation, TokenJaccardDistance())

    def test_rejects_damerau(self):
        relation = Relation.from_strings("r", ["a", "b"])
        bk = BKTreeIndex()
        with pytest.raises(ValueError, match="metric"):
            bk.build(relation, EditDistance(damerau=True))

    def test_duplicate_texts_share_node(self):
        relation = Relation.from_strings("r", ["same", "same", "other"])
        bk = BKTreeIndex()
        bk.build(relation, EditDistance())
        hits = bk.knn(relation.get(0), 2)
        assert hits[0].rid == 1
        assert hits[0].distance == 0.0

    def test_k_zero(self):
        relation = Relation.from_strings("r", ["a", "b"])
        bk = BKTreeIndex()
        bk.build(relation, EditDistance())
        assert bk.knn(relation.get(0), 0) == []

    def test_singleton_relation(self):
        relation = Relation.from_strings("r", ["only"])
        bk = BKTreeIndex()
        bk.build(relation, EditDistance())
        assert bk.knn(relation.get(0), 3) == []
        assert bk.neighborhood_growth(relation.get(0)) == 1
