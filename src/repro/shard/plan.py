"""Shard planning: blocking by MinHash LSH bands.

A :class:`ShardPlan` splits the relation's rids into ``n_shards``
member sets so that records likely to be near duplicates land on the
same shard.  The blocking signal is the LSH band bucket — two records
sharing at least one band key over a 64-hash MinHash signature (the
band-key machinery of :class:`~repro.index.minhash.MinHashIndex` and
:class:`~repro.index.postings.PersistentMinHashPostings`) are
*candidates*, so the planner:

1. signs every record once and buckets rids by ``(band, key)``;
2. union-finds the buckets into **LSH components** — the transitive
   closure of candidacy, the unit that is never split voluntarily;
3. packs components onto the currently lightest shard (size-descending,
   min-rid tiebreak — the same deterministic heap rule Phase 2's
   component balancer uses);
4. splits only components larger than the per-shard capacity into
   consecutive ascending-rid chunks, prepending each chunk after the
   first with the trailing ``overlap`` fraction of its predecessor —
   the deterministic overlap rule that keeps neighboring rids of a
   split component co-resident somewhere.

The plan records its own **recall**: the fraction of LSH candidate
pairs that end up co-resident in at least one shard.  Components that
were never split contribute only co-resident pairs, so recall is 1.0
unless a component outgrew a shard; the recorded value is what
``bench-scale --min-recall`` gates.

Correctness never depends on this recall.  The sharded runner queries
the *global* index from every shard, so each NN entry is exact no
matter where its rid lives; the plan's recall only decides how much
cross-shard work the merge step has to reconstruct.

**Why 8 bands of 8 rows, not the index's 16 x 4.**  Banding tunes the
LSH S-curve threshold ``(1/b)**(1/r)``: 16 bands of 4 rows fire
around Jaccard ~0.5 — right for an index's *candidate generation*
(cheap to verify, misses nothing), wrong for *blocking*, where every
collision welds records into one transitive component.  On the Org
generator's finite vocabulary that threshold saturates: at n ≈ 106k,
16 x 4 banding fuses the whole relation into one giant component that
must be split across shards (measured co-residency recall 0.326),
while 8 bands of 8 rows (threshold ~0.77, the near-duplicate regime)
yields ~51k small components that pack whole — recall 1.000 with
perfectly balanced shards on the same input.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.constraints import plan_blocks
from repro.data.schema import Relation
from repro.distances.tokens import tokenize
from repro.index.signatures import (
    RelationSignatures,
    SignatureFactory,
    group_band_buckets,
)

__all__ = ["ShardPlan", "plan_constraint_blocks", "plan_shards"]

#: Buckets larger than this are still unioned into one component but
#: excluded from pair-level recall accounting (their pair count is
#: quadratic; membership of one bucket already forces co-residency
#: decisions at the component level).
_MAX_BUCKET_PAIR_ENUM = 512


@dataclass(frozen=True)
class ShardPlan:
    """An immutable assignment of rids to (possibly overlapping) shards."""

    n_shards: int
    overlap: float
    #: Per-shard sorted member rids.  A rid may appear on several
    #: shards (the overlap rule); every rid appears on at least one.
    members: tuple[tuple[int, ...], ...]
    #: Fraction of LSH candidate pairs co-resident in >= 1 shard.
    recall: float
    n_candidate_pairs: int
    n_coresident_pairs: int
    n_components: int
    #: Components larger than the per-shard capacity, split into chunks.
    n_split_components: int
    #: Wall time the planner spent signing the relation; 0.0 when the
    #: index's signature batch was reused (or no signing was needed).
    sign_seconds: float = 0.0

    @classmethod
    def from_members(
        cls,
        members: Sequence[Sequence[int]],
        overlap: float = 0.0,
    ) -> "ShardPlan":
        """Build a plan from explicit member sets (tests, custom blocking).

        No LSH accounting is available, so the plan reports zero
        candidate pairs and recall 1.0 by convention.
        """
        shards = tuple(tuple(sorted(set(shard))) for shard in members)
        return cls(
            n_shards=len(shards),
            overlap=overlap,
            members=shards,
            recall=1.0,
            n_candidate_pairs=0,
            n_coresident_pairs=0,
            n_components=0,
            n_split_components=0,
        )

    def shards_of(self, rid: int) -> tuple[int, ...]:
        """All shard ids holding ``rid`` (ascending)."""
        return tuple(
            idx for idx, shard in enumerate(self.members) if rid in self._sets[idx]
        )

    def co_resident(self, a: int, b: int) -> bool:
        """True when some shard holds both rids."""
        return any(a in s and b in s for s in self._sets)

    @property
    def _sets(self) -> tuple[frozenset, ...]:
        sets = getattr(self, "_member_sets", None)
        if sets is None:
            sets = tuple(frozenset(shard) for shard in self.members)
            object.__setattr__(self, "_member_sets", sets)
        return sets

    def to_dict(self) -> dict:
        """Telemetry view for ``RunStats`` / bench payloads."""
        return {
            "n_shards": self.n_shards,
            "overlap": self.overlap,
            "shard_sizes": [len(shard) for shard in self.members],
            "recall": self.recall,
            "n_candidate_pairs": self.n_candidate_pairs,
            "n_coresident_pairs": self.n_coresident_pairs,
            "n_components": self.n_components,
            "n_split_components": self.n_split_components,
            "sign_seconds": self.sign_seconds,
        }


def _lsh_components(
    relation: Relation,
    n_hashes: int,
    n_bands: int,
    signatures: RelationSignatures | None = None,
) -> tuple[list[list[int]], list[set[tuple[int, int]]], int, float]:
    """Union-find rids over LSH band buckets.

    Returns ``(components, component_pairs, n_skipped_buckets,
    sign_seconds)`` with components sorted internally by rid and
    ordered by (size desc, min rid asc); ``component_pairs[i]`` is the
    deduped set of bucket-co-occurrence pairs whose endpoints lie in
    component ``i``.

    ``signatures`` (an index's build output) is reused when it covers
    exactly this relation at this signature width — the planner then
    hashes nothing at all; otherwise the columnar
    :class:`~repro.index.signatures.SignatureFactory` signs the
    relation once, timed as ``sign_seconds``.  The component structure
    is independent of which route signed: union-find components do not
    depend on bucket iteration order, and both routes produce the very
    same signatures.
    """
    ids = relation.ids()
    parent: dict[int, int] = {rid: rid for rid in ids}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    sign_seconds = 0.0
    if signatures is None or not signatures.matches(ids, n_hashes):
        factory = SignatureFactory(n_hashes, backend="auto")
        signatures = factory.sign_records(
            ids, lambda rid: tokenize(relation.get(rid).text())
        )
        sign_seconds = sum(signatures.timings.values())
    buckets = group_band_buckets(signatures, n_bands).buckets

    pair_buckets: list[list[int]] = []
    n_skipped = 0
    for bucket in buckets.values():
        if len(bucket) < 2:
            continue
        first = bucket[0]
        for other in bucket[1:]:
            ra, rb = find(first), find(other)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        if len(bucket) <= _MAX_BUCKET_PAIR_ENUM:
            pair_buckets.append(bucket)
        else:
            n_skipped += 1

    grouped: dict[int, list[int]] = {}
    for rid in ids:
        grouped.setdefault(find(rid), []).append(rid)
    components = sorted(
        (sorted(component) for component in grouped.values()),
        key=lambda c: (-len(c), c[0]),
    )

    root_to_idx = {component[0]: idx for idx, component in enumerate(components)}
    component_pairs: list[set[tuple[int, int]]] = [set() for _ in components]
    for bucket in pair_buckets:
        idx = root_to_idx[find(bucket[0])]
        pairs = component_pairs[idx]
        ordered = sorted(set(bucket))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pairs.add((a, b))
    return components, component_pairs, n_skipped, sign_seconds


def _split_component(
    component: Sequence[int], cap: int, overlap: float
) -> list[list[int]]:
    """Split an oversized component into overlapping ascending chunks."""
    ov = max(1, round(overlap * cap)) if overlap > 0 else 0
    chunks: list[list[int]] = []
    for start in range(0, len(component), cap):
        chunk = list(component[start : start + cap])
        if chunks and ov:
            chunk = list(chunks[-1][-ov:]) + chunk
        chunks.append(chunk)
    return chunks


def plan_constraint_blocks(relation: Relation, constraints) -> ShardPlan:
    """Plan shards from hard-constraint equivalence blocks.

    Unlike :func:`plan_shards`, the blocking signal here is *semantic*:
    :func:`repro.core.constraints.plan_blocks` partitions the relation
    into the equivalence classes of the hard ``BlockKey`` /
    ``TimeWindow`` constraints, and each block becomes one shard.
    Blocks are disjoint (overlap 0), so the merge is a concatenation.

    Co-residency accounting records the plan's pruning power rather
    than a recall deficit: ``n_candidate_pairs`` is the all-pairs
    total, ``n_coresident_pairs`` the within-block pairs the pipelines
    will actually consider.  Every cross-block pair is *excluded by
    construction of the constraint semantics*, so the plan's recall is
    1.0 by definition — nothing a constrained run may emit is lost.
    """
    blocks = plan_blocks(relation, constraints)
    n = len(relation)
    n_pairs = n * (n - 1) // 2
    n_coresident = sum(len(block) * (len(block) - 1) // 2 for block in blocks)
    return ShardPlan(
        n_shards=len(blocks),
        overlap=0.0,
        members=tuple(tuple(block) for block in blocks),
        recall=1.0,
        n_candidate_pairs=n_pairs,
        n_coresident_pairs=n_coresident,
        n_components=len(blocks),
        n_split_components=0,
    )


def plan_shards(
    relation: Relation,
    n_shards: int,
    overlap: float = 0.2,
    n_hashes: int = 64,
    n_bands: int = 8,
    signatures: RelationSignatures | None = None,
) -> ShardPlan:
    """Block the relation into ``n_shards`` overlapping shards.

    Deterministic for a given relation (the MinHash hash family is
    seeded by position, not process state).  ``overlap`` is the
    fraction of the per-shard capacity replicated between consecutive
    chunks of a *split* component; whole components never need it.
    ``signatures`` lets the caller share an index's already-computed
    signature batch (see :func:`_lsh_components`); the plan is
    identical with or without it.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")

    ids = relation.ids()
    if n_shards == 1:
        return ShardPlan(
            n_shards=1,
            overlap=overlap,
            members=(tuple(sorted(ids)),),
            recall=1.0,
            n_candidate_pairs=0,
            n_coresident_pairs=0,
            n_components=0,
            n_split_components=0,
        )

    components, component_pairs, _, sign_seconds = _lsh_components(
        relation, n_hashes, n_bands, signatures=signatures
    )
    cap = max(1, -(-len(ids) // n_shards))  # ceil(n / n_shards)

    pieces: list[tuple[int, list[int]]] = []  # (component idx, chunk)
    n_split = 0
    for idx, component in enumerate(components):
        if len(component) > cap:
            n_split += 1
            for chunk in _split_component(component, cap, overlap):
                pieces.append((idx, chunk))
        else:
            pieces.append((idx, list(component)))

    # Heap-pack pieces (already size-descending by component order;
    # re-sort so split chunks interleave deterministically too).
    pieces.sort(key=lambda piece: (-len(piece[1]), piece[1][0]))
    shard_members: list[set[int]] = [set() for _ in range(n_shards)]
    heap = [(0, idx) for idx in range(n_shards)]
    placement: dict[int, list[int]] = {}  # component idx -> shard ids
    for comp_idx, chunk in pieces:
        load, shard_idx = heapq.heappop(heap)
        shard_members[shard_idx].update(chunk)
        placement.setdefault(comp_idx, []).append(shard_idx)
        heapq.heappush(heap, (load + len(chunk), shard_idx))

    members = tuple(tuple(sorted(shard)) for shard in shard_members)
    member_sets = [frozenset(shard) for shard in members]

    n_pairs = 0
    n_coresident = 0
    for comp_idx, pairs in enumerate(component_pairs):
        if not pairs:
            continue
        shard_ids = placement.get(comp_idx, [])
        n_pairs += len(pairs)
        if len(shard_ids) == 1:
            # Whole component on one shard: every pair co-resident.
            n_coresident += len(pairs)
        else:
            for a, b in pairs:
                if any(
                    a in member_sets[sid] and b in member_sets[sid]
                    for sid in set(shard_ids)
                ):
                    n_coresident += 1

    recall = n_coresident / n_pairs if n_pairs else 1.0
    return ShardPlan(
        n_shards=n_shards,
        overlap=overlap,
        members=members,
        recall=recall,
        n_candidate_pairs=n_pairs,
        n_coresident_pairs=n_coresident,
        n_components=len(components),
        n_split_components=n_split,
        sign_seconds=sign_seconds,
    )
