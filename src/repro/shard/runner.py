"""Per-shard staged execution under a bounded worker pool.

:class:`ShardRunner` turns a :class:`~repro.shard.plan.ShardPlan` into
per-shard :class:`ShardOutcome` payloads by running the existing
:class:`~repro.run.pipeline.StagedPipeline` once per shard:

- **Phase 1 queries the global index.**  The coordinator builds the NN
  index once over the *full* relation; each shard computes entries only
  for its member rids via ``prepare_nn_lists(rids=...)``.  Every entry
  is therefore exactly what an unsharded run would produce — the
  invariant :func:`~repro.shard.merge.merge_partitions` turns into a
  checksum-identical merged partition.
- **Phase 2 runs per shard.**  Each worker executes ``run_from_nn``
  over ``relation.subset(members)`` with its *own* storage engine sized
  by the config's ``buffer_pages``/``page_capacity`` (when the engine
  path is on), so the peak buffer-pool footprint of the whole run is
  ``shards_in_flight × buffer_pages`` pages — the bounded-memory
  contract ``bench-scale`` records.
- **At most ``shards_in_flight`` shards are resident at once**: the
  pool's worker count is capped, so excess shards queue.  Pool kind
  follows ``config.pool`` (threads share the one built index; a process
  pool pickles relation + index together, preserving their identity
  link).

Worker payloads are plain tuples/dicts so both pool kinds work
unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.formulation import DEParams
from repro.core.neighborhood import entry_to_row
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.data.schema import Relation
from repro.index.base import NNIndex
from repro.run.config import RunConfig
from repro.run.context import RunContext
from repro.run.pipeline import StagedPipeline
from repro.shard.plan import ShardPlan
from repro.storage.engine import Engine

__all__ = ["ShardOutcome", "ShardRunner"]

#: Phase-1 counters a shard reports back to the coordinator.
_PHASE1_COUNTERS = (
    "lookups",
    "seconds",
    "evaluations",
    "cache_hits",
    "cache_misses",
    "candidates_generated",
    "evaluations_pruned",
    "kernel_evaluations",
)


@dataclass
class ShardOutcome:
    """Everything one shard's pipeline run sends back for the merge."""

    shard_id: int
    n_members: int
    #: NN entries for the shard's members, as ``entry_to_row`` tuples.
    #: Globally exact (computed against the full index), so replicated
    #: rids carry identical rows on every shard holding them.
    nn_rows: list
    #: CSPairs rows as ``(id1, id2, ng1, ng2, flags)`` tuples.
    cs_rows: list
    #: Non-trivial groups of the shard-local partition.
    groups: list[list[int]]
    seconds: float
    stage_seconds: dict[str, float]
    phase1: dict[str, Any]
    #: Buffer-pool counters of the shard's private engine (engine runs).
    buffer: dict[str, Any] | None
    n_cs_pairs: int

    def summary(self) -> dict[str, Any]:
        """The telemetry view recorded in ``RunStats.shard_runs``."""
        return {
            "shard_id": self.shard_id,
            "n_members": self.n_members,
            "n_cs_pairs": self.n_cs_pairs,
            "n_groups": len(self.groups),
            "seconds": self.seconds,
            "stage_seconds": dict(self.stage_seconds),
            "phase1_lookups": self.phase1.get("lookups", 0),
            "buffer": dict(self.buffer) if self.buffer else None,
        }


def _run_shard(task) -> ShardOutcome:
    """Execute one shard end to end (runs inside a pool worker).

    ``task`` bundles the relation and the built index in one pickled
    argument so a process pool's deserialization preserves
    ``index.relation is relation`` — the identity ``prepare_nn_lists``
    checks.
    """
    shard_id, members, relation, index, params, config, radius_fn = task

    started = time.perf_counter()
    phase1 = Phase1Stats()
    nn_relation = prepare_nn_lists(
        relation,
        index,
        params,
        stats=phase1,
        radius_fn=radius_fn,
        chunk_size=config.chunk_size,
        rids=members,
    )

    # The shard's private pipeline: Phase 2 only, over the member
    # sub-relation, sequential inside the worker (the pool is the
    # parallelism), minimality/predicates deferred to the global
    # post-merge stage, CSPairs rows kept for the merge.
    shard_config = config.replace(
        shards=1,
        shards_in_flight=None,
        n_workers=1,
        phase2_workers=1,
        verify=False,
        keep_cs_pairs=True,
        minimal=False,
        # Constraint splitting runs once, globally, after the merge;
        # splitting shard-locally would hide boundary context from the
        # connected-component peel and could diverge from the unsharded
        # answer.
        constraints=(),
    )
    engine = None
    if shard_config.use_engine:
        engine = Engine(
            buffer_pages=shard_config.buffer_pages,
            page_capacity=shard_config.page_capacity,
        )
    assert index.distance is not None, "index must be built"
    ctx = RunContext(
        shard_config, index.distance, index, engine=engine, radius_fn=radius_fn
    )
    result = StagedPipeline(ctx).run_from_nn(
        relation.subset(members), nn_relation, params
    )
    stats = ctx.last_stats
    assert stats is not None and result.cs_pairs is not None

    buffer = None
    if stats.buffer is not None:
        buffer = {
            "pages": shard_config.buffer_pages,
            "hits": stats.buffer.hits,
            "misses": stats.buffer.misses,
            "evictions": stats.buffer.evictions,
        }
    return ShardOutcome(
        shard_id=shard_id,
        n_members=len(members),
        nn_rows=[entry_to_row(entry) for entry in nn_relation],
        cs_rows=[
            (pair.id1, pair.id2, pair.ng1, pair.ng2, pair.flags)
            for pair in result.cs_pairs
        ],
        groups=[list(group) for group in result.partition.non_trivial_groups()],
        seconds=time.perf_counter() - started,
        stage_seconds={
            timing.stage: stats.stage_seconds(timing.stage)
            for timing in stats.timings
        },
        phase1={
            **{name: getattr(phase1, name) for name in _PHASE1_COUNTERS},
            "substage_seconds": dict(phase1.substage_seconds),
        },
        buffer=buffer,
        n_cs_pairs=stats.n_cs_pairs,
    )


def _run_block(task) -> ShardOutcome:
    """Execute one constraint block end to end (runs inside a worker).

    Unlike :func:`_run_shard`, a constraint block is *closed*: hard
    constraints guarantee no cross-block pair can ever be a duplicate,
    so the block runs the full Phase-1/Phase-2 program over its own
    sub-relation with a private index.  The distance arrives already
    prepared on the full corpus and is wrapped in
    :class:`~repro.distances.base.FrozenDistance` so the block-local
    ``index.build`` cannot re-fit statistics to the block.  Residual
    constraints (soft predicates, pairwise time windows) run in inline
    mode inside the block — filtered at the join, split after
    partitioning.
    """
    shard_id, sub_relation, params, config, radius_fn, distance = task

    started = time.perf_counter()
    worker_config = config.replace(
        shards=1,
        shards_in_flight=None,
        n_workers=1,
        phase2_workers=1,
        verify=False,
        keep_cs_pairs=True,
        minimal=False,
        constraint_mode="inline",
    )
    engine = None
    if worker_config.use_engine:
        engine = Engine(
            buffer_pages=worker_config.buffer_pages,
            page_capacity=worker_config.page_capacity,
        )
    from repro.distances.base import FrozenDistance
    from repro.run.registry import make_index

    index = make_index(worker_config.index)
    ctx = RunContext(
        worker_config,
        FrozenDistance(distance),
        index,
        engine=engine,
        radius_fn=radius_fn,
    )
    result = StagedPipeline(ctx).run(sub_relation, params)
    stats = ctx.last_stats
    assert stats is not None and result.cs_pairs is not None

    buffer = None
    if stats.buffer is not None:
        buffer = {
            "pages": worker_config.buffer_pages,
            "hits": stats.buffer.hits,
            "misses": stats.buffer.misses,
            "evictions": stats.buffer.evictions,
        }
    return ShardOutcome(
        shard_id=shard_id,
        n_members=len(sub_relation),
        nn_rows=[entry_to_row(entry) for entry in result.nn_relation],
        cs_rows=[
            (pair.id1, pair.id2, pair.ng1, pair.ng2, pair.flags)
            for pair in result.cs_pairs
        ],
        groups=[list(group) for group in result.partition.non_trivial_groups()],
        seconds=time.perf_counter() - started,
        stage_seconds={
            timing.stage: stats.stage_seconds(timing.stage)
            for timing in stats.timings
        },
        phase1={
            **{
                name: getattr(stats.phase1, name)
                for name in _PHASE1_COUNTERS
            },
            "substage_seconds": dict(stats.phase1.substage_seconds),
        },
        buffer=buffer,
        n_cs_pairs=stats.n_cs_pairs,
    )


class ShardRunner:
    """Run the staged pipeline once per shard, bounded shards in flight."""

    def __init__(self, context: RunContext):
        self.context = context

    def run(
        self,
        relation: Relation,
        params: DEParams,
        plan: ShardPlan,
        index: NNIndex | None = None,
    ) -> list[ShardOutcome]:
        """Execute every shard of ``plan``; outcomes in shard order.

        The index (the context's unless overridden) must already be
        built over ``relation`` — the coordinator builds it once and
        every shard queries it.
        """
        config: RunConfig = self.context.config
        index = index if index is not None else self.context.index
        if index.relation is not relation:
            index.build(relation, self.context.distance)

        in_flight = config.shards_in_flight or plan.n_shards
        in_flight = max(1, min(in_flight, plan.n_shards))
        tasks = [
            (
                shard_id,
                list(members),
                relation,
                index,
                params,
                config,
                self.context.radius_fn,
            )
            for shard_id, members in enumerate(plan.members)
        ]
        if in_flight <= 1 or plan.n_shards <= 1:
            outcomes = [_run_shard(task) for task in tasks]
        elif config.pool == "process":
            with ProcessPoolExecutor(max_workers=in_flight) as executor:
                outcomes = list(executor.map(_run_shard, tasks))
        else:
            with ThreadPoolExecutor(max_workers=in_flight) as executor:
                outcomes = list(executor.map(_run_shard, tasks))
        return sorted(outcomes, key=lambda outcome: outcome.shard_id)

    def run_blocks(
        self,
        relation: Relation,
        params: DEParams,
        plan: ShardPlan,
    ) -> list[ShardOutcome]:
        """Execute every multi-record block of a constraint plan.

        Singleton blocks are skipped — they cannot contain a duplicate
        pair, and the merge's singleton closure emits them as trivial
        groups — which is exactly where pushdown's work saving comes
        from.  Parallelism is bounded by ``config.n_workers`` (under
        pushdown the config's ``shards`` knob is 1, so the
        ``shards_in_flight`` cap does not apply).  The context's
        distance must already be prepared on the full relation.
        """
        config: RunConfig = self.context.config
        tasks = [
            (
                shard_id,
                relation.subset(list(members)),
                params,
                config,
                self.context.radius_fn,
                self.context.distance,
            )
            for shard_id, members in enumerate(plan.members)
            if len(members) >= 2
        ]
        in_flight = max(1, min(config.n_workers, max(1, len(tasks))))
        if in_flight <= 1 or len(tasks) <= 1:
            outcomes = [_run_block(task) for task in tasks]
        elif config.pool == "process":
            with ProcessPoolExecutor(max_workers=in_flight) as executor:
                outcomes = list(executor.map(_run_block, tasks))
        else:
            with ThreadPoolExecutor(max_workers=in_flight) as executor:
                outcomes = list(executor.map(_run_block, tasks))
        return sorted(outcomes, key=lambda outcome: outcome.shard_id)

    @staticmethod
    def effective_in_flight(config: RunConfig, n_shards: int) -> int:
        """The worker-pool cap a run with this config actually uses."""
        in_flight = config.shards_in_flight or n_shards
        return max(1, min(in_flight, n_shards))


def run_shard_sequence(
    tasks: Sequence[tuple],
) -> list[ShardOutcome]:  # pragma: no cover - debugging helper
    """Run prepared shard tasks sequentially (no pool); test hook."""
    return [_run_shard(task) for task in tasks]
