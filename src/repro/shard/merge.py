"""Exact cross-shard merge: union edges, re-extract only boundaries.

The merge's correctness argument rests on three facts:

1. **Shard NN entries are globally exact** — each shard queried the
   full index (:class:`~repro.shard.runner.ShardRunner`), so the union
   of shard entries *is* the unsharded ``NN_Reln`` (replicated rids
   carry identical rows).
2. **Shard CSPairs rows are a subset of the global rows** — the
   builder reads only the (global) entries and skips partners outside
   the shard, so every emitted row has the global row's exact values,
   and every mutual pair co-resident on some shard *was* emitted there.
   The only missing rows are the mutual pairs no shard held together;
   :func:`merge_partitions` reconstructs them from the merged entries
   with the same ``prefix_equal_flags`` / ``max_pair_size`` code path.
3. **Groups never span mutual-NN components**
   (:func:`~repro.core.partitioner.mutual_components`), so group
   extraction over the merged rows decomposes per component.  A
   component wholly contained in one shard's member set is **clean**:
   that shard saw exactly the component's global rows, so its groups
   are reused verbatim.  Everything else is a **boundary** component
   and is re-extracted by the same anchor scan the partitioner runs —
   the only recomputation the merge performs.

Containment in a *single* shard is the criterion, not "no cross-shard
rows were added": with members ``{a, b}`` / ``{b, c}`` and global rows
``(a, b), (b, c)``, the second shard would extract ``{b, c}`` while the
global scan (anchors ascending) assigns ``b`` to ``a``'s group — no
reconstructed row distinguishes the two, but only a shard holding all
of ``{a, b, c}`` can witness the component's true row set.

The ``shard-merge-parity`` verify check
(:mod:`repro.verify.shard`) proves the end result: merged partition
checksum-identical to the unsharded reference across all three cut
specifications and both kernel backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.cspairs import (
    CSPair,
    max_pair_size,
    nn_list_limit,
    prefix_equal_flags,
)
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation, entry_from_row
from repro.core.partitioner import (
    _scan_groups,
    _with_singletons,
    iter_anchor_groups,
    mutual_components,
)
from repro.core.result import Partition
from repro.shard.plan import ShardPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.runner import ShardOutcome

__all__ = ["MergeResult", "merge_partitions"]


@dataclass
class MergeResult:
    """The merged global view plus the merge's own telemetry."""

    #: The exact global NN relation (union of shard entries).
    nn_relation: NNRelation
    #: The exact global CSPairs rows, ``(id1, id2)``-sorted.
    cs_pairs: list[CSPair]
    partition: Partition
    n_components: int
    #: Components not contained in any single shard (re-extracted).
    n_boundary_components: int
    #: Components whose witness shard's groups were reused verbatim.
    n_reused_components: int
    #: CSPairs rows reconstructed at the merge (no shard emitted them).
    n_cross_pairs: int

    def to_dict(self) -> dict:
        return {
            "n_components": self.n_components,
            "n_boundary_components": self.n_boundary_components,
            "n_reused_components": self.n_reused_components,
            "n_cross_pairs": self.n_cross_pairs,
            "n_cs_pairs": len(self.cs_pairs),
        }


def merge_partitions(
    plan: ShardPlan,
    outcomes: "Sequence[ShardOutcome]",
    ids: Iterable[int],
    params: DEParams,
) -> MergeResult:
    """Union per-shard results into the exact global partition.

    ``ids`` is the full relation's id universe (records claimed by no
    group close as singletons, exactly as in the unsharded scan).
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.shard_id)

    # 1. The exact global NN relation: first writer wins (duplicates
    #    across shards are identical by the global-query invariant).
    nn_relation = NNRelation()
    for outcome in ordered:
        for row in outcome.nn_rows:
            if row[0] not in nn_relation:
                nn_relation.add(entry_from_row(row))

    # 2. Union the shard rows, deduped by pair key.
    rows: dict[tuple[int, int], CSPair] = {}
    for outcome in ordered:
        for id1, id2, ng1, ng2, flags in outcome.cs_rows:
            key = (id1, id2)
            if key not in rows:
                rows[key] = CSPair(
                    id1=id1, id2=id2, ng1=ng1, ng2=ng2, flags=tuple(flags)
                )

    # 3. Reconstruct the cross-shard rows: mutual pairs of the global
    #    relation that no shard held together.  Same row construction
    #    as ``build_cs_pairs``, driven by the merged (exact) entries.
    n_cross = 0
    for entry in nn_relation:
        limit = nn_list_limit(params, len(entry.neighbors))
        for neighbor in entry.neighbors[:limit]:
            other_id = neighbor.rid
            if other_id <= entry.rid or (entry.rid, other_id) in rows:
                continue
            if other_id not in nn_relation:
                continue
            other = nn_relation.get(other_id)
            other_limit = nn_list_limit(params, len(other.neighbors))
            if entry.rid not in other.neighbor_ids[:other_limit]:
                continue
            max_m = max_pair_size(
                len(entry.neighbors), len(other.neighbors), params
            )
            rows[(entry.rid, other_id)] = CSPair(
                id1=entry.rid,
                id2=other_id,
                ng1=entry.ng,
                ng2=other.ng,
                flags=prefix_equal_flags(
                    entry.rid,
                    entry.neighbor_ids,
                    other.rid,
                    other.neighbor_ids,
                    max_m,
                ),
            )
            n_cross += 1

    merged = sorted(rows.values(), key=lambda pair: (pair.id1, pair.id2))

    # 4. Per-component extraction: reuse clean components' groups from
    #    their witness shard, re-scan boundary components.
    member_sets = [frozenset(members) for members in plan.members]
    group_of: dict[int, dict[int, tuple[int, ...]]] = {}
    for outcome in ordered:
        owner: dict[int, tuple[int, ...]] = {}
        for group in outcome.groups:
            frozen = tuple(group)
            for rid in frozen:
                owner[rid] = frozen
        group_of[outcome.shard_id] = owner

    groups: list[list[int]] = []
    components = mutual_components(merged)
    n_boundary = 0
    n_reused = 0
    for component in components:
        component_rids: set[int] = set()
        for row in component:
            component_rids.add(row.id1)
            component_rids.add(row.id2)
        witness = next(
            (
                shard_id
                for shard_id, members in enumerate(member_sets)
                if component_rids <= members
            ),
            None,
        )
        if witness is None:
            n_boundary += 1
            groups.extend(
                _scan_groups(iter_anchor_groups(component), params)
            )
        else:
            n_reused += 1
            owner = group_of.get(witness, {})
            seen: set[int] = set()
            for rid in sorted(component_rids):
                group = owner.get(rid)
                if group is not None and group[0] not in seen:
                    seen.add(group[0])
                    groups.append(list(group))

    return MergeResult(
        nn_relation=nn_relation,
        cs_pairs=merged,
        partition=_with_singletons(groups, ids),
        n_components=len(components),
        n_boundary_components=n_boundary,
        n_reused_components=n_reused,
        n_cross_pairs=n_cross,
    )
