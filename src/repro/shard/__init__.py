"""Sharded scale-out: LSH-band blocking shards + exact boundary merge.

The layer that takes a run past one address space's comfort zone:

- :mod:`repro.shard.plan` — :class:`ShardPlan` blocks the relation
  into overlapping shards along MinHash LSH band buckets (the same
  signature scheme the approximate index and the persistent postings
  use), recording the co-residency recall of the LSH candidate pairs.
- :mod:`repro.shard.runner` — :class:`ShardRunner` executes the
  existing staged pipeline once per shard on a worker pool, with at
  most ``shards_in_flight`` shards resident at a time and a per-shard
  buffer-pool budget, so peak memory is ``shards_in_flight × budget``
  rather than ``O(n)``.
- :mod:`repro.shard.merge` — :func:`merge_partitions` unions the
  per-shard mutual-NN edges, reconstructs the cross-shard CSPairs rows
  exactly, and re-runs compact-SN group extraction only on boundary
  components — provably checksum-identical to an unsharded run.
"""

from repro.shard.merge import MergeResult, merge_partitions
from repro.shard.plan import ShardPlan, plan_shards
from repro.shard.runner import ShardOutcome, ShardRunner

__all__ = [
    "MergeResult",
    "ShardOutcome",
    "ShardPlan",
    "ShardRunner",
    "merge_partitions",
    "plan_shards",
]
