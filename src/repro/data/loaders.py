"""Dataset loading: the registry benchmarks and examples pull from.

:func:`load_dataset` is the one-stop entry: pick one of the paper's six
evaluation domains, a size, and a duplicate fraction, and receive a
deterministic dirty relation with its gold standard.  CSV import/export
is provided for users bringing their own data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.data.duplicates import DirtyDataset, GoldStandard, inject_duplicates
from repro.data.generators import GENERATORS
from repro.data.schema import Record, Relation

__all__ = [
    "dataset_names",
    "load_dataset",
    "relation_from_csv",
    "relation_to_csv",
]

#: Hard caps where a generator's vocabulary is finite.
_MAX_ENTITIES = {"parks": 280}

#: Dataset-specific injection behavior.  Claims resubmissions keep
#: their blocking keys verbatim and move only forward in time, so the
#: workload's hard constraints (patient/provider block keys, 30-day
#: service window) are consistent with the gold standard.
_INJECTION_PROFILES: dict[str, dict] = {
    "claims": {
        "protected_fields": ("patient_id", "provider"),
        "date_jitter": {"service_date": 30},
    },
}


def dataset_names() -> list[str]:
    """Names of the available synthetic evaluation datasets."""
    return sorted(GENERATORS)


def load_dataset(
    name: str,
    n_entities: int = 300,
    duplicate_fraction: float = 0.3,
    errors_per_copy: int = 2,
    max_copies: int = 3,
    seed: int = 0,
) -> DirtyDataset:
    """Generate one of the six evaluation datasets.

    Parameters mirror :func:`repro.data.duplicates.inject_duplicates`;
    ``n_entities`` counts unique entities before duplicate injection.
    """
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    cap = _MAX_ENTITIES.get(name)
    if cap is not None and n_entities > cap:
        raise ValueError(
            f"dataset {name!r} supports at most {cap} entities "
            f"(finite vocabulary); requested {n_entities}"
        )
    clean = generator.generate(n_entities, seed=seed)
    return inject_duplicates(
        name=name,
        schema=generator.schema,
        clean_rows=clean,
        duplicate_fraction=duplicate_fraction,
        errors_per_copy=errors_per_copy,
        max_copies=max_copies,
        seed=seed,
        **_INJECTION_PROFILES.get(name, {}),
    )


def relation_from_csv(
    path: str | Path,
    name: str | None = None,
    schema: Sequence[str] | None = None,
) -> Relation:
    """Load a relation from a CSV file.

    With ``schema=None`` the first row is treated as the header.
    Record ids are assigned sequentially.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    if schema is None:
        header, rows = rows[0], rows[1:]
    else:
        header = list(schema)
    relation = Relation(name=name or path.stem, schema=tuple(header))
    for rid, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(f"{path}: row {rid} has arity {len(row)}")
        relation.add(Record(rid, tuple(row)))
    return relation


def relation_to_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to CSV (header row included)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema)
        for record in relation:
            writer.writerow(record.fields)


def gold_from_csv(path: str | Path) -> GoldStandard:
    """Load a gold standard from a two-column ``rid,entity`` CSV."""
    path = Path(path)
    gold = GoldStandard()
    with path.open(newline="", encoding="utf-8") as handle:
        for row in csv.reader(handle):
            if not row or row[0] == "rid":
                continue
            gold.add(int(row[0]), int(row[1]))
    return gold
