"""Relational data model used throughout the library.

The paper operates on a relation ``R`` of tuples; distances are defined
between tuples and the duplicate-elimination algorithm partitions ``R``
into groups.  This module provides the two value types everything else
builds on:

- :class:`Record` — an immutable tuple of string attribute values with an
  integer identifier (the paper's tuple ``ID``).
- :class:`Relation` — an ordered collection of records sharing a schema,
  with O(1) lookup by identifier.

Records are deliberately plain: all attributes are strings, which matches
the string-similarity setting of the paper (names, addresses, track
titles).  Numeric or structured attributes can be rendered to strings by
the caller before constructing a relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["Record", "Relation"]


@dataclass(frozen=True, slots=True)
class Record:
    """A single tuple of a relation.

    Parameters
    ----------
    rid:
        The unique integer identifier of the record within its relation.
        Identifiers double as deterministic tie-breakers for distance
        ties, which keeps DE solutions unique (paper Lemma 1 assumes
        distinct distances; real string data has ties).
    fields:
        The attribute values, in schema order.
    """

    rid: int
    fields: tuple[str, ...]

    def text(self, separator: str = " ") -> str:
        """Return the record rendered as a single string.

        Single-attribute distance functions (edit distance over the whole
        tuple, as in the paper's evaluation) operate on this rendering.
        """
        return separator.join(self.fields)

    def __getitem__(self, index: int) -> str:
        return self.fields[index]

    def __len__(self) -> int:
        return len(self.fields)


@dataclass
class Relation:
    """An ordered collection of :class:`Record` objects with a schema.

    The relation is the unit of work for the DE problem: Phase 1 computes
    a nearest-neighbor list per record, and Phase 2 partitions the
    relation into compact SN groups.

    Parameters
    ----------
    name:
        A human-readable relation name (used in reports and by the
        storage engine's catalog).
    schema:
        Attribute names, in field order.
    records:
        The records.  Identifiers must be unique but need not be dense.
    """

    name: str
    schema: tuple[str, ...]
    records: list[Record] = field(default_factory=list)
    _by_id: dict[int, Record] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for record in self.records:
            self._check_arity(record)
            if record.rid in self._by_id:
                raise ValueError(f"duplicate record id {record.rid}")
            self._by_id[record.rid] = record

    def _check_arity(self, record: Record) -> None:
        if len(record.fields) != len(self.schema):
            raise ValueError(
                f"record {record.rid} has {len(record.fields)} fields, "
                f"schema {self.name!r} expects {len(self.schema)}"
            )

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Sequence[str],
        rows: Iterable[Sequence[str]],
    ) -> "Relation":
        """Build a relation from raw rows, assigning sequential ids."""
        records = [
            Record(rid, tuple(str(value) for value in row))
            for rid, row in enumerate(rows)
        ]
        return cls(name=name, schema=tuple(schema), records=records)

    @classmethod
    def from_strings(cls, name: str, values: Iterable[str]) -> "Relation":
        """Build a single-attribute relation from plain strings."""
        return cls.from_rows(name, ("value",), [[v] for v in values])

    def add(self, record: Record) -> None:
        """Append a record, enforcing schema arity and id uniqueness."""
        self._check_arity(record)
        if record.rid in self._by_id:
            raise ValueError(f"duplicate record id {record.rid}")
        self.records.append(record)
        self._by_id[record.rid] = record

    def remove(self, rid: int) -> Record:
        """Remove and return the record with identifier ``rid``.

        Identifiers of removed records are never reassigned by the
        incremental layer, so ``rid`` gaps after a removal are normal
        (the partitioner and the CSPairs builders tolerate sparse ids).
        """
        record = self._by_id.pop(rid)
        self.records.remove(record)
        return record

    def get(self, rid: int) -> Record:
        """Return the record with identifier ``rid``."""
        return self._by_id[rid]

    def __contains__(self, rid: int) -> bool:
        return rid in self._by_id

    def ids(self) -> list[int]:
        """Return all record identifiers in insertion order."""
        return [record.rid for record in self.records]

    def texts(self) -> list[str]:
        """Return the single-string rendering of every record."""
        return [record.text() for record in self.records]

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Return a new relation keeping only the named attributes."""
        indexes = [self.schema.index(attr) for attr in attributes]
        records = [
            Record(r.rid, tuple(r.fields[i] for i in indexes)) for r in self.records
        ]
        return Relation(
            name=name or f"{self.name}_proj",
            schema=tuple(attributes),
            records=records,
        )

    def subset(self, rids: Iterable[int], name: str | None = None) -> "Relation":
        """Return a new relation containing only the given record ids."""
        wanted = set(rids)
        records = [r for r in self.records if r.rid in wanted]
        return Relation(
            name=name or f"{self.name}_subset",
            schema=self.schema,
            records=records,
        )

    def rename(self, name: str) -> "Relation":
        """Return a shallow copy of the relation under a new name."""
        return Relation(name=name, schema=self.schema, records=list(self.records))

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def to_mapping(self) -> Mapping[int, Record]:
        """Return a read-only view keyed by record id."""
        return dict(self._by_id)
