"""Duplicate injection and gold standards.

Turns a clean relation of unique entities into a dirty relation with
known fuzzy duplicates: a chosen fraction of entities receive one or
more corrupted copies (see :mod:`repro.data.errors`), and the mapping
from record id to entity id is retained as the :class:`GoldStandard`
that precision/recall evaluation scores against.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.data.errors import ErrorModel
from repro.data.schema import Record, Relation

__all__ = ["GoldStandard", "DirtyDataset", "inject_duplicates"]


@dataclass
class GoldStandard:
    """Ground truth: record id -> entity id."""

    entity_of: dict[int, int] = field(default_factory=dict)

    def add(self, rid: int, entity: int) -> None:
        self.entity_of[rid] = entity

    def true_pairs(self) -> set[tuple[int, int]]:
        """All unordered duplicate pairs (records of the same entity)."""
        by_entity: dict[int, list[int]] = {}
        for rid, entity in self.entity_of.items():
            by_entity.setdefault(entity, []).append(rid)
        pairs: set[tuple[int, int]] = set()
        for members in by_entity.values():
            members.sort()
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    pairs.add((a, b))
        return pairs

    def groups(self) -> list[list[int]]:
        """Records grouped by entity (including singleton entities)."""
        by_entity: dict[int, list[int]] = {}
        for rid, entity in self.entity_of.items():
            by_entity.setdefault(entity, []).append(rid)
        groups = [sorted(members) for members in by_entity.values()]
        groups.sort(key=lambda g: g[0])
        return groups

    def duplicate_fraction(self) -> float:
        """Fraction of records belonging to a multi-record entity.

        This is the quantity ``f`` the SN threshold heuristic asks the
        user to estimate (paper section 4.4).
        """
        if not self.entity_of:
            return 0.0
        sizes: dict[int, int] = {}
        for entity in self.entity_of.values():
            sizes[entity] = sizes.get(entity, 0) + 1
        dup_records = sum(size for size in sizes.values() if size >= 2)
        return dup_records / len(self.entity_of)

    def are_duplicates(self, a: int, b: int) -> bool:
        return (
            a in self.entity_of
            and b in self.entity_of
            and self.entity_of[a] == self.entity_of[b]
        )


@dataclass
class DirtyDataset:
    """A generated evaluation dataset: dirty relation plus ground truth."""

    relation: Relation
    gold: GoldStandard
    name: str = "dataset"


def inject_duplicates(
    name: str,
    schema: Sequence[str],
    clean_rows: Sequence[tuple[str, ...]],
    duplicate_fraction: float = 0.3,
    max_copies: int = 3,
    errors_per_copy: int = 2,
    seed: int = 0,
    protected_fields: Sequence[str] = (),
    date_jitter: Mapping[str, int] | None = None,
) -> DirtyDataset:
    """Create a dirty relation from clean entity rows.

    Parameters
    ----------
    clean_rows:
        One row per unique entity.
    duplicate_fraction:
        Fraction of *entities* that receive at least one extra copy.
        (Most duplicate groups end up of size 2, a few larger — the
        paper notes 80-90% of real duplicate sets are pairs.)
    max_copies:
        Maximum number of extra copies per duplicated entity; the copy
        count is drawn geometrically so size-2 groups dominate.
    errors_per_copy:
        Error operations applied to each copy.
    seed:
        Controls entity selection, error draws, and the final shuffle.
    protected_fields:
        Field names copies must reproduce verbatim — identifier fields
        the workload's hard constraints block on.
    date_jitter:
        ``{field_name: window_days}``: instead of textual corruption,
        each copy shifts this ISO date forward by 1..``window_days``
        days.  Shifts are one-directional so any two copies of one
        entity also stay within ``window_days`` of *each other*, which
        keeps a same-width :class:`~repro.core.constraints.TimeWindow`
        constraint consistent with the gold standard.
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    rng = random.Random(seed)
    errors = ErrorModel(seed=seed + 1)

    jitter = {
        tuple(schema).index(field_name): days
        for field_name, days in (date_jitter or {}).items()
    }
    kept = {tuple(schema).index(field_name) for field_name in protected_fields}
    kept.update(jitter)
    eligible = (
        [i for i in range(len(schema)) if i not in kept] if kept else None
    )

    rows: list[tuple[int, tuple[str, ...]]] = []  # (entity, fields)
    for entity, fields in enumerate(clean_rows):
        rows.append((entity, tuple(fields)))
        if rng.random() < duplicate_fraction:
            copies = 1
            while copies < max_copies and rng.random() < 0.3:
                copies += 1
            for _ in range(copies):
                dirty = errors.corrupt_fields(
                    fields,
                    n_errors=errors_per_copy,
                    eligible_fields=eligible,
                )
                if jitter:
                    shifted = list(dirty)
                    for index, window in jitter.items():
                        day = datetime.date.fromisoformat(shifted[index])
                        shift = datetime.timedelta(
                            days=rng.randint(1, max(1, window))
                        )
                        shifted[index] = (day + shift).isoformat()
                    dirty = tuple(shifted)
                rows.append((entity, dirty))

    rng.shuffle(rows)

    relation = Relation(name=name, schema=tuple(schema))
    gold = GoldStandard()
    for rid, (entity, fields) in enumerate(rows):
        relation.add(Record(rid, fields))
        gold.add(rid, entity)
    return DirtyDataset(relation=relation, gold=gold, name=name)
