"""Embedded sample data.

Small datasets reproduced verbatim from the paper so examples and tests
can exercise exactly the situations the paper argues from:

- :func:`table1_relation` — the 14-tuple media example of Table 1
  (six duplicate tuples in three groups, a four-track series, and four
  artists sharing one track title);
- :func:`table1_gold` — its ground truth;
- :func:`integers_example` — the section-3 instance
  ``{1, 2, 4, 21, 22, 31, 32}`` under absolute difference, which shows
  why the CS+SN-only formulation needs a cut specification.
"""

from __future__ import annotations

from repro.core.result import Partition
from repro.data.duplicates import GoldStandard
from repro.data.schema import Relation
from repro.distances.base import FunctionDistance

__all__ = [
    "table1_relation",
    "table1_gold",
    "table1_duplicate_groups",
    "table1_expected_partition",
    "integers_example",
    "integer_distance",
]

#: Table 1 of the paper: (ArtistName, TrackName).  Record ids 0-13
#: correspond to the paper's tuple ids 1-14; the first six records are
#: duplicates (three groups of two).
_TABLE1_ROWS = [
    ("The Doors", "LA Woman"),                                   # 1*
    ("Doors", "LA Woman"),                                       # 2*
    ("The Beatles", "A Little Help from My Friends"),            # 3*
    ("Beatles, The", "With A Little Help From My Friend"),       # 4*
    ("Shania Twain", "Im Holdin on to Love"),                    # 5*
    ("Twian, Shania", "I'm Holding On To Love"),                 # 6*
    ("4 th Elemynt", "Ears/Eyes"),                               # 7
    ("4 th Elemynt", "Ears/Eyes - Part II"),                     # 8
    ("4th Elemynt", "Ears/Eyes - Part III"),                     # 9
    ("4 th Elemynt", "Ears/Eyes - Part IV"),                     # 10
    ("Aaliyah", "Are You Ready"),                                # 11
    ("AC DC", "Are You Ready"),                                  # 12
    ("Bob Dylan", "Are You Ready"),                              # 13
    ("Creed", "Are You Ready"),                                  # 14
]


def table1_relation() -> Relation:
    """The media relation of the paper's Table 1."""
    return Relation.from_rows("table1", ("artist", "track"), _TABLE1_ROWS)


def table1_duplicate_groups() -> list[list[int]]:
    """The true duplicate groups, as record-id lists (0-based)."""
    return [[0, 1], [2, 3], [4, 5]]


def table1_gold() -> GoldStandard:
    """Ground truth for Table 1 (each unique tuple its own entity)."""
    gold = GoldStandard()
    entity = 0
    for group in table1_duplicate_groups():
        for rid in group:
            gold.add(rid, entity)
        entity += 1
    for rid in range(6, len(_TABLE1_ROWS)):
        gold.add(rid, entity)
        entity += 1
    return gold


def table1_expected_partition() -> Partition:
    """The partition a correct DE solution should produce on Table 1."""
    groups: list[list[int]] = list(table1_duplicate_groups())
    groups.extend([rid] for rid in range(6, len(_TABLE1_ROWS)))
    return Partition.from_groups(groups)


def integers_example() -> Relation:
    """The section-3 integer instance ``{1, 2, 4, 21, 22, 31, 32}``."""
    values = [1, 2, 4, 21, 22, 31, 32]
    return Relation.from_rows(
        "integers", ("value",), [[str(v)] for v in values]
    )


def integer_distance(scale: float = 100.0) -> FunctionDistance:
    """Absolute difference of integer-string records, scaled into [0, 1].

    ``scale`` must exceed the largest pairwise difference so ordering is
    preserved; the paper's example uses raw absolute difference, and
    scaling is exactly the transformation Lemma 2 proves harmless.
    """

    def diff(a, b) -> float:
        return abs(int(a.fields[0]) - int(b.fields[0])) / scale

    return FunctionDistance(diff, name="absdiff")
