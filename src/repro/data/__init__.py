"""Data model, synthetic dataset generators, and embedded samples."""

from repro.data.duplicates import DirtyDataset, GoldStandard, inject_duplicates
from repro.data.embedded import (
    integer_distance,
    integers_example,
    table1_duplicate_groups,
    table1_expected_partition,
    table1_gold,
    table1_relation,
)
from repro.data.errors import ErrorModel
from repro.data.generators import GENERATORS, DomainGenerator
from repro.data.loaders import (
    dataset_names,
    load_dataset,
    relation_from_csv,
    relation_to_csv,
)
from repro.data.schema import Record, Relation

__all__ = [
    "Record",
    "Relation",
    "ErrorModel",
    "DomainGenerator",
    "GENERATORS",
    "GoldStandard",
    "DirtyDataset",
    "inject_duplicates",
    "dataset_names",
    "load_dataset",
    "relation_from_csv",
    "relation_to_csv",
    "table1_relation",
    "table1_gold",
    "table1_duplicate_groups",
    "table1_expected_partition",
    "integers_example",
    "integer_distance",
]
