"""Synthetic dataset generators.

The paper evaluates on internal warehouses (Media, Org) and Riddle
repository datasets (Restaurants, BirdScott, Parks, Census), none of
which ship with this reproduction.  These generators produce
schema-faithful synthetic stand-ins that preserve the *structural*
property the paper's evaluation turns on:

- **near-unique families** — groups of distinct entities that are
  legitimately close to each other (track series "… - Part II/III/IV",
  store chains "Acme Outlet #1/#2", household members sharing surname
  and street).  These defeat global-threshold approaches but have large
  neighborhood growth, so the SN criterion filters them;
- **far duplicates** — injected errors (see
  :mod:`repro.data.errors`) can push true duplicates farther apart than
  some distinct pairs, which defeats thresholds from the other side.

The Parks generator deliberately produces *no* families: well-separated
unique names are the regime where the paper found no improvement over
thresholding, and benchmark F10 checks we reproduce that too.
"""

from __future__ import annotations

import abc
import datetime
import random

__all__ = [
    "DomainGenerator",
    "MediaGenerator",
    "OrgGenerator",
    "RestaurantGenerator",
    "BirdGenerator",
    "ParkGenerator",
    "CensusGenerator",
    "ClaimsGenerator",
    "GENERATORS",
]

_FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Lisa",
    "Nancy", "Daniel", "Betty", "Anthony", "Margaret", "Mark", "Sandra",
    "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily", "Andrew",
    "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy", "Kevin", "Carol",
    "Brian", "Amanda", "George", "Melissa", "Edward", "Deborah",
]

_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
]

_CITIES = [
    ("Seattle", "WA", "98101"), ("Portland", "OR", "97201"),
    ("San Francisco", "CA", "94102"), ("Los Angeles", "CA", "90001"),
    ("Denver", "CO", "80201"), ("Austin", "TX", "78701"),
    ("Chicago", "IL", "60601"), ("Boston", "MA", "02101"),
    ("New York", "NY", "10001"), ("Atlanta", "GA", "30301"),
    ("Miami", "FL", "33101"), ("Phoenix", "AZ", "85001"),
    ("Madison", "WI", "53701"), ("Columbus", "OH", "43201"),
    ("Nashville", "TN", "37201"), ("Raleigh", "NC", "27601"),
]

_STREET_NAMES = [
    "Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake",
    "Hill", "Park", "Walnut", "Spring", "River", "Church", "Market",
    "Union", "Franklin", "Jefferson", "Highland", "Sunset", "Willow",
    "Chestnut", "Meadow", "Forest", "Ridge", "Valley", "Orchard", "Birch",
]

_STREET_TYPES = ["Street", "Avenue", "Boulevard", "Road", "Drive", "Lane", "Way"]


class DomainGenerator(abc.ABC):
    """Base class for deterministic, seedable domain generators."""

    #: Dataset name used in experiment indexes.
    name: str = "domain"
    #: Attribute names of the generated relation.
    schema: tuple[str, ...] = ("value",)

    def generate(self, n_entities: int, seed: int = 0) -> list[tuple[str, ...]]:
        """Return ``n_entities`` unique clean rows."""
        rng = random.Random(seed)
        rows: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        attempts = 0
        while len(rows) < n_entities:
            batch = self._emit(rng)
            for row in batch:
                if len(rows) >= n_entities:
                    break
                if row in seen:
                    attempts += 1
                    if attempts > 40 * n_entities:
                        raise RuntimeError(
                            f"{self.name} generator vocabulary exhausted at "
                            f"{len(rows)} of {n_entities} rows"
                        )
                    continue
                seen.add(row)
                rows.append(row)
        return rows

    @abc.abstractmethod
    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        """Emit one entity or one family of related entities."""


class MediaGenerator(DomainGenerator):
    """Music tracks: ``(artist, track)``, modelled on the paper's Table 1.

    About a quarter of emissions are *series families* — one artist,
    one base title, several "Part"-suffixed variants — reproducing the
    "4th Elemynt / Ears-Eyes Part II-IV" structure that breaks global
    thresholds.  Popular titles are also reused across artists ("Are
    You Ready" appears under four artists in Table 1).
    """

    name = "media"
    schema = ("artist", "track")

    _ARTISTS = [
        "The Doors", "The Beatles", "Shania Twain", "Bob Dylan", "Aaliyah",
        "Radiohead", "Nirvana", "Pearl Jam", "Led Zeppelin", "Pink Floyd",
        "The Rolling Stones", "Fleetwood Mac", "The Eagles", "Queen",
        "David Bowie", "Elton John", "Stevie Wonder", "Marvin Gaye",
        "Aretha Franklin", "Johnny Cash", "Willie Nelson", "Dolly Parton",
        "Bruce Springsteen", "Tom Petty", "Neil Young", "Eric Clapton",
        "Jimi Hendrix", "Janis Joplin", "The Who", "The Kinks",
        "Miles Davis", "John Coltrane", "Ella Fitzgerald", "Billie Holiday",
        "Frank Sinatra", "Nat King Cole", "Ray Charles", "Sam Cooke",
        "Otis Redding", "Al Green", "Curtis Mayfield", "Isaac Hayes",
        "Creedence Clearwater Revival", "The Beach Boys", "Simon and Garfunkel",
        "Crosby Stills and Nash", "The Byrds", "The Band", "Grateful Dead",
        "Talking Heads", "The Clash", "The Cure", "Depeche Mode",
        "New Order", "Joy Division", "The Smiths", "REM", "U2",
    ]

    _TITLE_HEADS = [
        "Midnight", "Golden", "Broken", "Silent", "Electric", "Crimson",
        "Wandering", "Falling", "Rising", "Burning", "Frozen", "Hidden",
        "Lonely", "Dancing", "Shining", "Fading", "Restless", "Velvet",
        "Distant", "Endless", "Sacred", "Wild", "Gentle", "Hollow",
    ]

    _TITLE_TAILS = [
        "Highway", "River", "Dream", "Heart", "Moon", "Train", "Fire",
        "Rain", "Road", "Sky", "Light", "Shadow", "Wind", "Stone",
        "Garden", "Ocean", "Mountain", "City", "Star", "Echo", "Mirror",
        "Harbor", "Thunder", "Horizon",
    ]

    _POPULAR_TITLES = [
        "Are You Ready", "Hold On", "Stay With Me", "Let It Go",
        "Coming Home", "One More Time", "Falling Down",
    ]

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        roll = rng.random()
        artist = rng.choice(self._ARTISTS)
        if roll < 0.25:
            # A series family: distinct entities that are mutually close.
            base = f"{rng.choice(self._TITLE_HEADS)} {rng.choice(self._TITLE_TAILS)}"
            size = rng.randint(3, 5)
            rows = [(artist, base)]
            parts = ["Part II", "Part III", "Part IV", "Part V"]
            rows.extend((artist, f"{base} - {part}") for part in parts[: size - 1])
            return rows
        if roll < 0.35:
            # Popular title reused across artists (close tracks, far artists).
            return [(artist, rng.choice(self._POPULAR_TITLES))]
        title = f"{rng.choice(self._TITLE_HEADS)} {rng.choice(self._TITLE_TAILS)}"
        if rng.random() < 0.3:
            title = f"{title} {rng.choice(self._TITLE_TAILS)}"
        return [(artist, title)]


class OrgGenerator(DomainGenerator):
    """Organizations: ``(name, address, city, state, zipcode)``.

    Emits store-chain families ("Cascade Systems Outlet #1/#2" in one
    city) among standalone companies; this is the 3M-row relation of the
    paper's Figures 8-9, scaled down.
    """

    name = "org"
    schema = ("name", "address", "city", "state", "zipcode")

    _NAME_HEADS = [
        "Cascade", "Summit", "Pioneer", "Evergreen", "Harbor", "Granite",
        "Sterling", "Beacon", "Vanguard", "Keystone", "Liberty", "Frontier",
        "Pacific", "Atlantic", "Northern", "Western", "Central", "Global",
        "Apex", "Zenith", "Orion", "Atlas", "Phoenix", "Falcon", "Redwood",
        "Bluebird", "Ironwood", "Silverline", "Brightstar", "Clearwater",
    ]

    _NAME_CORES = [
        "Systems", "Software", "Logistics", "Foods", "Manufacturing",
        "Consulting", "Analytics", "Dynamics", "Industries", "Holdings",
        "Partners", "Solutions", "Networks", "Materials", "Energy",
        "Textiles", "Robotics", "Optics", "Plastics", "Instruments",
    ]

    _SUFFIXES = ["Corporation", "Incorporated", "Company", "Limited", "Group"]

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        head = rng.choice(self._NAME_HEADS)
        core = rng.choice(self._NAME_CORES)
        suffix = rng.choice(self._SUFFIXES)
        city, state, zipcode = rng.choice(_CITIES)
        street = (
            f"{rng.randint(1, 9999)} {rng.choice(_STREET_NAMES)} "
            f"{rng.choice(_STREET_TYPES)}"
        )
        if rng.random() < 0.2:
            # A chain family: numbered outlets sharing everything else.
            size = rng.randint(3, 4)
            return [
                (
                    f"{head} {core} Outlet {i + 1}",
                    street,
                    city,
                    state,
                    zipcode,
                )
                for i in range(size)
            ]
        return [(f"{head} {core} {suffix}", street, city, state, zipcode)]


class RestaurantGenerator(DomainGenerator):
    """Restaurant names, in the style of the Riddle Restaurants set."""

    name = "restaurants"
    schema = ("name",)

    _HEADS = [
        "Golden", "Jade", "Royal", "Little", "Blue", "Red", "Olive",
        "Silver", "Rustic", "Urban", "Coastal", "Sunny", "Old Town",
        "Corner", "Garden", "Harvest", "Copper", "Velvet", "Lucky",
        "Grand", "Happy", "Green",
    ]

    _CORES = [
        "Dragon", "Lotus", "Bistro", "Kitchen", "Table", "Grill", "Cafe",
        "Trattoria", "Cantina", "Diner", "Tavern", "Brasserie", "Palace",
        "Garden", "House", "Oven", "Spoon", "Fork", "Plate", "Pantry",
    ]

    _TAILS = ["", "Express", "and Bar", "Downtown", "on Main", "II"]

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        base = f"{rng.choice(self._HEADS)} {rng.choice(self._CORES)}"
        if rng.random() < 0.2:
            # Franchise family: base name plus location/format variants.
            variants = rng.sample(self._TAILS[1:], k=rng.randint(2, 3))
            rows = [(base,)]
            rows.extend((f"{base} {tail}",) for tail in variants)
            return rows
        tail = rng.choice(self._TAILS)
        name = f"{base} {tail}".strip()
        return [(name,)]


class BirdGenerator(DomainGenerator):
    """Bird species names, in the style of the Riddle BirdScott set."""

    name = "birds"
    schema = ("name",)

    _MODIFIERS = [
        "American", "Northern", "Southern", "Eastern", "Western", "Greater",
        "Lesser", "Common", "Mountain", "Prairie", "Arctic", "Tropical",
        "Spotted", "Striped", "Crested", "Hooded", "Ruby-throated",
        "Yellow-bellied", "Red-winged", "Black-capped", "White-crowned",
        "Golden-crowned", "Blue-gray", "Chestnut-sided",
    ]

    _BIRDS = [
        "Robin", "Sparrow", "Warbler", "Thrush", "Finch", "Wren", "Owl",
        "Hawk", "Falcon", "Heron", "Egret", "Sandpiper", "Plover", "Tern",
        "Gull", "Woodpecker", "Flycatcher", "Swallow", "Tanager",
        "Grosbeak", "Bunting", "Blackbird", "Oriole", "Kinglet",
    ]

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        bird = rng.choice(self._BIRDS)
        if rng.random() < 0.25:
            # Sibling species: Greater/Lesser X, Eastern/Western X.
            pair = rng.choice(
                [("Greater", "Lesser"), ("Eastern", "Western"),
                 ("Northern", "Southern"), ("American", "European")]
            )
            return [(f"{pair[0]} {bird}",), (f"{pair[1]} {bird}",)]
        return [(f"{rng.choice(self._MODIFIERS)} {bird}",)]


class ParkGenerator(DomainGenerator):
    """Park names: well-separated uniques, *no* families.

    The regime where the paper reports no improvement over global
    thresholds — kept family-free on purpose so benchmark F10 can show
    the same null result.
    """

    name = "parks"
    schema = ("name",)

    _PLACES = [
        "Yellowstone", "Yosemite", "Glacier", "Zion", "Acadia", "Olympic",
        "Badlands", "Arches", "Denali", "Everglades", "Shenandoah",
        "Redwood", "Sequoia", "Saguaro", "Katmai", "Biscayne", "Canyonlands",
        "Pinnacles", "Voyageurs", "Haleakala", "Wind Cave", "Mammoth Cave",
        "Bryce Canyon", "Capitol Reef", "Crater Lake", "Death Valley",
        "Grand Teton", "Great Basin", "Hot Springs", "Isle Royale",
        "Joshua Tree", "Kings Canyon", "Lassen Volcanic", "Mesa Verde",
        "Mount Rainier", "North Cascades", "Petrified Forest", "Rocky Mountain",
        "Theodore Roosevelt", "Virgin Islands", "Carlsbad Caverns",
        "Channel Islands", "Cuyahoga Valley", "Dry Tortugas", "Gates of the Arctic",
        "Glen Canyon", "Golden Gate", "Harpers Ferry", "Indiana Dunes",
        "Lake Clark", "Little Bighorn", "Muir Woods", "Natchez Trace",
        "Organ Pipe Cactus", "Point Reyes", "Sleeping Bear Dunes",
        "White Sands", "Wrangell St Elias", "Big Bend", "Black Canyon",
        "Blue Ridge", "Cape Cod", "Cape Hatteras", "Devils Tower",
    ]

    _KINDS = [
        "National Park", "State Park", "National Monument",
        "National Recreation Area", "Nature Preserve",
    ]

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        return [(f"{rng.choice(self._PLACES)} {rng.choice(self._KINDS)}",)]


class CensusGenerator(DomainGenerator):
    """Census-style records: ``(last, first, middle, number, street)``.

    Households — several people sharing surname, house number, and
    street — are the near-unique families of this domain.
    """

    name = "census"
    schema = ("last_name", "first_name", "middle_initial", "number", "street")

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        last = rng.choice(_LAST_NAMES)
        number = str(rng.randint(1, 9999))
        street = f"{rng.choice(_STREET_NAMES)} {rng.choice(_STREET_TYPES)}"
        size = 1
        if rng.random() < 0.3:
            size = rng.randint(2, 4)  # a household
        members = rng.sample(_FIRST_NAMES, k=min(size, len(_FIRST_NAMES)))
        rows = []
        for first in members:
            middle = rng.choice("ABCDEFGHJKLMNPRSTW")
            rows.append((last, first, middle, number, street))
        return rows


class ClaimsGenerator(DomainGenerator):
    """Insurance claims: the constraint-aware evaluation workload.

    ``(patient_id, provider, service_date, procedure, amount)`` rows
    where duplicate candidates are *structurally* confined: a
    resubmitted claim always shares its patient and provider and lands
    within the adjudication window of the original.  That is exactly
    what ``BlockKey(patient_id) ∧ BlockKey(provider) ∧
    TimeWindow(service_date, 30)`` expresses, so this domain is where
    ``bench-constraints`` measures pushdown against postprocess.

    The near-unique families are *treatment series*: one patient, one
    provider, several legitimate sessions of the same procedure days
    apart.  They sit inside one constraint block with highly similar
    text, which is what keeps pushdown honest — blocks still need the
    SN criterion, they are not trivially all-duplicates.
    """

    name = "claims"
    schema = ("patient_id", "provider", "service_date", "procedure", "amount")

    _PROVIDERS = [
        "Lakeside Clinic", "Summit Medical Group", "Riverbend Hospital",
        "Cascade Family Practice", "Harbor Health Center", "Evergreen Care",
        "Pioneer Orthopedics", "Beacon Imaging", "Granite Physical Therapy",
        "Sterling Dermatology", "Keystone Cardiology", "Liberty Pediatrics",
        "Frontier Urgent Care", "Pacific Wellness", "Northern Radiology",
        "Valley Surgical Associates",
    ]

    _PROCEDURES = [
        "Office Visit Level", "Diagnostic Panel", "X Ray Series",
        "MRI Scan", "Ultrasound Exam", "Allergy Screening",
        "Annual Physical Exam", "Immunization Administration",
        "Laceration Repair", "Joint Injection", "Pulmonary Function Test",
        "Cardiac Stress Test", "Vision Screening", "Hearing Evaluation",
    ]

    _SERIES = [
        "Physical Therapy", "Occupational Therapy", "Chemotherapy Infusion",
        "Dialysis Treatment", "Radiation Therapy", "Speech Therapy",
        "Wound Care Follow Up", "Chiropractic Adjustment",
    ]

    def _amount(self, rng: random.Random) -> str:
        return f"{rng.randint(40, 900)}.{rng.choice(('00', '25', '50', '75'))}"

    def _emit(self, rng: random.Random) -> list[tuple[str, ...]]:
        patient = f"P{rng.randint(0, 99999):05d}"
        provider = rng.choice(self._PROVIDERS)
        base = datetime.date(2024, 1, 1) + datetime.timedelta(
            days=rng.randrange(330)
        )
        if rng.random() < 0.25:
            # A treatment series: distinct sessions of one course of
            # care — same patient, same provider, days apart, nearly
            # identical text.  The claims domain's near-unique family.
            size = rng.randint(3, 5)
            procedure = rng.choice(self._SERIES)
            rows: list[tuple[str, ...]] = []
            day = base
            for session in range(size):
                rows.append(
                    (
                        patient,
                        provider,
                        day.isoformat(),
                        f"{procedure} Session {session + 1}",
                        self._amount(rng),
                    )
                )
                day += datetime.timedelta(days=rng.randint(3, 10))
            return rows
        procedure = rng.choice(self._PROCEDURES)
        if procedure == "Office Visit Level":
            procedure = f"{procedure} {rng.randint(1, 5)}"
        return [
            (
                patient,
                provider,
                base.isoformat(),
                procedure,
                self._amount(rng),
            )
        ]


#: Registry keyed by dataset name (the paper's six evaluation datasets,
#: plus the claims constraint workload).
GENERATORS: dict[str, DomainGenerator] = {
    generator.name: generator
    for generator in (
        MediaGenerator(),
        OrgGenerator(),
        RestaurantGenerator(),
        BirdGenerator(),
        ParkGenerator(),
        CensusGenerator(),
        ClaimsGenerator(),
    )
}
