"""Error injection: how fuzzy duplicates are made.

The paper's duplicates arise from "data entry errors, varying
conventions, and a variety of other reasons" — its Table 1 shows the
whole spectrum: dropped articles ("The Doors" / "Doors"), inverted name
order ("Twian, Shania"), typos ("Simson", "Twian"), apostrophe and
spacing variations ("Im Holdin" / "I'm Holding"), singular/plural
drift ("Friend" / "Friends"), and abbreviations ("WA" / "Washington",
"corp" / "corporation").

:class:`ErrorModel` reproduces these error classes with a seeded RNG so
datasets are deterministic.  Typo positions and operation choices are
drawn uniformly; abbreviation expansion uses a domain dictionary.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Sequence

__all__ = ["ErrorModel", "DEFAULT_ABBREVIATIONS"]

#: Bidirectional abbreviation dictionary (expanded <-> contracted).
DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "corporation": "corp",
    "incorporated": "inc",
    "company": "co",
    "limited": "ltd",
    "street": "st",
    "avenue": "ave",
    "boulevard": "blvd",
    "road": "rd",
    "drive": "dr",
    "north": "n",
    "south": "s",
    "east": "e",
    "west": "w",
    "saint": "st",
    "mount": "mt",
    "fort": "ft",
    "restaurant": "rest",
    "national": "natl",
    "united states": "usa",
    "washington": "wa",
    "california": "ca",
    "and": "&",
}


class ErrorModel:
    """A seeded generator of realistic string corruptions.

    Parameters
    ----------
    seed:
        RNG seed (datasets built from the same seed are identical).
    abbreviations:
        Token-level abbreviation dictionary applied in both directions.
    """

    def __init__(
        self,
        seed: int = 0,
        abbreviations: dict[str, str] | None = None,
    ):
        self.rng = random.Random(seed)
        self.abbreviations = dict(
            abbreviations if abbreviations is not None else DEFAULT_ABBREVIATIONS
        )
        self._expansions = {v: k for k, v in self.abbreviations.items()}
        # Character-level typos are far more frequent than structural
        # convention changes in real entry errors; the weights keep the
        # generated duplicates mostly recoverable (as in the paper's
        # datasets, where recall can reach ~0.9) while still producing
        # the occasional far duplicate that defeats global thresholds.
        self._operations: list[tuple[Callable[[str], str], int]] = [
            (self.typo_substitute, 4),
            (self.typo_insert, 3),
            (self.typo_delete, 4),
            (self.typo_transpose, 4),
            (self.strip_punctuation, 2),
            (self.abbreviate, 2),
            (self.expand, 2),
            (self.merge_tokens, 1),
            (self.drop_token, 1),
            (self.swap_tokens, 1),
            (self.move_leading_article, 1),
            (self.initial_token, 1),
        ]
        self._op_funcs = [op for op, _ in self._operations]
        self._op_weights = [weight for _, weight in self._operations]

    # ------------------------------------------------------------------
    # Character-level typos
    # ------------------------------------------------------------------

    def _random_position(self, text: str) -> int:
        return self.rng.randrange(len(text))

    def typo_substitute(self, text: str) -> str:
        """Replace one character with a random lowercase letter."""
        if not text:
            return text
        i = self._random_position(text)
        letter = self.rng.choice(string.ascii_lowercase)
        return text[:i] + letter + text[i + 1 :]

    def typo_insert(self, text: str) -> str:
        """Insert one random lowercase letter."""
        i = self.rng.randrange(len(text) + 1)
        letter = self.rng.choice(string.ascii_lowercase)
        return text[:i] + letter + text[i:]

    def typo_delete(self, text: str) -> str:
        """Delete one character (never deletes the whole string)."""
        if len(text) <= 1:
            return text
        i = self._random_position(text)
        return text[:i] + text[i + 1 :]

    def typo_transpose(self, text: str) -> str:
        """Swap two adjacent characters ("Twain" -> "Twian")."""
        if len(text) < 2:
            return text
        i = self.rng.randrange(len(text) - 1)
        return text[:i] + text[i + 1] + text[i] + text[i + 2 :]

    # ------------------------------------------------------------------
    # Token-level conventions
    # ------------------------------------------------------------------

    def drop_token(self, text: str) -> str:
        """Remove one word (dropped article / middle name / suffix)."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        i = self.rng.randrange(len(tokens))
        return " ".join(tokens[:i] + tokens[i + 1 :])

    def swap_tokens(self, text: str) -> str:
        """Swap two adjacent words ("Lisa Simpson" -> "Simpson Lisa")."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        i = self.rng.randrange(len(tokens) - 1)
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
        return " ".join(tokens)

    def abbreviate(self, text: str) -> str:
        """Contract a known token ("corporation" -> "corp")."""
        tokens = text.split()
        candidates = [
            i for i, token in enumerate(tokens) if token.lower() in self.abbreviations
        ]
        if not candidates:
            return text
        i = self.rng.choice(candidates)
        tokens[i] = self.abbreviations[tokens[i].lower()]
        return " ".join(tokens)

    def expand(self, text: str) -> str:
        """Expand a known abbreviation ("corp" -> "corporation")."""
        tokens = text.split()
        candidates = [
            i for i, token in enumerate(tokens) if token.lower() in self._expansions
        ]
        if not candidates:
            return text
        i = self.rng.choice(candidates)
        tokens[i] = self._expansions[tokens[i].lower()]
        return " ".join(tokens)

    def move_leading_article(self, text: str) -> str:
        """"The Beatles" -> "Beatles, The" (library catalog convention)."""
        tokens = text.split()
        if len(tokens) >= 2 and tokens[0].lower() in ("the", "a", "an", "los", "les"):
            return " ".join(tokens[1:]) + ", " + tokens[0]
        return text

    def strip_punctuation(self, text: str) -> str:
        """Drop apostrophes and periods ("I'm" -> "Im")."""
        return text.replace("'", "").replace(".", "").replace(",", "")

    def merge_tokens(self, text: str) -> str:
        """Remove a space between two words ("data base" -> "database")."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        i = self.rng.randrange(len(tokens) - 1)
        merged = tokens[:i] + [tokens[i] + tokens[i + 1]] + tokens[i + 2 :]
        return " ".join(merged)

    def initial_token(self, text: str) -> str:
        """Reduce a word to its initial ("Rajeev Motwani" -> "R Motwani")."""
        tokens = text.split()
        if len(tokens) < 2:
            return text
        i = self.rng.randrange(len(tokens))
        tokens[i] = tokens[i][0].upper()
        return " ".join(tokens)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def corrupt(self, text: str, n_errors: int = 2) -> str:
        """Apply ``n_errors`` randomly chosen operations to ``text``.

        Operations that happen to be no-ops on the given string (e.g.
        abbreviation with no known token) are retried with a different
        operation a few times, so corruption pressure stays roughly
        uniform across domains.
        """
        result = text
        for _ in range(n_errors):
            for _attempt in range(4):
                operation = self.rng.choices(
                    self._op_funcs, weights=self._op_weights, k=1
                )[0]
                changed = operation(result)
                if changed != result:
                    result = changed
                    break
        return result

    def corrupt_fields(
        self,
        fields: Sequence[str],
        n_errors: int = 2,
        min_field_errors: int = 1,
        eligible_fields: Sequence[int] | None = None,
    ) -> tuple[str, ...]:
        """Corrupt a multi-field record, spreading errors across fields.

        Non-empty fields are chosen uniformly; each chosen field
        receives at least ``min_field_errors`` of the error budget.
        ``eligible_fields`` restricts corruption to those field
        indexes — identifier fields a workload must keep intact.
        """
        result = list(fields)
        candidates = (
            range(len(result)) if eligible_fields is None else eligible_fields
        )
        eligible = [i for i in candidates if result[i]]
        if not eligible:
            return tuple(result)
        for _ in range(max(n_errors, min_field_errors)):
            i = self.rng.choice(eligible)
            result[i] = self.corrupt(result[i], n_errors=1)
        return tuple(result)
