"""The NN relation: Phase 1 output (paper's ``NN_Reln[ID, NN-List, NG]``).

Each record contributes one :class:`NNEntry` holding its ordered
nearest-neighbor list and its neighborhood growth ``ng``.  For the size
specification ``DE_S(K)`` the list holds the K nearest others; for the
diameter specification ``DE_D(θ)`` it holds all others within θ.

The *i-neighbor set* of a record — the set containing the record itself
plus its ``i - 1`` nearest others — is the object the CS criterion
compares between tuple pairs: a set ``S`` of size ``m`` is compact iff
the m-neighbor sets of all its members coincide (and equal ``S``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.index.base import Neighbor

__all__ = ["NNEntry", "NNRelation", "entry_to_row", "entry_from_row"]


@dataclass(frozen=True)
class NNEntry:
    """One row of the NN relation.

    Parameters
    ----------
    rid:
        Record identifier.
    neighbors:
        Other records ordered by ``(distance, rid)``; self excluded.
    ng:
        Neighborhood growth of the record (self included, as in the
        paper's Table 1 discussion where unique tuples sit in growth-4
        neighborhoods).
    """

    rid: int
    neighbors: tuple[Neighbor, ...]
    ng: int

    @property
    def neighbor_ids(self) -> tuple[int, ...]:
        return tuple(n.rid for n in self.neighbors)

    @property
    def nn_distance(self) -> float:
        """Distance to the nearest other record (``inf`` if none)."""
        if not self.neighbors:
            return float("inf")
        return self.neighbors[0].distance

    def prefix_set(self, size: int) -> frozenset[int]:
        """The ``size``-neighbor set: self plus the ``size - 1`` nearest.

        Raises :class:`ValueError` when the stored list is too short to
        answer (callers bound ``size`` by :meth:`max_group_size`).
        """
        if size < 1:
            raise ValueError("neighbor-set size must be at least 1")
        if size - 1 > len(self.neighbors):
            raise ValueError(
                f"record {self.rid} has only {len(self.neighbors)} neighbors; "
                f"cannot form a {size}-neighbor set"
            )
        return frozenset((self.rid, *(n.rid for n in self.neighbors[: size - 1])))

    @property
    def max_group_size(self) -> int:
        """Largest group size this entry can participate in checks for."""
        return len(self.neighbors) + 1

    def contains_within_list(self, rid: int) -> bool:
        """Whether ``rid`` appears anywhere in the stored NN list."""
        return any(n.rid == rid for n in self.neighbors)


class NNRelation:
    """The materialized Phase-1 output, keyed by record id."""

    def __init__(self, entries: Mapping[int, NNEntry] | None = None):
        self._entries: dict[int, NNEntry] = dict(entries or {})

    def add(self, entry: NNEntry) -> None:
        if entry.rid in self._entries:
            raise ValueError(f"duplicate NN entry for record {entry.rid}")
        self._entries[entry.rid] = entry

    def get(self, rid: int) -> NNEntry:
        return self._entries[rid]

    def __contains__(self, rid: int) -> bool:
        return rid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NNEntry]:
        """Iterate entries in ascending record-id order."""
        return iter(sorted(self._entries.values(), key=lambda e: e.rid))

    def ids(self) -> list[int]:
        return sorted(self._entries)

    def ng_values(self) -> list[int]:
        """All neighborhood growths (input to the SN threshold heuristic)."""
        return [entry.ng for entry in self]

    def nn_lists(self) -> dict[int, tuple[Neighbor, ...]]:
        """id -> neighbor list mapping (used by the ``thr`` baseline)."""
        return {rid: entry.neighbors for rid, entry in self._entries.items()}

    def as_rows(self) -> list[tuple[int, tuple[int, ...], tuple[float, ...], int]]:
        """Render as ``(ID, NN-List, Distances, NG)`` rows for the
        storage engine (see ``repro.core.cspairs.NN_RELN_SCHEMA``).

        Distances ride along so a spilled table can be read back into a
        bit-identical NN relation (:func:`repro.core.cspairs
        .nn_relation_from_table`); the CSPairs join itself only touches
        the id list.
        """
        return [entry_to_row(entry) for entry in self]


def entry_to_row(
    entry: NNEntry,
) -> tuple[int, tuple[int, ...], tuple[float, ...], int]:
    """One NN entry as an ``(ID, NN-List, Distances, NG)`` engine row."""
    return (
        entry.rid,
        entry.neighbor_ids,
        tuple(neighbor.distance for neighbor in entry.neighbors),
        entry.ng,
    )


def entry_from_row(row: tuple) -> NNEntry:
    """Inverse of :func:`entry_to_row` (exact, including distances)."""
    rid, neighbor_ids, distances, ng = row
    return NNEntry(
        rid=rid,
        neighbors=tuple(
            Neighbor(distance=distance, rid=other)
            for other, distance in zip(neighbor_ids, distances)
        ),
        ng=ng,
    )
