"""Minimal compact sets — paper section 4.5.2.

A compact SN set can, in contrived configurations, be the union of
disjoint smaller compact sets (the paper's ``{v1, v1', v2, v2', v3,
v3'}`` example of three duplicate pairs mutually close together).  The
*minimality* refinement forbids this: ``S`` is a minimal compact set if
no two disjoint non-trivial subsets of ``S`` are both compact.

As the paper prescribes, the refinement is a post-processing check:
groups that are unions of disjoint non-trivial compact subsets are
split into those subsets (recursively).  The check runs off the NN
relation: a candidate subset of size ``j`` anchored at member ``v`` is
``v``'s j-neighbor set, and it is compact iff all its members share
that j-neighbor set — the same prefix-set reasoning Phase 2 uses.

The paper's experiments found violations "very rare" on real data; the
pipeline therefore leaves the option off by default.
"""

from __future__ import annotations

from repro.core.neighborhood import NNRelation
from repro.core.result import Partition

__all__ = ["compact_subsets", "split_to_minimal", "enforce_minimality"]


def _prefix_compact(nn_relation: NNRelation, anchor: int, size: int) -> frozenset[int] | None:
    """Return the anchor's size-``size`` neighbor set if it is compact."""
    entry = nn_relation.get(anchor)
    if size > entry.max_group_size:
        return None
    candidate = entry.prefix_set(size)
    for member in candidate:
        if member == anchor:
            continue
        if member not in nn_relation:
            return None
        other = nn_relation.get(member)
        if size > other.max_group_size or other.prefix_set(size) != candidate:
            return None
    return candidate


def compact_subsets(
    nn_relation: NNRelation, group: tuple[int, ...]
) -> list[frozenset[int]]:
    """All non-trivial proper compact subsets of ``group``.

    Compact sets containing a record are exactly its prefix-neighbor
    sets, so it suffices to scan sizes ``2 .. |group| - 1`` per member.
    """
    members = set(group)
    found: set[frozenset[int]] = set()
    for anchor in group:
        if anchor not in nn_relation:
            continue
        for size in range(2, len(group)):
            candidate = _prefix_compact(nn_relation, anchor, size)
            if candidate is not None and candidate < members:
                found.add(candidate)
    return sorted(found, key=lambda s: (len(s), sorted(s)))


def split_to_minimal(
    nn_relation: NNRelation, group: tuple[int, ...]
) -> list[tuple[int, ...]]:
    """Split ``group`` until every emitted group is a minimal compact set.

    If the group contains two *disjoint* non-trivial compact subsets, it
    is not minimal: replace it by its maximal disjoint compact subsets
    (largest first, deterministic) plus singletons for the remainder,
    recursing into each part.
    """
    if len(group) <= 3:
        # A size-2 or size-3 set cannot contain two disjoint subsets of
        # size >= 2.
        return [tuple(sorted(group))]
    subsets = compact_subsets(nn_relation, group)
    chosen: list[frozenset[int]] = []
    covered: set[int] = set()
    for subset in sorted(subsets, key=lambda s: (-len(s), sorted(s))):
        if not subset & covered:
            chosen.append(subset)
            covered |= subset
    if len(chosen) < 2:
        return [tuple(sorted(group))]
    parts: list[tuple[int, ...]] = []
    for subset in chosen:
        parts.extend(split_to_minimal(nn_relation, tuple(sorted(subset))))
    for rid in sorted(set(group) - covered):
        parts.append((rid,))
    return parts


def enforce_minimality(partition: Partition, nn_relation: NNRelation) -> Partition:
    """Apply the minimality refinement to every group of a partition."""
    groups: list[tuple[int, ...]] = []
    for group in partition:
        if len(group) <= 3:
            groups.append(group)
        else:
            groups.extend(split_to_minimal(nn_relation, group))
    return Partition.from_groups(groups)
