"""Borderline-pair review queues.

The paper argues for unsupervised DE because training data is scarce —
but practitioners still review *some* pairs by hand.  The productive
place to spend that budget is the decision boundary: pairs where the
criteria almost fired, or groups that almost failed.  This module ranks
those cases from a finished DE run, with no labels required:

- **near-miss pairs** — mutual nearest neighbors whose m-neighbor sets
  coincide but whose SN aggregate missed the threshold by little, or
  whose lists are mutual but prefix sets never align;
- **fragile groups** — emitted groups whose SN aggregate sits close to
  the threshold (one more nearby record would have dissolved them).

The output is deliberately a plain ranked list of
:class:`ReviewCandidate`; wiring it to a labeling UI is the caller's
business.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criteria import aggregate
from repro.core.cspairs import build_cs_pairs
from repro.core.formulation import DEParams
from repro.core.pipeline import DEResult

__all__ = ["ReviewCandidate", "near_miss_pairs", "fragile_groups"]


@dataclass(frozen=True)
class ReviewCandidate:
    """One item of the review queue, smaller margin = more urgent."""

    members: tuple[int, ...]
    kind: str
    #: Distance from the decision boundary (0 = right on it).
    margin: float
    reason: str

    def __lt__(self, other: "ReviewCandidate") -> bool:
        return (self.margin, self.members) < (other.margin, other.members)


def near_miss_pairs(
    result: DEResult,
    params: DEParams | None = None,
    limit: int = 20,
    sn_window: float = 2.0,
) -> list[ReviewCandidate]:
    """Ungrouped mutual-NN pairs closest to qualifying.

    ``sn_window`` bounds how far above ``c`` an SN aggregate may sit to
    still be worth a look.
    """
    params = params if params is not None else result.params
    candidates: list[ReviewCandidate] = []
    for pair in build_cs_pairs(result.nn_relation, params):
        if result.partition.same_group(pair.id1, pair.id2):
            continue
        if pair.supports_size(2):
            sn_value = aggregate(
                params.agg, [float(pair.ng1), float(pair.ng2)]
            )
            overshoot = sn_value - params.c
            if 0.0 <= overshoot <= sn_window:
                candidates.append(
                    ReviewCandidate(
                        members=(pair.id1, pair.id2),
                        kind="sn-near-miss",
                        margin=overshoot,
                        reason=(
                            f"mutual NN pair; {params.agg}(ng) = {sn_value:g} "
                            f"vs c = {params.c:g}"
                        ),
                    )
                )
        else:
            # Mutual within the cut but the 2-neighbor sets differ:
            # each is someone else's nearest.  Rank by how deep the
            # partner sits in the other's list.
            entry1 = result.nn_relation.get(pair.id1)
            entry2 = result.nn_relation.get(pair.id2)
            rank1 = entry1.neighbor_ids.index(pair.id2)
            rank2 = entry2.neighbor_ids.index(pair.id1)
            margin = float(rank1 + rank2)
            if margin <= 2.0:
                candidates.append(
                    ReviewCandidate(
                        members=(pair.id1, pair.id2),
                        kind="cs-near-miss",
                        margin=margin,
                        reason=(
                            "mutually listed but not mutual *nearest* "
                            f"neighbors (ranks {rank1} and {rank2})"
                        ),
                    )
                )
    candidates.sort()
    return candidates[:limit]


def fragile_groups(
    result: DEResult,
    params: DEParams | None = None,
    limit: int = 20,
    sn_window: float = 1.0,
) -> list[ReviewCandidate]:
    """Emitted groups whose SN aggregate nearly failed."""
    params = params if params is not None else result.params
    candidates: list[ReviewCandidate] = []
    for group in result.partition.non_trivial_groups():
        growths = [float(result.nn_relation.get(rid).ng) for rid in group]
        sn_value = aggregate(params.agg, growths)
        headroom = params.c - sn_value
        if 0.0 < headroom <= sn_window:
            candidates.append(
                ReviewCandidate(
                    members=group,
                    kind="fragile-group",
                    margin=headroom,
                    reason=(
                        f"grouped with {params.agg}(ng) = {sn_value:g}, only "
                        f"{headroom:g} below c = {params.c:g}"
                    ),
                )
            )
    candidates.sort()
    return candidates[:limit]
