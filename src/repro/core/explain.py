"""Explanations: *why* records were, or were not, grouped.

Adopters of a deduplication tool invariably ask "why didn't it merge
these two?"  This module answers mechanically, in terms of the paper's
criteria, from a finished :class:`~repro.core.pipeline.DEResult`:

- are the two records mutual nearest neighbors at any prefix size
  (the CS evidence)?
- what are their neighborhood growths, and does the group they would
  form pass the SN threshold?
- which constraint (CS / SN / cut specification / missing from each
  other's NN lists) is the binding one?

>>> explanation = explain_pair(result, rid_a, rid_b, params)
>>> print(explanation.render())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criteria import aggregate
from repro.core.cspairs import max_pair_size, nn_list_limit, prefix_equal_flags
from repro.core.formulation import DEParams
from repro.core.pipeline import DEResult

__all__ = ["PairExplanation", "explain_pair", "explain_group"]


@dataclass(frozen=True)
class PairExplanation:
    """Structured verdict for a record pair."""

    rid_a: int
    rid_b: int
    grouped: bool
    in_a_list: bool
    in_b_list: bool
    mutual: bool
    equal_set_sizes: tuple[int, ...]
    ng_a: int
    ng_b: int
    sn_value: float | None
    sn_threshold: float
    sn_passes: bool | None
    verdict: str

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [f"records {self.rid_a} and {self.rid_b}:"]
        lines.append(
            f"  grouped together: {'YES' if self.grouped else 'no'}"
        )
        lines.append(
            f"  NN-list membership: "
            f"{self.rid_b} in {self.rid_a}'s list: {self.in_a_list}; "
            f"{self.rid_a} in {self.rid_b}'s list: {self.in_b_list}"
        )
        if self.equal_set_sizes:
            lines.append(
                "  equal m-neighbor sets at sizes "
                f"{list(self.equal_set_sizes)} (CS evidence)"
            )
        else:
            lines.append("  no equal m-neighbor sets (no CS evidence)")
        lines.append(
            f"  neighborhood growths: ng({self.rid_a})={self.ng_a}, "
            f"ng({self.rid_b})={self.ng_b}"
        )
        if self.sn_value is not None:
            outcome = "passes" if self.sn_passes else "FAILS"
            lines.append(
                f"  SN check: AGG={self.sn_value:g} vs c={self.sn_threshold:g} "
                f"-> {outcome}"
            )
        lines.append(f"  verdict: {self.verdict}")
        return "\n".join(lines)


def explain_pair(
    result: DEResult, rid_a: int, rid_b: int, params: DEParams | None = None
) -> PairExplanation:
    """Explain the pipeline's decision for one pair of records."""
    params = params if params is not None else result.params
    if rid_a == rid_b:
        raise ValueError("explain_pair needs two distinct records")
    if rid_a > rid_b:
        rid_a, rid_b = rid_b, rid_a
    nn = result.nn_relation
    entry_a = nn.get(rid_a)
    entry_b = nn.get(rid_b)

    limit_a = nn_list_limit(params, len(entry_a.neighbors))
    limit_b = nn_list_limit(params, len(entry_b.neighbors))
    in_a = rid_b in entry_a.neighbor_ids[:limit_a]
    in_b = rid_a in entry_b.neighbor_ids[:limit_b]
    mutual = in_a and in_b

    equal_sizes: tuple[int, ...] = ()
    if mutual:
        max_m = max_pair_size(len(entry_a.neighbors), len(entry_b.neighbors), params)
        flags = prefix_equal_flags(
            rid_a, entry_a.neighbor_ids, rid_b, entry_b.neighbor_ids, max_m
        )
        equal_sizes = tuple(m for m, flag in enumerate(flags, start=2) if flag)

    sn_value: float | None = None
    sn_passes: bool | None = None
    if equal_sizes:
        sn_value = aggregate(params.agg, [float(entry_a.ng), float(entry_b.ng)])
        sn_passes = sn_value < params.c

    grouped = result.partition.same_group(rid_a, rid_b)

    if grouped:
        verdict = "grouped: compact SN set"
    elif not (in_a or in_b):
        verdict = "not candidates: absent from each other's NN lists"
    elif not mutual:
        verdict = "CS fails: not mutual nearest neighbors within the cut"
    elif not equal_sizes:
        verdict = "CS fails: m-neighbor sets never coincide"
    elif sn_passes is False:
        verdict = (
            f"SN fails: {params.agg}(ng) = {sn_value:g} not below c = {params.c:g}"
        )
    else:
        verdict = (
            "pair qualifies but was absorbed differently "
            "(a larger compact set won, or a partner was claimed first)"
        )

    return PairExplanation(
        rid_a=rid_a,
        rid_b=rid_b,
        grouped=grouped,
        in_a_list=in_a,
        in_b_list=in_b,
        mutual=mutual,
        equal_set_sizes=equal_sizes,
        ng_a=entry_a.ng,
        ng_b=entry_b.ng,
        sn_value=sn_value,
        sn_threshold=params.c,
        sn_passes=sn_passes,
        verdict=verdict,
    )


def explain_group(result: DEResult, rid: int) -> str:
    """Render the evidence for the group containing ``rid``."""
    group = result.partition.group_of(rid)
    nn = result.nn_relation
    lines = [f"group of record {rid}: {group}"]
    for member in group:
        entry = nn.get(member)
        neighbors = ", ".join(
            f"{n.rid}@{n.distance:.3f}" for n in entry.neighbors[:5]
        )
        lines.append(f"  [{member}] ng={entry.ng} nn-list: {neighbors}")
    if len(group) == 1:
        lines.append("  singleton: no compact SN group claimed this record")
    return "\n".join(lines)
