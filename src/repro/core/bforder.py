"""Breadth-first (BF) index lookup ordering — paper section 4.1.1.

Phase 1 looks up every tuple's nearest neighbors against a disk-resident
index.  Looking tuples up in relation order wastes the database buffer:
consecutive tuples are usually unrelated, so each lookup touches a cold
region of the index.  The BF order instead walks a conceptual tree whose
children are a node's nearest neighbors, so each lookup is preceded by
tuples close to it and hits pages the previous lookups already cached.

Per Figure 5, the order is produced online: a queue is seeded with an
arbitrary tuple; dequeuing an unvisited tuple performs its (real) index
lookup and enqueues its neighbors; when the queue drains, the scan of
``R`` continues from the next unvisited tuple.  The queue holds record
ids only and is capped (``max_queue``) as the paper prescribes for
bounded memory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Sequence

from repro.data.schema import Relation
from repro.index.base import Neighbor

__all__ = ["breadth_first_order", "random_order", "sequential_order"]


def breadth_first_order(
    relation: Relation,
    lookup: Callable[[int], Sequence[Neighbor]],
    max_queue: int = 100_000,
) -> Iterator[int]:
    """Yield record ids in BF order, driving ``lookup`` as a side effect.

    ``lookup(rid)`` must perform the actual index probe for ``rid`` and
    return its neighbor list; this function decides only the *order* of
    probes.  Each id is yielded exactly once, immediately after its
    lookup, so callers can consume ``(rid, result)`` pairs by capturing
    the lookup results themselves.

    Record ids are treated as opaque: they may be sparse, gapped, or
    non-zero-based.  Neighbor ids outside the relation (an index built
    over a superset, or stale postings) are skipped rather than
    enqueued, so the traversal never probes an id the relation cannot
    resolve.
    """
    visited: set[int] = set()  # the paper's bit vector H
    queue: deque[int] = deque()

    for record in relation:  # the outer scan of R
        if record.rid in visited:
            continue
        queue.append(record.rid)
        while queue:
            rid = queue.popleft()
            if rid in visited:
                continue
            visited.add(rid)
            neighbors = lookup(rid)
            yield rid
            for neighbor in neighbors:
                if (
                    neighbor.rid not in visited
                    and neighbor.rid in relation
                    and len(queue) < max_queue
                ):
                    queue.append(neighbor.rid)


def sequential_order(relation: Relation) -> list[int]:
    """Record ids in relation (insertion) order."""
    return relation.ids()


def random_order(relation: Relation, seed: int = 0) -> list[int]:
    """A seeded random permutation of record ids (the ``rnd`` baseline
    order of the Figure 8 experiment)."""
    import random

    ids = relation.ids()
    random.Random(seed).shuffle(ids)
    return ids
