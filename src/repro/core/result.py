"""Partition and group types shared by the DE solver and baselines.

A duplicate-elimination result is a *partition* of the relation's record
ids into groups; singleton groups mean "no duplicate found".  The class
stores a canonical form (each group sorted by id, groups sorted by their
minimum id) so that equality comparisons — used heavily by the
uniqueness / scale-invariance / consistency property tests — are
structural.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """An immutable partition of record ids into groups."""

    groups: tuple[tuple[int, ...], ...]
    _owner: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        seen: dict[int, int] = {}
        for index, group in enumerate(self.groups):
            for rid in group:
                if rid in seen:
                    raise ValueError(f"record {rid} appears in two groups")
                seen[rid] = index
        self._owner.update(seen)

    @classmethod
    def from_groups(cls, groups: Iterable[Iterable[int]]) -> "Partition":
        """Build a partition in canonical form from arbitrary groups."""
        canonical = sorted(
            (tuple(sorted(set(group))) for group in groups if group),
            key=lambda g: g[0],
        )
        return cls(groups=tuple(canonical))

    @classmethod
    def singletons(cls, rids: Iterable[int]) -> "Partition":
        """The all-singletons partition (no duplicates anywhere)."""
        return cls.from_groups([[rid] for rid in rids])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def group_of(self, rid: int) -> tuple[int, ...]:
        """Return the group containing ``rid``."""
        return self.groups[self._owner[rid]]

    def checksum(self) -> str:
        """A deterministic digest of the canonical groups.

        Two partitions share a checksum iff they are structurally equal
        (the stored form is canonical), which is how the benchmarks and
        the incremental-parity verify check phrase "bit-identical".
        """
        digest = hashlib.sha256()
        for group in self.groups:
            digest.update(repr(tuple(group)).encode())
        return digest.hexdigest()

    def ids(self) -> list[int]:
        """All record ids covered by the partition."""
        return sorted(self._owner)

    def non_trivial_groups(self) -> list[tuple[int, ...]]:
        """Groups of size at least 2 (the reported duplicates)."""
        return [group for group in self.groups if len(group) >= 2]

    def duplicate_pairs(self) -> set[tuple[int, int]]:
        """All unordered within-group pairs, as ``(min_id, max_id)``.

        This is the unit the paper's precision/recall metrics count.
        """
        pairs: set[tuple[int, int]] = set()
        for group in self.groups:
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    pairs.add((a, b))
        return pairs

    def same_group(self, a: int, b: int) -> bool:
        """Return whether two ids share a group."""
        return self._owner.get(a) is not None and self._owner.get(a) == self._owner.get(b)

    # ------------------------------------------------------------------
    # Relations between partitions
    # ------------------------------------------------------------------

    def refines(self, other: "Partition") -> bool:
        """True if every group of ``self`` is contained in a group of ``other``."""
        for group in self.groups:
            try:
                container = set(other.group_of(group[0]))
            except KeyError:
                return False
            if not set(group).issubset(container):
                return False
        return True

    def is_union_of_groups(self, group: Iterable[int], other: "Partition") -> bool:
        """True if ``group`` equals a union of whole groups of ``other``."""
        members = set(group)
        covered: set[int] = set()
        for rid in members:
            try:
                other_group = set(other.group_of(rid))
            except KeyError:
                return False
            if not other_group.issubset(members):
                return False
            covered |= other_group
        return covered == members

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __contains__(self, rid: int) -> bool:
        return rid in self._owner
