"""Constraining predicates — paper section 4.5.1.

A domain expert may know that certain tuple pairs *cannot* be duplicates
(e.g. two product descriptions identical but for the version number).
Such negative knowledge plugs into the DE formulation as a
post-processing check: any group containing a forbidden pair is split.

The paper leaves the split policy open ("we would further split the
group"); we split into the connected components of the *allowed-pair*
graph restricted to the group, and then, if a component still contains a
forbidden pair (possible through transitive allowed links), peel members
greedily so that no emitted group violates the predicate.  The policy is
deterministic and conservative: it only ever splits, never merges, so
the CS/SN guarantees of the remaining groups are preserved group-wise
(each output group is a subset of an input group).

Positive knowledge ("these two ARE duplicates") deliberately has no
hook, as the paper notes the formulation does not extend to it easily.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cluster.unionfind import DisjointSets
from repro.core.result import Partition
from repro.data.schema import Record, Relation

__all__ = ["CannotLinkPredicate", "apply_constraining_predicate", "split_group"]

#: ``predicate(a, b) -> True`` means "a and b cannot be duplicates".
CannotLinkPredicate = Callable[[Record, Record], bool]


def split_group(
    group: Iterable[int],
    relation: Relation,
    cannot_link: CannotLinkPredicate,
) -> list[list[int]]:
    """Split one group so no output subgroup contains a forbidden pair."""
    members = sorted(set(group))
    if len(members) <= 1:
        return [members]

    # One pass over the pairs: evaluate the predicate exactly once per
    # pair, recording forbidden pairs and unioning allowed ones as we
    # go — the allowed-pair components fall out of the same scan.
    forbidden: set[tuple[int, int]] = set()
    sets = DisjointSets(members)
    for i, a in enumerate(members):
        record_a = relation.get(a)
        for b in members[i + 1 :]:
            if cannot_link(record_a, relation.get(b)):
                forbidden.add((a, b))
            else:
                sets.union(a, b)
    if not forbidden:
        return [members]

    subgroups: list[list[int]] = []
    for component in sets.groups():
        subgroups.extend(_peel_forbidden(component, forbidden))
    return subgroups


def _peel_forbidden(
    component: list[int], forbidden: set[tuple[int, int]]
) -> list[list[int]]:
    """Greedily peel members until the component has no forbidden pair."""
    members = sorted(component)
    peeled: list[int] = []
    while True:
        violations = [
            (a, b)
            for i, a in enumerate(members)
            for b in members[i + 1 :]
            if (a, b) in forbidden
        ]
        if not violations:
            break
        # Remove the member involved in the most violations (largest id
        # breaks ties, so older/smaller ids keep their group).
        counts: dict[int, int] = {}
        for a, b in violations:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        victim = max(counts, key=lambda rid: (counts[rid], rid))
        members.remove(victim)
        peeled.append(victim)
    groups = [members] if members else []
    groups.extend([rid] for rid in peeled)
    return groups


def apply_constraining_predicate(
    partition: Partition,
    relation: Relation,
    cannot_link: CannotLinkPredicate,
) -> Partition:
    """Split every group of ``partition`` violating ``cannot_link``."""
    groups: list[list[int]] = []
    for group in partition:
        groups.extend(split_group(group, relation, cannot_link))
    return Partition.from_groups(groups)
