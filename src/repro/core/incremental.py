"""Incremental duplicate elimination under record insertions.

The paper solves DE as a batch problem; production tables grow.  This
module maintains the Phase-1 state (NN lists and neighborhood growths)
under single-record inserts and re-runs the cheap Phase 2 on demand,
with the invariant — enforced by property tests — that the maintained
solution equals a from-scratch batch run at every point.

Cost model per insert (n = current size):

- distances from the new record to all existing records: O(n) distance
  evaluations (memoized, so Phase-2-triggered re-probes are free);
- NN-list maintenance: O(n log K);
- NG maintenance: only records with ``d(x, new) < p * nn_old(x)`` can
  change (the new record either enters their neighborhood or shrinks
  it); each such record's NG is recomputed exactly.

This makes inserts cheap in sparse regions (few affected records) and
honest in dense ones, and stays well below re-running Phase 1.
"""

from __future__ import annotations

from bisect import insort

from repro.core.formulation import CombinedCut, DEParams, SizeCut
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.partitioner import partition_records
from repro.core.cspairs import build_cs_pairs
from repro.core.result import Partition
from repro.data.schema import Record, Relation
from repro.distances.base import CachedDistance, DistanceFunction

__all__ = ["IncrementalDeduplicator"]


class IncrementalDeduplicator:
    """Maintains DE state for a growing relation.

    Parameters
    ----------
    distance:
        The tuple distance (corpus statistics are *frozen* at
        construction against the seed relation — re-prepare by
        rebuilding if IDF drift matters).
    params:
        The DE parameters (both cut specifications supported).
    seed:
        Optional initial relation to load in bulk.
    """

    def __init__(
        self,
        distance: DistanceFunction,
        params: DEParams,
        seed: Relation | None = None,
        schema: tuple[str, ...] = ("value",),
    ):
        self.params = params
        self.distance = (
            distance
            if isinstance(distance, CachedDistance)
            else CachedDistance(distance)
        )
        self.relation = Relation(
            name=(seed.name if seed is not None else "incremental"),
            schema=(seed.schema if seed is not None else tuple(schema)),
        )
        #: rid -> sorted full candidate list is not kept; only the
        #: cut-bounded lists plus nn distance and ng, as in NN_Reln.
        self._neighbors: dict[int, list] = {}
        self._ng: dict[int, int] = {}
        self._next_rid = 0
        if seed is not None:
            self.distance.prepare(seed)
            for record in seed:
                self.add(record.fields)

    # ------------------------------------------------------------------

    def add(self, fields: tuple[str, ...] | list[str]) -> int:
        """Insert a record; returns its assigned id."""
        from repro.index.base import Neighbor

        rid = self._next_rid
        self._next_rid += 1
        record = Record(rid, tuple(fields))
        existing = list(self.relation)
        self.relation.add(record)

        # Distances to everyone (memoized for later phases).
        distances = {
            other.rid: self.distance.distance(record, other) for other in existing
        }

        # The new record's own NN list.
        hits = sorted(Neighbor(d, other_rid) for other_rid, d in distances.items())
        self._neighbors[rid] = self._bound_list(hits)

        # Existing records: list maintenance + affected-NG detection.
        affected: list[int] = []
        for other in existing:
            other_rid = other.rid
            d = distances[other_rid]
            old_list = self._neighbors[other_rid]
            old_nn = old_list[0].distance if old_list else float("inf")
            if self._admits(other_rid, d):
                insort(old_list, Neighbor(d, rid))
                self._neighbors[other_rid] = self._bound_list(old_list)
            # A record is NG-affected when the newcomer lands inside its
            # p * nn neighborhood — including the degenerate zero-radius
            # neighborhood, where _compute_ng counts exact co-located
            # records (d == 0) but ``d < p * 0.0`` can never hold.
            if (
                old_nn == float("inf")
                or d < self.params.p * old_nn
                or (old_nn == 0.0 and d == 0.0)
            ):
                affected.append(other_rid)

        # Exact NG for the new record and all affected records.
        self._ng[rid] = self._compute_ng(record)
        for other_rid in affected:
            self._ng[other_rid] = self._compute_ng(self.relation.get(other_rid))
        return rid

    def _admits(self, rid: int, d: float) -> bool:
        """Whether a new neighbor at distance ``d`` belongs in rid's list."""
        current = self._neighbors[rid]
        if isinstance(self.params.cut, CombinedCut) and not d < self.params.theta:
            return False
        if isinstance(self.params.cut, (SizeCut, CombinedCut)):
            if len(current) < self.params.cut.k:
                return True
            return d <= current[-1].distance  # ties: id order decides later
        return d < self.params.theta

    def _bound_list(self, hits: list) -> list:
        if isinstance(self.params.cut, SizeCut):
            return hits[: self.params.cut.k]
        if isinstance(self.params.cut, CombinedCut):
            within = [h for h in hits if h.distance < self.params.theta]
            return within[: self.params.cut.k]
        return [h for h in hits if h.distance < self.params.theta]

    def _compute_ng(self, record: Record) -> int:
        """Exact NG by scan (distances are memoized pairwise)."""
        nn_d = float("inf")
        for other in self.relation:
            if other.rid == record.rid:
                continue
            d = self.distance.distance(record, other)
            if d < nn_d:
                nn_d = d
        if nn_d == float("inf"):
            return 1
        count = 1
        for other in self.relation:
            if other.rid == record.rid:
                continue
            d = self.distance.distance(record, other)
            if nn_d == 0.0:
                if d == 0.0:
                    count += 1
            elif d < self.params.p * nn_d:
                count += 1
        return count

    # ------------------------------------------------------------------

    def nn_relation(self) -> NNRelation:
        """Materialize the maintained Phase-1 state as an NN relation."""
        nn = NNRelation()
        for rid in sorted(self._neighbors):
            nn.add(
                NNEntry(
                    rid=rid,
                    neighbors=tuple(self._neighbors[rid]),
                    ng=self._ng[rid],
                )
            )
        return nn

    def partition(self) -> Partition:
        """Run Phase 2 over the maintained state."""
        pairs = build_cs_pairs(self.nn_relation(), self.params)
        return partition_records(self.relation.ids(), pairs, self.params)

    def __len__(self) -> int:
        return len(self.relation)
