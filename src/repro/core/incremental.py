"""Online duplicate elimination under record inserts *and* deletes.

The paper solves DE as a batch problem; a serving system answers "which
group does this record join?" per arrival.  This module maintains the
full DE state — NN lists, exact nearest neighbors, neighborhood
memberships, the CSPairs relation, and memoized per-component group
extractions — under single-record :meth:`IncrementalDeduplicator.add`
and :meth:`IncrementalDeduplicator.remove`, with the invariant
(enforced by property tests and the ``incremental`` verify checks) that
the maintained solution equals a from-scratch batch run at every point.

Cost model (n = current size, K = cut-bounded list length):

- **insert** — O(n) distance evaluations to the existing records (each
  unordered pair at most once, pinned in a per-operation memo), then
  O(log K) list maintenance and O(1) amortized neighborhood updates per
  existing record: the exact nearest neighbor is maintained explicitly,
  so a shrinking radius only *truncates* the stored membership list —
  no rescans;
- **remove** — O(n) membership checks plus one O(n)-evaluation rebuild
  per record that *referenced* the removed record (its cut list or its
  exact NN), which is O(K) records on average;
- **partition** — CSPairs rows are patched only for records whose
  maintained entry changed since the last call; group extraction is
  re-run only for mutual-NN connected components whose rows changed
  (component independence is the PR 5 sharding argument), so a quiet
  arrival re-extracts nothing.

Corpus-dependent distances (IDF-weighted cosine, fms) are prepared
lazily on the first arrival; ``refit_every`` re-prepares them — and
rebuilds all maintained state under the new statistics — every that
many operations, which bounds IDF drift (``refit_every=1`` gives exact
batch parity at every point, at batch cost).  Candidate generation can
be delegated to a persistent MinHash postings index
(:class:`repro.index.postings.PersistentMinHashPostings`) via
``candidates=``; that trades the exactness guarantee for per-insert
cost proportional to the candidate set, exactly like the approximate
batch indexes.
"""

from __future__ import annotations

import time
import warnings
from bisect import insort
from dataclasses import dataclass

from repro.core.cspairs import (
    CSPair,
    max_pair_size,
    nn_list_limit,
    prefix_equal_flags,
)
from repro.core.formulation import CombinedCut, DEParams, SizeCut
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.partitioner import extract_component_groups, mutual_components
from repro.core.result import Partition
from repro.data.schema import Record, Relation
from repro.distances.base import CachedDistance, DistanceFunction
from repro.index.base import Neighbor

__all__ = ["IncrementalDeduplicator", "OpStats", "RepairStats"]


@dataclass(frozen=True)
class OpStats:
    """Telemetry for one ``add`` / ``remove`` operation."""

    op: str
    rid: int
    #: Relation size after the operation.
    n: int
    #: Distinct unordered pairs evaluated (the per-operation memo size);
    #: no pair is ever evaluated twice within one operation, bounded
    #: cache or not.
    pinned_pairs: int
    #: Distance calls forwarded past the per-operation memo.
    distance_calls: int
    #: Inner (uncached) distance computations during the operation.
    cache_misses: int
    #: Entries rebuilt by a full scan (removals only).
    rebuilt: int
    #: Entries whose maintained Phase-1 state changed.
    dirty: int
    seconds: float


@dataclass(frozen=True)
class RepairStats:
    """Telemetry for one incremental :meth:`partition` repair."""

    n_pairs: int
    n_components: int
    #: Components re-extracted because their CSPairs rows changed.
    components_repaired: int
    #: Components whose cached group extraction was reused verbatim.
    components_reused: int
    seconds: float


class IncrementalDeduplicator:
    """Maintains the DE solution for a live relation.

    Parameters
    ----------
    distance:
        The tuple distance.  Corpus statistics are collected lazily on
        the first arrival (or against ``seed`` when given) and refreshed
        per ``refit_every``.  Wrapped in an unbounded
        :class:`~repro.distances.base.CachedDistance` unless one is
        supplied; a *bounded* cache is detected and warned about — the
        per-operation memo still pins each operation's working set, so
        no pair is evaluated twice within one insert or remove, but
        cross-operation re-probes of evicted pairs recompute.
    params:
        The DE parameters (all three cut specifications supported).
    seed:
        Optional initial relation to load in bulk.
    refit_every:
        Re-prepare the distance on the live relation (and rebuild all
        maintained state) every this many operations; ``None`` (the
        default) freezes the statistics collected at the first arrival.
    candidates:
        Optional persistent candidate index (duck-typed: ``add(record)``
        / ``remove(rid)`` / ``candidates(record) -> list[int]`` /
        ``__contains__`` — rids already present, i.e. warm-restored
        from a postings log, are not re-added).  When
        given, arrivals only evaluate distances to surfaced candidates —
        approximate, like the batch MinHash index; leave ``None`` for
        the exact-parity guarantee.
    max_cache_entries:
        Bound for the internally created distance cache (``None`` =
        unbounded).  Long-lived sessions should bound it: the pair cache
        otherwise grows O(n²).  Removals invalidate the removed record's
        cached pairs on unbounded caches (bounded ones age them out via
        eviction; rids are never reused, so stale pairs are
        unreachable either way).
    constraints, constraint_mode:
        Constraints (:mod:`repro.core.constraints`) the maintained
        solution must respect.  ``"postprocess"`` splits groups at
        :meth:`partition` only — parity with the batch postprocess
        mode.  ``"pushdown"`` (or ``"inline"``: they coincide online,
        where there is no planning phase) additionally filters
        forbidden pairs out of the maintained CSPairs relation as rows
        are patched — parity with the batch inline mode.  The NN scan
        is never pruned: per-arrival Phase 1 stays globally exact, so
        ``incremental-nn-parity`` holds in every mode.
    """

    def __init__(
        self,
        distance: DistanceFunction,
        params: DEParams,
        seed: Relation | None = None,
        schema: tuple[str, ...] = ("value",),
        *,
        refit_every: int | None = None,
        candidates=None,
        max_cache_entries: int | None = None,
        constraints=(),
        constraint_mode: str = "postprocess",
    ):
        if refit_every is not None and refit_every <= 0:
            raise ValueError("refit_every must be positive (or None)")
        if constraint_mode not in ("postprocess", "pushdown", "inline"):
            raise ValueError(
                f"unknown constraint mode {constraint_mode!r}; expected "
                "'postprocess', 'pushdown', or 'inline'"
            )
        self.params = params
        self.refit_every = refit_every
        self.candidates = candidates
        if isinstance(distance, CachedDistance):
            self.distance = distance
            if distance.max_entries is not None:
                warnings.warn(
                    "IncrementalDeduplicator received a bounded "
                    f"CachedDistance (max_entries={distance.max_entries}); "
                    "each operation's working set is pinned in a "
                    "per-operation memo, but re-probes of evicted pairs "
                    "across operations will recompute distances",
                    stacklevel=2,
                )
        else:
            self.distance = CachedDistance(distance, max_entries=max_cache_entries)
        self.relation = Relation(
            name=(seed.name if seed is not None else "incremental"),
            schema=(seed.schema if seed is not None else tuple(schema)),
        )
        from repro.core.constraints import (
            Constraint,
            PairFilter,
            constraint_from_dict,
        )

        self.constraints = tuple(
            c if isinstance(c, Constraint) else constraint_from_dict(c)
            for c in constraints
        )
        self.constraint_mode = constraint_mode
        #: Compiled conjunction (validates fields against the schema).
        self._pair_filter = (
            PairFilter(self.constraints, self.relation.schema)
            if self.constraints
            else None
        )
        #: rid -> cut-bounded NN list, exactly as Phase 1 would store it.
        self._neighbors: dict[int, list[Neighbor]] = {}
        #: rid -> exact nearest neighbor over *all* other records —
        #: maintained beyond the cut so theta-cut records with an empty
        #: list still know their radius (``None`` = no other records).
        self._true_nn: dict[int, Neighbor | None] = {}
        #: rid -> sorted members of the ``p * nn`` neighborhood (the
        #: records NG counts); ``ng = len(members) + 1``.
        self._nbhd: dict[int, list[Neighbor]] = {}
        self._ng: dict[int, int] = {}
        self._next_rid = 0
        # Incrementally maintained Phase-2 state.
        self._pairs: dict[tuple[int, int], CSPair] = {}
        self._pair_keys: dict[int, set[tuple[int, int]]] = {}
        self._dirty: set[int] = set()
        self._component_groups: dict[tuple, tuple[tuple[int, ...], ...]] = {}
        self._partition_cache: Partition | None = None
        # Lazy-prepare / refit bookkeeping (the no-seed construction
        # used to skip prepare() entirely, scoring IDF metrics against
        # an empty corpus).
        self._prepared = False
        self._ops_since_refit = 0
        #: Number of distance re-preparations performed (telemetry).
        self.refits = 0
        #: Telemetry of the latest operation / partition repair.
        self.last_op: OpStats | None = None
        self.last_repair: RepairStats | None = None
        # Per-operation pair memo (satellite of the bounded-cache fix).
        self._op_memo: dict[tuple[int, int], float] = {}
        self._op_calls = 0
        self._op_marked: set[int] = set()
        if seed is not None:
            self.distance.prepare(seed)
            self._prepared = True
            for record in seed:
                self.add(record.fields)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add(self, fields: tuple[str, ...] | list[str]) -> int:
        """Insert a record; returns its assigned id."""
        start = time.perf_counter()
        rid = self._next_rid
        self._next_rid += 1
        record = Record(rid, tuple(fields))
        self.relation.add(record)
        # A rid the candidate index already holds is a warm-restart
        # replay: its persisted signature is reused, not recomputed.
        if self.candidates is not None and rid not in self.candidates:
            self.candidates.add(record)
        self._begin_op()
        if not self._prepared or self._refit_due():
            self._refit()
        else:
            self._apply_insert(record)
        self._ops_since_refit += 1
        self._finish_op("add", rid, start)
        return rid

    def remove(self, rid: int) -> None:
        """Delete a record, with bounded recomputation.

        Only records that *referenced* the removed record — it sat in
        their cut-bounded NN list, or it was their exact nearest
        neighbor (the radius-defining record) — are rebuilt by a scan;
        every other record at most loses the removed record from its
        neighborhood membership, an O(|neighborhood|) patch with no
        distance evaluations at all.  Raises :class:`KeyError` for an
        unknown id.
        """
        start = time.perf_counter()
        self.relation.get(rid)  # KeyError before any state is touched
        self._begin_op()
        self.relation.remove(rid)
        if self.candidates is not None:
            self.candidates.remove(rid)
        rebuilds: list[int] = []
        if self._refit_due():
            self._drop_entry_state(rid)
            self._refit()
        else:
            for other in self.relation:
                orid = other.rid
                if any(nb.rid == rid for nb in self._neighbors[orid]):
                    rebuilds.append(orid)
                    continue
                t = self._true_nn[orid]
                if t is not None and t.rid == rid:
                    rebuilds.append(orid)
                    continue
                nbh = self._nbhd[orid]
                kept = [m for m in nbh if m.rid != rid]
                if len(kept) != len(nbh):
                    self._nbhd[orid] = kept
                    self._ng[orid] = len(kept) + 1
                    self._mark_dirty(orid)
            self._drop_entry_state(rid)
            # Rids are never reused, so a removed record's cached pairs
            # can never be probed again — invalidation exists purely to
            # stop unbounded growth across a long session.  A bounded
            # cache already handles that via eviction; skipping the
            # full-cache sweep keeps removals O(n).
            if (
                isinstance(self.distance, CachedDistance)
                and self.distance.max_entries is None
            ):
                self.distance.invalidate_rid(rid)
            for orid in rebuilds:
                self._rebuild_entry(self.relation.get(orid))
        self._ops_since_refit += 1
        self._finish_op("remove", rid, start, rebuilt=len(rebuilds))

    def refit(self) -> None:
        """Re-prepare the distance on the live relation and rebuild.

        The explicit IDF-drift valve: corpus statistics frozen at the
        first arrival eventually misweight tokens as the relation
        evolves.  Also runs automatically per ``refit_every``.
        """
        start = time.perf_counter()
        self._begin_op()
        self._refit()
        self._finish_op("refit", -1, start)

    # ------------------------------------------------------------------
    # Insert path
    # ------------------------------------------------------------------

    def _apply_insert(self, record: Record) -> None:
        rid = record.rid
        p = self.params.p
        targets = self._scan_targets(record)
        hits = sorted(Neighbor(self._d(record, o), o.rid) for o in targets)
        self._neighbors[rid] = self._bound_list(hits)
        nn, members = self._neighborhood(hits)
        self._true_nn[rid] = nn
        self._nbhd[rid] = members
        self._ng[rid] = len(members) + 1
        self._mark_dirty(rid)

        for other in targets:
            orid = other.rid
            d = self._d(record, other)  # pinned: free re-probe
            changed = False
            # Cut-bounded NN list: insert if admitted, re-bound.  The
            # newcomer survives the bound unless it ties the size-cut
            # boundary (its id is the largest, so it sorts last).
            if self._admits(orid, d):
                lst = self._neighbors[orid]
                insort(lst, Neighbor(d, rid))
                lst = self._bound_list(lst)
                self._neighbors[orid] = lst
                changed = any(nb.rid == rid for nb in lst)
            # Exact NN and neighborhood membership.  The radius can only
            # shrink on insert, so the stored membership list is
            # re-filtered — never rescanned.
            cand = Neighbor(d, rid)
            t_old = self._true_nn[orid]
            old_members = self._nbhd[orid]
            if t_old is None or cand < t_old:
                t_new = cand
                if d == 0.0:
                    members = [m for m in old_members if m.distance == 0.0]
                else:
                    cutoff = p * d
                    members = [m for m in old_members if m.distance < cutoff]
            else:
                t_new = t_old
                members = old_members
            # Does the newcomer itself land in the (possibly shrunk)
            # neighborhood?  Zero radius counts exact co-locations.
            if (d == 0.0) if t_new.distance == 0.0 else (d < p * t_new.distance):
                if members is old_members:
                    members = list(old_members)
                insort(members, cand)
            self._true_nn[orid] = t_new
            if members is not old_members:
                self._nbhd[orid] = members
            ng = len(members) + 1
            if ng != self._ng[orid]:
                self._ng[orid] = ng
                changed = True
            if changed:
                self._mark_dirty(orid)

    # ------------------------------------------------------------------
    # Shared state builders
    # ------------------------------------------------------------------

    def _d(self, a: Record, b: Record) -> float:
        """Pair distance through the per-operation memo.

        Guarantees each unordered pair is evaluated at most once per
        operation even when the underlying cache is bounded and has
        evicted the pair (the documented free-re-probe promise).
        """
        key = (a.rid, b.rid) if a.rid < b.rid else (b.rid, a.rid)
        value = self._op_memo.get(key)
        if value is None:
            value = self.distance.distance(a, b)
            self._op_memo[key] = value
            self._op_calls += 1
        return value

    def _scan_targets(self, record: Record) -> list[Record]:
        """The records an arrival is compared against."""
        if self.candidates is None:
            return [o for o in self.relation if o.rid != record.rid]
        surfaced = self.candidates.candidates(record)
        return [
            self.relation.get(rid)
            for rid in surfaced
            if rid != record.rid and rid in self.relation
        ]

    def _scan_hits(self, record: Record) -> list[Neighbor]:
        return sorted(
            Neighbor(self._d(record, o), o.rid) for o in self._scan_targets(record)
        )

    def _neighborhood(
        self, hits: list[Neighbor]
    ) -> tuple[Neighbor | None, list[Neighbor]]:
        """Exact NN and neighborhood members from a full sorted scan."""
        if not hits:
            return None, []
        nn = hits[0]
        if nn.distance == 0.0:
            members = [h for h in hits if h.distance == 0.0]
        else:
            cutoff = self.params.p * nn.distance
            members = [h for h in hits if h.distance < cutoff]
        return nn, members

    def _rebuild_entry(self, record: Record) -> None:
        """Recompute one record's entry by scan (removal repair path)."""
        rid = record.rid
        hits = self._scan_hits(record)
        lst = self._bound_list(hits)
        nn, members = self._neighborhood(hits)
        ng = len(members) + 1
        if lst != self._neighbors[rid] or ng != self._ng[rid]:
            self._mark_dirty(rid)
        self._neighbors[rid] = lst
        self._true_nn[rid] = nn
        self._nbhd[rid] = members
        self._ng[rid] = ng

    def _admits(self, rid: int, d: float) -> bool:
        """Whether a new neighbor at distance ``d`` belongs in rid's list."""
        current = self._neighbors[rid]
        if isinstance(self.params.cut, CombinedCut) and not d < self.params.theta:
            return False
        if isinstance(self.params.cut, (SizeCut, CombinedCut)):
            if len(current) < self.params.cut.k:
                return True
            return d <= current[-1].distance  # ties: id order decides later
        return d < self.params.theta

    def _bound_list(self, hits: list[Neighbor]) -> list[Neighbor]:
        if isinstance(self.params.cut, SizeCut):
            return hits[: self.params.cut.k]
        if isinstance(self.params.cut, CombinedCut):
            within = [h for h in hits if h.distance < self.params.theta]
            return within[: self.params.cut.k]
        return [h for h in hits if h.distance < self.params.theta]

    # ------------------------------------------------------------------
    # Refit / lazy preparation
    # ------------------------------------------------------------------

    def _refit_due(self) -> bool:
        return (
            self.refit_every is not None
            and self._ops_since_refit >= self.refit_every
        )

    def _refit(self) -> None:
        """Prepare the distance on the live relation, rebuild all state."""
        self.distance.prepare(self.relation)
        self._prepared = True
        self._ops_since_refit = 0
        self.refits += 1
        self._op_memo.clear()  # stale under the new corpus statistics
        self._neighbors.clear()
        self._true_nn.clear()
        self._nbhd.clear()
        self._ng.clear()
        for record in self.relation:
            hits = self._scan_hits(record)
            self._neighbors[record.rid] = self._bound_list(hits)
            nn, members = self._neighborhood(hits)
            self._true_nn[record.rid] = nn
            self._nbhd[record.rid] = members
            self._ng[record.rid] = len(members) + 1
        # Every pair is potentially stale under the new statistics.
        self._pairs.clear()
        self._pair_keys.clear()
        self._dirty = set(self._neighbors)
        self._op_marked.update(self._neighbors)
        self._partition_cache = None

    # ------------------------------------------------------------------
    # Incremental Phase 2
    # ------------------------------------------------------------------

    def _mark_dirty(self, rid: int) -> None:
        self._dirty.add(rid)
        self._op_marked.add(rid)
        self._partition_cache = None

    def _drop_entry_state(self, rid: int) -> None:
        """Forget one record's Phase-1 entry and its CSPairs rows."""
        self._neighbors.pop(rid, None)
        self._true_nn.pop(rid, None)
        self._nbhd.pop(rid, None)
        self._ng.pop(rid, None)
        self._dirty.discard(rid)
        for key in self._pair_keys.pop(rid, set()):
            if self._pairs.pop(key, None) is not None:
                other = key[0] if key[1] == rid else key[1]
                keys = self._pair_keys.get(other)
                if keys is not None:
                    keys.discard(key)
        self._partition_cache = None

    def _refresh_pairs(self) -> None:
        """Patch the maintained CSPairs relation for all dirty entries.

        A CSPairs row depends only on its two endpoints' cut lists and
        NGs, so rows with no dirty endpoint are reused verbatim.  For a
        dirty record, every row it anchors or partners is dropped and
        rebuilt from its (new) cut list with the same mutuality /
        flag-prefix logic as the batch builder — bit-identical rows by
        construction.
        """
        params = self.params
        # The online analogue of the batch inline mode: forbidden pairs
        # never enter the maintained CSPairs relation.  Postprocess mode
        # keeps them (parity with the paper-exact batch reference).
        pair_filter = (
            self._pair_filter
            if self.constraint_mode in ("pushdown", "inline")
            else None
        )
        for rid in list(self._dirty):
            for key in self._pair_keys.pop(rid, set()):
                if self._pairs.pop(key, None) is not None:
                    other = key[0] if key[1] == rid else key[1]
                    keys = self._pair_keys.get(other)
                    if keys is not None:
                        keys.discard(key)
        for rid in self._dirty:
            lst = self._neighbors.get(rid)
            if lst is None:
                continue
            limit = nn_list_limit(params, len(lst))
            for nb in lst[:limit]:
                orid = nb.rid
                olist = self._neighbors.get(orid)
                if olist is None:
                    continue
                olimit = nn_list_limit(params, len(olist))
                if not any(o.rid == rid for o in olist[:olimit]):
                    continue  # not mutual
                id1, id2 = (rid, orid) if rid < orid else (orid, rid)
                key = (id1, id2)
                if key in self._pairs:
                    continue  # both endpoints dirty: already rebuilt
                if pair_filter is not None and not pair_filter(
                    self.relation.get(id1), self.relation.get(id2)
                ):
                    continue
                l1, l2 = self._neighbors[id1], self._neighbors[id2]
                flags = prefix_equal_flags(
                    id1,
                    tuple(n.rid for n in l1),
                    id2,
                    tuple(n.rid for n in l2),
                    max_pair_size(len(l1), len(l2), params),
                )
                self._pairs[key] = CSPair(
                    id1=id1,
                    id2=id2,
                    ng1=self._ng[id1],
                    ng2=self._ng[id2],
                    flags=flags,
                )
                self._pair_keys.setdefault(id1, set()).add(key)
                self._pair_keys.setdefault(id2, set()).add(key)
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def nn_relation(self) -> NNRelation:
        """Materialize the maintained Phase-1 state as an NN relation."""
        nn = NNRelation()
        for rid in sorted(self._neighbors):
            nn.add(
                NNEntry(
                    rid=rid,
                    neighbors=tuple(self._neighbors[rid]),
                    ng=self._ng[rid],
                )
            )
        return nn

    def cs_pairs(self) -> list[CSPair]:
        """The maintained CSPairs relation, sorted by ``(id1, id2)``."""
        self._refresh_pairs()
        return sorted(self._pairs.values(), key=lambda pair: (pair.id1, pair.id2))

    def partition(self) -> Partition:
        """The DE solution over the live relation.

        Incremental: CSPairs rows are patched for dirty entries only,
        and group extraction re-runs only for mutual-NN components whose
        rows changed; unchanged components reuse their cached groups
        (exact — extraction is a pure function of a component's rows).
        """
        if self._partition_cache is not None:
            return self._partition_cache
        start = time.perf_counter()
        rows = self.cs_pairs()
        components = mutual_components(rows)
        groups: list[list[int]] = []
        memo: dict[tuple, tuple[tuple[int, ...], ...]] = {}
        repaired = 0
        for component in components:
            key = tuple(component)
            cached = self._component_groups.get(key)
            if cached is None:
                cached = tuple(
                    tuple(group)
                    for group in extract_component_groups(component, self.params)
                )
                repaired += 1
            memo[key] = cached
            groups.extend(list(group) for group in cached)
        self._component_groups = memo
        assigned = {rid for group in groups for rid in group}
        singles = [[rid] for rid in self.relation.ids() if rid not in assigned]
        partition = Partition.from_groups(groups + singles)
        if self._pair_filter is not None:
            # The unconditional zero-violation split — identical to the
            # batch postprocess stage, so checksum parity holds.
            from repro.core.predicates import apply_constraining_predicate

            partition = apply_constraining_predicate(
                partition, self.relation, self._pair_filter.forbids
            )
        self.last_repair = RepairStats(
            n_pairs=len(rows),
            n_components=len(components),
            components_repaired=repaired,
            components_reused=len(components) - repaired,
            seconds=time.perf_counter() - start,
        )
        self._partition_cache = partition
        return partition

    def __len__(self) -> int:
        return len(self.relation)

    # ------------------------------------------------------------------
    # Per-operation bookkeeping
    # ------------------------------------------------------------------

    def _begin_op(self) -> None:
        self._op_memo.clear()
        self._op_calls = 0
        self._op_marked = set()
        self._op_miss_base = self.distance.misses

    def _finish_op(self, op: str, rid: int, start: float, rebuilt: int = 0) -> None:
        self.last_op = OpStats(
            op=op,
            rid=rid,
            n=len(self.relation),
            pinned_pairs=len(self._op_memo),
            distance_calls=self._op_calls,
            cache_misses=self.distance.misses - self._op_miss_base,
            rebuilt=rebuilt,
            dirty=len(self._op_marked),
            seconds=time.perf_counter() - start,
        )
