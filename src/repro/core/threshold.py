"""SN threshold estimation — paper section 4.4.

Setting the sparse-neighborhood threshold ``c`` directly requires an
understanding of the data's NG distribution; the paper instead asks the
user for an easier quantity — the estimated *fraction f of duplicate
tuples* — and derives ``c`` from the cumulative NG distribution ``D``:

- duplicates overwhelmingly have small NG values, so ideally the
  f-percentile of ``D`` is the threshold;
- to be robust to estimation error, the heuristic looks for a *spike*
  in ``D`` (a point where the growth rate ``D'(x)`` exceeds 0.1) within
  a ±0.05 window around the f-percentile, and takes the least such
  value;
- if no spike exists, it falls back to ``D^{-1}(f + 0.05)``.

NG values are small integers, so ``D`` is a step function: ``D'(x)`` at
an attained value is the probability mass at that value.  A value is
considered *inside the window* when its cumulative step interval
``[D(prev), D(value)]`` overlaps ``[f - window, f + window]`` — a
single value whose probability mass straddles the whole window (the
cumulative jumps from below ``f - window`` to above ``f + window``) is
exactly the spike the heuristic should anchor on, not a fallback case.
The returned threshold is ``x + 1`` for the chosen NG value ``x``,
because the SN criterion is the strict comparison ``AGG({ng}) < c``
and tuples *at* the chosen value must pass.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ThresholdEstimate", "estimate_sn_threshold"]


@dataclass(frozen=True)
class ThresholdEstimate:
    """Outcome of the SN threshold heuristic."""

    #: The suggested SN threshold ``c`` (use as ``AGG < c``).
    c: float
    #: The NG value the heuristic anchored on (``c = ng_value + 1``).
    ng_value: int
    #: Whether a spike was found inside the window (else: fallback).
    spike_found: bool
    #: The cumulative fraction ``D(ng_value)``.
    cumulative: float


def estimate_sn_threshold(
    ng_values: Sequence[int],
    duplicate_fraction: float,
    window: float = 0.05,
    spike: float = 0.1,
) -> ThresholdEstimate:
    """Estimate the SN threshold ``c`` from NG values and an estimate
    of the duplicate fraction.

    Parameters
    ----------
    ng_values:
        Neighborhood growths of all tuples (Phase 1 output; the paper
        notes these can be reused since ``c`` is only needed in Phase 2).
    duplicate_fraction:
        The user's estimate ``f`` of the fraction of tuples that have
        duplicates, in (0, 1).
    window:
        Half-width of the percentile interval around ``f`` searched for
        a spike, in ``[0, 0.5)`` (paper: 0.05).
    spike:
        Probability-mass threshold defining a spike; must be positive
        (paper: ``D' > 0.1``).
    """
    if not ng_values:
        raise ValueError("ng_values must be non-empty")
    if not 0.0 < duplicate_fraction < 1.0:
        raise ValueError("duplicate_fraction must be in (0, 1)")
    if not 0.0 <= window < 0.5:
        raise ValueError("window must be in [0, 0.5)")
    if spike <= 0.0:
        raise ValueError("spike must be positive")

    total = len(ng_values)
    counts = Counter(ng_values)
    attained = sorted(counts)

    cumulative = 0.0
    cumulative_at: dict[int, float] = {}
    mass_at: dict[int, float] = {}
    for value in attained:
        mass = counts[value] / total
        cumulative += mass
        cumulative_at[value] = cumulative
        mass_at[value] = mass

    lo = duplicate_fraction - window
    hi = duplicate_fraction + window

    # Least attained NG value whose cumulative step interval
    # [D(prev), D(value)] overlaps the window and whose probability
    # mass is a spike.  Interval overlap (rather than membership of the
    # endpoint D(value)) keeps a value whose mass straddles the whole
    # window — D jumping from below lo to above hi — eligible.
    previous = 0.0
    for value in attained:
        current = cumulative_at[value]
        if previous <= hi and current >= lo and mass_at[value] > spike:
            return ThresholdEstimate(
                c=float(value + 1),
                ng_value=value,
                spike_found=True,
                cumulative=current,
            )
        previous = current

    # Fallback: D^{-1}(f + window) — the least value covering f + window.
    for value in attained:
        if cumulative_at[value] >= hi:
            return ThresholdEstimate(
                c=float(value + 1),
                ng_value=value,
                spike_found=False,
                cumulative=cumulative_at[value],
            )

    last = attained[-1]
    return ThresholdEstimate(
        c=float(last + 1),
        ng_value=last,
        spike_found=False,
        cumulative=cumulative_at[last],
    )
