"""Phase 1 — nearest-neighbor list computation (paper section 4.1).

``prepare_nn_lists`` materializes the NN relation
``NN_Reln[ID, NN-List, NG]``: for every tuple, its nearest neighbors
(the best K for ``DE_S(K)``; all within θ for ``DE_D(θ)``) and its
neighborhood growth ``ng``.  Lookups are issued in breadth-first order
by default to maximize index buffer locality (Figure 5 / section 4.1.1);
the Figure 8 benchmark compares this against random order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.core.bforder import breadth_first_order, random_order, sequential_order
from repro.core.formulation import CombinedCut, DEParams, SizeCut
from repro.core.neighborhood import NNEntry, NNRelation
from repro.data.schema import Relation
from repro.index.base import Neighbor, NNIndex

__all__ = ["Phase1Stats", "prepare_nn_lists"]

LookupOrder = Literal["bf", "random", "sequential"]


@dataclass
class Phase1Stats:
    """Cost accounting for Phase 1.

    All counters *accumulate*: reusing one stats object across several
    ``prepare_nn_lists`` calls (resumed or incremental runs) sums their
    costs instead of keeping only the last call's.  The chunk fields are
    filled by the parallel engine only; the sequential path is one
    implicit chunk and leaves them untouched.
    """

    lookups: int = 0
    seconds: float = 0.0
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Candidate (query, record) pairs the index surfaced for
    #: verification — the size of the candidate-generation stage's
    #: output (``n * (n - 1)`` for brute force would examine everything;
    #: approximate indexes surface far fewer).
    candidates_generated: int = 0
    #: Pairs excluded without any distance computation: LSH bucket
    #: misses, q-gram count-filter rejects, triangle-inequality prunes,
    #: BK-tree subtree skips.  The sub-quadratic lever, made visible.
    evaluations_pruned: int = 0
    #: Pairs evaluated inside a vectorized batch kernel (numpy path)
    #: rather than one scalar ``distance()`` call at a time.  Disjoint
    #: from ``evaluations``: a pair is counted in exactly one of the
    #: two, so their sum is the total distance work.
    kernel_evaluations: int = 0
    n_chunks: int = 0
    chunk_seconds: list[float] = field(default_factory=list)
    #: Phase-1 sub-stage wall times — build-side ``tokenize`` / ``sign``
    #: / ``bucket`` plus lookup-side ``candidates`` / ``verify`` —
    #: harvested as deltas from ``NNIndex.substage_seconds`` by the
    #: drivers (sequential, subset, parallel engine, shard runner).
    substage_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-index-name accumulation of {lookups, evaluations,
    #: candidates_generated, evaluations_pruned} — one stats object can
    #: aggregate runs over several indexes (the bench matrix does).
    by_index: dict[str, dict[str, int]] = field(default_factory=dict)

    def credit_index(
        self,
        name: str,
        *,
        lookups: int = 0,
        evaluations: int = 0,
        candidates_generated: int = 0,
        evaluations_pruned: int = 0,
        kernel_evaluations: int = 0,
    ) -> None:
        """Accumulate one run's costs under the index's name."""
        row = self.by_index.setdefault(
            name,
            {
                "lookups": 0,
                "evaluations": 0,
                "candidates_generated": 0,
                "evaluations_pruned": 0,
                "kernel_evaluations": 0,
            },
        )
        row["lookups"] += lookups
        row["evaluations"] += evaluations
        row["candidates_generated"] += candidates_generated
        row["evaluations_pruned"] += evaluations_pruned
        row["kernel_evaluations"] += kernel_evaluations

    def add_substages(self, delta: "dict[str, float] | None") -> None:
        """Accumulate a sub-stage wall-time delta into this object."""
        if not delta:
            return
        for name, seconds in delta.items():
            self.substage_seconds[name] = (
                self.substage_seconds.get(name, 0.0) + seconds
            )

    @property
    def cache_bypassed(self) -> bool:
        """Whether distance work skipped the pair cache entirely.

        True on kernel-backed batch runs: every pair went through the
        vectorized kernel, so the pair cache saw zero traffic and
        :attr:`cache_hit_rate` is undefined rather than genuinely 0.0.
        """
        return (
            self.cache_hits + self.cache_misses == 0
            and self.kernel_evaluations > 0
        )

    @property
    def prune_rate(self) -> float:
        """Fraction of considered pairs excluded without evaluation.

        0.0 when nothing was pruned or nothing ran (brute force never
        prunes: it has no candidate-generation stage).
        """
        total = (
            self.evaluations_pruned
            + self.evaluations
            + self.kernel_evaluations
            + self.cache_hits
        )
        if total == 0:
            return 0.0
        return self.evaluations_pruned / total

    @property
    def throughput(self) -> float:
        """Lookups per second (the paper's ``pt`` metric, wall-clock).

        Defined as 0.0 when no lookup has been recorded (or no time has
        elapsed), so resumed/empty runs never divide by zero.
        """
        if self.lookups == 0 or self.seconds <= 0.0:
            return 0.0
        return self.lookups / self.seconds

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distance requests served by a pair cache."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total


def _substage_snapshot(index: NNIndex) -> dict[str, float]:
    """Copy the index's sub-stage ledger (for later delta computation)."""
    return dict(getattr(index, "substage_seconds", None) or {})


def _substage_delta(
    index: NNIndex, before: dict[str, float]
) -> dict[str, float]:
    """Per-stage wall time accrued on ``index`` since ``before``."""
    after = getattr(index, "substage_seconds", None) or {}
    delta = {
        name: seconds - before.get(name, 0.0)
        for name, seconds in after.items()
    }
    return {name: seconds for name, seconds in delta.items() if seconds > 0.0}


def _fetch(
    index: NNIndex, relation: Relation, rid: int, params: DEParams
) -> Sequence[Neighbor]:
    # Materializing the query record (possibly a buffer-pool page read)
    # is the probe's input prep — credited to ``candidates``.
    started = time.perf_counter()
    record = relation.get(rid)
    index._credit_substage("candidates", time.perf_counter() - started)
    if isinstance(params.cut, SizeCut):
        return index.knn(record, params.cut.k)
    if isinstance(params.cut, CombinedCut):
        # The K nearest neighbors within radius theta: both bounds hold.
        return index.within(record, params.theta)[: params.cut.k]
    return index.within(record, params.theta)


def prepare_nn_lists(
    relation: Relation,
    index: NNIndex,
    params: DEParams,
    order: LookupOrder = "bf",
    order_seed: int = 0,
    stats: Phase1Stats | None = None,
    radius_fn=None,
    n_workers: int = 1,
    pool: str = "thread",
    chunk_size: int | None = None,
    rids: Sequence[int] | None = None,
) -> NNRelation:
    """Materialize the NN relation for a DE problem instance.

    Parameters
    ----------
    relation:
        The input relation (must already be indexed: ``index.build``
        called with the same relation and the problem's distance).
    index:
        A built NN index.
    params:
        The DE parameters; the cut specification decides the query
        shape (top-K vs. within-θ) exactly as in the paper.
    order:
        Index lookup order: ``"bf"`` (breadth-first, the paper's
        choice), ``"random"`` (the paper's baseline), or
        ``"sequential"`` (relation order).
    order_seed:
        Seed for the random order.
    stats:
        Optional mutable stats object to fill with lookup counts and
        wall-clock time.
    radius_fn:
        Optional :class:`~repro.core.radius.RadiusFunction` overriding
        the linear ``p * nn(v)`` neighborhood in the NG computation
        (the non-linear extension the paper's section 2 permits).
    n_workers:
        With ``n_workers > 1`` the computation is delegated to
        :class:`~repro.parallel.engine.ParallelNNEngine`: the lookup
        order is split into contiguous chunks answered through the
        index's batch API over a worker pool, producing a result
        identical to this sequential path for any worker count.
    pool:
        Worker pool kind for the parallel path: ``"thread"`` or
        ``"process"``.
    chunk_size:
        Optional fixed chunk length for the parallel path.
    rids:
        Optional subset of record ids to compute entries for.  Queries
        still run against the *full* index, so each returned entry is
        exactly the entry a whole-relation run would produce for that
        rid — the contract the sharded runner's exact merge relies on.
        The subset is answered through :meth:`NNIndex.phase1_batch` in
        ascending-rid chunks (``order``/``n_workers`` do not apply).
    """
    if index.relation is not relation:
        raise ValueError("index was not built over the given relation")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")

    if rids is not None:
        return _subset_nn_lists(
            relation, index, params, sorted(rids),
            stats=stats, radius_fn=radius_fn,
            chunk_size=chunk_size,
        )

    if n_workers > 1:
        # Imported lazily: repro.parallel depends on repro.core modules.
        from repro.parallel.engine import ParallelNNEngine

        engine = ParallelNNEngine(
            n_workers=n_workers, pool=pool, chunk_size=chunk_size
        )
        return engine.run(
            relation,
            index,
            params,
            order=order,
            order_seed=order_seed,
            stats=stats,
            radius_fn=radius_fn,
        )

    nn_relation = NNRelation()
    started = time.perf_counter()
    evaluations_before = index.evaluations
    hits_before = getattr(index, "cache_hits", 0)
    misses_before = getattr(index, "cache_misses", 0)
    candidates_before = getattr(index, "candidates_generated", 0)
    pruned_before = getattr(index, "evaluations_pruned", 0)
    kernel_before = getattr(index, "kernel_evaluations", 0)
    substages_before = _substage_snapshot(index)
    lookups_before = stats.lookups if stats is not None else 0

    def lookup(rid: int) -> Sequence[Neighbor]:
        neighbors = _fetch(index, relation, rid, params)
        # The fetched list already reveals nn(v) when non-empty (for
        # the size spec always; for the diameter spec whenever some
        # neighbor lies within θ), sparing the index a redundant 1-NN
        # probe inside the NG computation.
        nn_distance = neighbors[0].distance if neighbors else None
        ng = index.neighborhood_growth(
            relation.get(rid),
            p=params.p,
            nn_distance=nn_distance,
            radius_fn=radius_fn,
        )
        nn_relation.add(NNEntry(rid=rid, neighbors=tuple(neighbors), ng=ng))
        if stats is not None:
            stats.lookups += 1
        return neighbors

    if order == "bf":
        for _ in breadth_first_order(relation, lookup):
            pass
    else:
        ids = (
            random_order(relation, seed=order_seed)
            if order == "random"
            else sequential_order(relation)
        )
        for rid in ids:
            lookup(rid)

    if stats is not None:
        evaluations = index.evaluations - evaluations_before
        candidates = getattr(index, "candidates_generated", 0) - candidates_before
        pruned = getattr(index, "evaluations_pruned", 0) - pruned_before
        kernel = getattr(index, "kernel_evaluations", 0) - kernel_before
        loop_seconds = time.perf_counter() - started
        stats.seconds += loop_seconds
        stats.evaluations += evaluations
        stats.cache_hits += getattr(index, "cache_hits", 0) - hits_before
        stats.cache_misses += getattr(index, "cache_misses", 0) - misses_before
        stats.candidates_generated += candidates
        stats.evaluations_pruned += pruned
        stats.kernel_evaluations += kernel
        substages = _substage_delta(index, substages_before)
        # The loop's own traversal order + result assembly, attributed
        # explicitly so the timers account for the full wall time.  Can
        # go non-positive when thread-pool workers accrue concurrently
        # on the shared index; skip the entry then.
        drive = loop_seconds - sum(substages.values())
        if drive > 0.0:
            substages["drive"] = drive
        stats.add_substages(substages)
        stats.credit_index(
            index.name,
            lookups=stats.lookups - lookups_before,
            evaluations=evaluations,
            candidates_generated=candidates,
            evaluations_pruned=pruned,
            kernel_evaluations=kernel,
        )
    return nn_relation


def _subset_nn_lists(
    relation: Relation,
    index: NNIndex,
    params: DEParams,
    rids: Sequence[int],
    stats: Phase1Stats | None = None,
    radius_fn=None,
    chunk_size: int | None = None,
) -> NNRelation:
    """Compute entries for a rid subset against the full index.

    The cut dispatch maps onto :meth:`NNIndex.phase1_batch`'s query
    shape exactly as ``_fetch`` does (``k`` = size cut, ``theta`` =
    diameter cut, both = combined cut), so each entry is bit-identical
    to the sequential whole-relation path's entry for the same rid.
    Chunking bounds the batch pair cache while still amortizing the
    index's blocked evaluation across neighbors within a chunk.
    """
    if isinstance(params.cut, SizeCut):
        k, theta = params.cut.k, None
    elif isinstance(params.cut, CombinedCut):
        k, theta = params.cut.k, params.theta
    else:
        k, theta = None, params.theta

    nn_relation = NNRelation()
    started = time.perf_counter()
    evaluations_before = index.evaluations
    hits_before = getattr(index, "cache_hits", 0)
    misses_before = getattr(index, "cache_misses", 0)
    candidates_before = getattr(index, "candidates_generated", 0)
    pruned_before = getattr(index, "evaluations_pruned", 0)
    kernel_before = getattr(index, "kernel_evaluations", 0)
    substages_before = _substage_snapshot(index)
    lookups_before = stats.lookups if stats is not None else 0

    size = chunk_size if chunk_size and chunk_size > 0 else 256
    for start in range(0, len(rids), size):
        chunk = rids[start : start + size]
        fetch_started = time.perf_counter()
        records = [relation.get(rid) for rid in chunk]
        index._credit_substage(
            "candidates", time.perf_counter() - fetch_started
        )
        batch = index.phase1_batch(
            records, k=k, theta=theta, p=params.p, radius_fn=radius_fn
        )
        for rid, (neighbors, ng) in zip(chunk, batch):
            nn_relation.add(
                NNEntry(rid=rid, neighbors=tuple(neighbors), ng=ng)
            )
            if stats is not None:
                stats.lookups += 1

    if stats is not None:
        evaluations = index.evaluations - evaluations_before
        candidates = getattr(index, "candidates_generated", 0) - candidates_before
        pruned = getattr(index, "evaluations_pruned", 0) - pruned_before
        kernel = getattr(index, "kernel_evaluations", 0) - kernel_before
        loop_seconds = time.perf_counter() - started
        stats.seconds += loop_seconds
        stats.evaluations += evaluations
        stats.cache_hits += getattr(index, "cache_hits", 0) - hits_before
        stats.cache_misses += getattr(index, "cache_misses", 0) - misses_before
        stats.candidates_generated += candidates
        stats.evaluations_pruned += pruned
        stats.kernel_evaluations += kernel
        substages = _substage_delta(index, substages_before)
        # See prepare_nn_lists: the chunk loop's own bookkeeping,
        # attributed explicitly (skipped when concurrent accrual on a
        # shared index makes the remainder non-positive).
        drive = loop_seconds - sum(substages.values())
        if drive > 0.0:
            substages["drive"] = drive
        stats.add_substages(substages)
        stats.credit_index(
            index.name,
            lookups=stats.lookups - lookups_before,
            evaluations=evaluations,
            candidates_generated=candidates,
            evaluations_pruned=pruned,
            kernel_evaluations=kernel,
        )
    return nn_relation
