"""The compact set (CS) and sparse neighborhood (SN) criteria.

These are *specification-level* definitions, computed directly from the
distance function by examining the whole relation.  The two-phase
algorithm in :mod:`repro.core.partitioner` never calls them (it works
from NN lists); they exist so tests and benchmarks can verify the
algorithm's output against the paper's definitions (section 2):

- **CS criterion** — ``S`` is a compact set iff for every ``v`` in
  ``S``, the distance from ``v`` to any other member of ``S`` is less
  than the distance from ``v`` to any tuple outside ``S``.
- **SN criterion** — ``S`` is an ``SN(AGG, c)`` group iff ``|S| = 1``
  or ``AGG({ng(v) : v in S}) < c``, with ``ng(v)`` the number of tuples
  within a sphere of radius ``p * nn(v)`` around ``v`` (self included;
  ``p = 2`` in the paper).

Ties are broken by record id, consistent with the index layer, so the
criteria remain well defined on real data that violates the paper's
distinct-distances assumption.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.data.schema import Relation
from repro.distances.base import DistanceFunction

__all__ = [
    "AGGREGATIONS",
    "aggregate",
    "agg_max",
    "agg_avg",
    "agg_max2",
    "nn_distance_brute",
    "neighborhood_growth_brute",
    "is_compact_set",
    "is_sn_group",
    "group_diameter",
]


def agg_max(values: Sequence[float]) -> float:
    """The ``max`` aggregation (every member must be sparse)."""
    return max(values)


def agg_avg(values: Sequence[float]) -> float:
    """The ``avg`` aggregation (sparse on average)."""
    return sum(values) / len(values)


def agg_max2(values: Sequence[float]) -> float:
    """The second-largest value (tolerates one dense member).

    For a single value, that value itself (the paper evaluates ``max2``
    only on groups of size >= 2, where it is the 2nd maximum).
    """
    if len(values) == 1:
        return values[0]
    return sorted(values, reverse=True)[1]


#: Named aggregation functions evaluated in the paper (Figure 7).
AGGREGATIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "max": agg_max,
    "avg": agg_avg,
    "max2": agg_max2,
}


def aggregate(name: str, values: Sequence[float]) -> float:
    """Apply a named aggregation to a non-empty value sequence."""
    if not values:
        raise ValueError("cannot aggregate an empty sequence")
    try:
        func = AGGREGATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {name!r}; expected one of {sorted(AGGREGATIONS)}"
        ) from None
    return func(values)


def nn_distance_brute(
    relation: Relation, distance: DistanceFunction, rid: int
) -> float:
    """``nn(v)`` by full scan (``inf`` for singleton relations)."""
    record = relation.get(rid)
    best = float("inf")
    for other in relation:
        if other.rid == rid:
            continue
        d = distance.distance(record, other)
        if d < best:
            best = d
    return best


def neighborhood_growth_brute(
    relation: Relation,
    distance: DistanceFunction,
    rid: int,
    p: float = 2.0,
    radius_fn: Callable[[float], float] | None = None,
) -> int:
    """``ng(v)`` by full scan, mirroring the index-layer definition.

    ``radius_fn`` overrides the linear ``p * nn(v)`` neighborhood (the
    non-linear generalization the paper's section 2 permits).
    """
    record = relation.get(rid)
    nn_d = nn_distance_brute(relation, distance, rid)
    if nn_d == float("inf"):
        return 1
    radius = radius_fn(nn_d) if radius_fn is not None else p * nn_d
    count = 1  # self
    for other in relation:
        if other.rid == rid:
            continue
        d = distance.distance(record, other)
        if nn_d == 0.0:
            if d == 0.0:
                count += 1
        elif d < radius:
            count += 1
    return count


def is_compact_set(
    relation: Relation, distance: DistanceFunction, group: Iterable[int]
) -> bool:
    """Check the CS criterion for ``group`` against the whole relation.

    Singletons are trivially compact.  Ties between an inside and an
    outside record at the same distance are resolved by record id (the
    smaller id wins the "closer" comparison), matching the index layer.
    """
    members = sorted(set(group))
    if len(members) <= 1:
        return True
    member_set = set(members)
    for rid in members:
        record = relation.get(rid)
        inside_worst: tuple[float, int] = (-1.0, -1)
        for other_rid in members:
            if other_rid == rid:
                continue
            d = distance.distance(record, relation.get(other_rid))
            inside_worst = max(inside_worst, (d, other_rid))
        for other in relation:
            if other.rid in member_set:
                continue
            d = distance.distance(record, other)
            if (d, other.rid) < inside_worst:
                return False
    return True


def is_sn_group(
    relation: Relation,
    distance: DistanceFunction,
    group: Iterable[int],
    agg: str,
    c: float,
    p: float = 2.0,
) -> bool:
    """Check the SN criterion for ``group``: ``AGG({ng}) < c`` (or |S| = 1)."""
    members = sorted(set(group))
    if len(members) <= 1:
        return True
    growths = [
        float(neighborhood_growth_brute(relation, distance, rid, p=p))
        for rid in members
    ]
    return aggregate(agg, growths) < c


def group_diameter(
    relation: Relation, distance: DistanceFunction, group: Iterable[int]
) -> float:
    """Maximum pairwise distance within ``group`` (0 for singletons)."""
    members = sorted(set(group))
    diameter = 0.0
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            diameter = max(
                diameter, distance.distance(relation.get(a), relation.get(b))
            )
    return diameter
