"""Generalized neighborhood radius functions.

The paper fixes the neighborhood of a tuple to a sphere of radius
``p * nn(v)`` with ``p = 2``, but notes that "functions more general
than linear functions may be used to define neighborhood" (section 2).
This module implements that extension: a radius function maps the
nearest-neighbor distance to the neighborhood radius used by the NG
computation.

- :class:`LinearRadius` — the paper's ``p * nn(v)``;
- :class:`AffineRadius` — ``p * nn(v) + delta``, giving isolated
  records a minimum absolute vicinity;
- :class:`PowerRadius` — ``p * nn(v) ** gamma`` (sub-linear growth for
  ``gamma > 1`` since distances live in [0, 1]);
- :class:`CappedRadius` — clamps another radius function, bounding the
  work of range queries on very isolated records.

All functions are monotone in ``nn(v)``, which keeps the SN intuition
intact: a record's vicinity scales with how isolated it already is.
"""

from __future__ import annotations

import abc

__all__ = [
    "RadiusFunction",
    "LinearRadius",
    "AffineRadius",
    "PowerRadius",
    "CappedRadius",
]


class RadiusFunction(abc.ABC):
    """Maps the NN distance of a record to its neighborhood radius."""

    @abc.abstractmethod
    def __call__(self, nn_distance: float) -> float:
        """Return the neighborhood radius for the given ``nn(v)``."""

    def describe(self) -> str:
        return type(self).__name__


class LinearRadius(RadiusFunction):
    """The paper's linear neighborhood: ``p * nn(v)``."""

    def __init__(self, p: float = 2.0):
        if p <= 1.0:
            raise ValueError("p must exceed 1 (the sphere must grow)")
        self.p = p

    def __call__(self, nn_distance: float) -> float:
        return self.p * nn_distance

    def describe(self) -> str:
        return f"{self.p}*nn"


class AffineRadius(RadiusFunction):
    """``p * nn(v) + delta``: a minimum absolute vicinity."""

    def __init__(self, p: float = 2.0, delta: float = 0.0):
        if p < 1.0:
            raise ValueError("p must be at least 1")
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        if p == 1.0 and delta == 0.0:
            raise ValueError("the neighborhood must be larger than nn(v)")
        self.p = p
        self.delta = delta

    def __call__(self, nn_distance: float) -> float:
        return self.p * nn_distance + self.delta

    def describe(self) -> str:
        return f"{self.p}*nn+{self.delta}"


class PowerRadius(RadiusFunction):
    """``p * nn(v) ** gamma``.

    With distances in [0, 1] and ``gamma > 1``, close records get
    relatively tighter neighborhoods and isolated records relatively
    wider ones, damping NG for dense families.
    """

    def __init__(self, p: float = 2.0, gamma: float = 1.0):
        if p <= 0.0:
            raise ValueError("p must be positive")
        if gamma <= 0.0:
            raise ValueError("gamma must be positive")
        self.p = p
        self.gamma = gamma

    def __call__(self, nn_distance: float) -> float:
        return self.p * (nn_distance**self.gamma)

    def describe(self) -> str:
        return f"{self.p}*nn^{self.gamma}"


class CappedRadius(RadiusFunction):
    """Clamp another radius function at an absolute maximum.

    Bounding the neighborhood radius bounds the cost of the range query
    behind NG for very isolated records, at the price of (slightly)
    undercounting their growth — they are far from everything anyway.
    """

    def __init__(self, inner: RadiusFunction, cap: float):
        if cap <= 0.0:
            raise ValueError("cap must be positive")
        self.inner = inner
        self.cap = cap

    def __call__(self, nn_distance: float) -> float:
        return min(self.cap, self.inner(nn_distance))

    def describe(self) -> str:
        return f"min({self.cap}, {self.inner.describe()})"
