"""CSPairs construction — first step of Phase 2 (paper section 4.2).

For every *mutual* pair in the NN relation (each appears in the other's
NN-list; ``ID1 < ID2``), compute the boolean vector ``[CS2, .., CSm]``
where ``CSi`` says whether the two records' i-neighbor sets are equal.
The paper materializes this as a SQL *select into* over a self-join of
``NN_Reln``; we provide both a direct in-memory builder and an
engine-backed builder that issues the same logical plan against the
storage layer (self-join via an id hash index, then ``ORDER BY ID1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.formulation import CombinedCut, DEParams, SizeCut
from repro.core.neighborhood import NNRelation, entry_from_row
from repro.storage.engine import Engine
from repro.storage.table import HeapTable

__all__ = [
    "CSPair",
    "max_pair_size",
    "nn_list_limit",
    "prefix_equal_flags",
    "build_cs_pairs",
    "materialize_nn_reln",
    "nn_relation_from_table",
    "build_cs_pairs_engine",
    "cs_pairs_from_table",
    "iter_cs_pairs",
]

#: Schema of the materialized CSPairs relation.
CSPAIRS_SCHEMA = ("id1", "id2", "ng1", "ng2", "flags")
#: Schema of the materialized NN relation.  The distance column exists
#: so an out-of-core (spilled) table can be read back into an exact NN
#: relation; the CSPairs self-join reads only ``id``/``nn_list``/``ng``.
NN_RELN_SCHEMA = ("id", "nn_list", "dists", "ng")


@dataclass(frozen=True)
class CSPair:
    """One CSPairs row: a mutual-NN pair and its prefix-set equalities.

    ``flags[i]`` corresponds to group size ``m = i + 2``: whether the
    (i + 2)-neighbor sets of the two records coincide.
    """

    id1: int
    id2: int
    ng1: int
    ng2: int
    flags: tuple[bool, ...]

    def supports_size(self, m: int) -> bool:
        """Whether the pair's m-neighbor sets are known to be equal."""
        index = m - 2
        return 0 <= index < len(self.flags) and self.flags[index]


def nn_list_limit(params: DEParams, n_neighbors: int) -> int:
    """How much of an NN list the cut specification lets Phase 2 read.

    Under a size bound only the first ``K`` entries are candidates; the
    diameter bound already shaped the list (all within θ), so the whole
    list is read.  Shared by the CSPairs builders, the explainer, and
    the runtime verifier so candidate visibility stays consistent.
    """
    if isinstance(params.cut, (SizeCut, CombinedCut)):
        return min(params.cut.k, n_neighbors)
    return n_neighbors


def max_pair_size(
    len1: int, len2: int, params: DEParams
) -> int:
    """Largest group size ``m`` checkable for a pair with the given
    NN-list lengths (lists exclude self)."""
    bound = min(len1 + 1, len2 + 1)
    if isinstance(params.cut, (SizeCut, CombinedCut)):
        bound = min(bound, params.cut.k)
    return bound


def prefix_equal_flags(
    id1: int,
    ids1: tuple[int, ...],
    id2: int,
    ids2: tuple[int, ...],
    max_m: int,
) -> tuple[bool, ...]:
    """Compute ``[CS2, .., CS_max_m]`` from two ordered NN-id lists.

    The i-neighbor set of a record is itself plus its ``i - 1`` nearest
    others; equality is set equality, computed incrementally.
    """
    flags: list[bool] = []
    set1: set[int] = {id1}
    set2: set[int] = {id2}
    for m in range(2, max_m + 1):
        set1.add(ids1[m - 2])
        set2.add(ids2[m - 2])
        # Growing sets of equal cardinality: equal iff same elements.
        flags.append(len(set1) == len(set2) == m and set1 == set2)
    return tuple(flags)


def build_cs_pairs(nn_relation: NNRelation, params: DEParams) -> list[CSPair]:
    """Direct (in-memory) CSPairs construction, sorted by ``(id1, id2)``."""
    pairs: list[CSPair] = []
    for entry in nn_relation:
        limit = nn_list_limit(params, len(entry.neighbors))
        for neighbor in entry.neighbors[:limit]:
            other_id = neighbor.rid
            if other_id <= entry.rid:
                continue
            if other_id not in nn_relation:
                continue
            other = nn_relation.get(other_id)
            other_limit = nn_list_limit(params, len(other.neighbors))
            if entry.rid not in other.neighbor_ids[:other_limit]:
                continue  # not mutual
            max_m = max_pair_size(len(entry.neighbors), len(other.neighbors), params)
            flags = prefix_equal_flags(
                entry.rid,
                entry.neighbor_ids,
                other.rid,
                other.neighbor_ids,
                max_m,
            )
            pairs.append(
                CSPair(
                    id1=entry.rid,
                    id2=other.rid,
                    ng1=entry.ng,
                    ng2=other.ng,
                    flags=flags,
                )
            )
    pairs.sort(key=lambda pair: (pair.id1, pair.id2))
    return pairs


# ----------------------------------------------------------------------
# Engine-backed path (faithful to the paper's SQL architecture)
# ----------------------------------------------------------------------


def materialize_nn_reln(
    engine: Engine, nn_relation: NNRelation, table_name: str = "NN_Reln"
) -> HeapTable:
    """Write the Phase-1 output into a heap table ``(id, nn_list, ng)``."""
    table = engine.create_table(table_name, NN_RELN_SCHEMA, replace=True)
    table.insert_many(nn_relation.as_rows())
    return table


def nn_relation_from_table(table: HeapTable) -> NNRelation:
    """Read a materialized ``NN_Reln`` table back into an NN relation.

    Exact inverse of :func:`materialize_nn_reln` — distances included —
    so a spilled run can still serve consumers that need the full
    Phase-1 output (the verifier, the ``thr`` baseline).
    """
    nn_relation = NNRelation()
    for row in table.scan():
        nn_relation.add(entry_from_row(row))
    return nn_relation


def build_cs_pairs_engine(
    engine: Engine,
    params: DEParams,
    nn_table_name: str = "NN_Reln",
    cs_table_name: str = "CSPairs",
) -> HeapTable:
    """CSPairs via the storage engine: index self-join + ORDER BY.

    Mirrors the paper's SQL: ``SELECT .. INTO CSPairs FROM NN_Reln,
    NN_Reln2 WHERE NN_Reln.ID < NN_Reln2.ID AND mutual(NN-lists)``, with
    the case-expression flag columns packed into one ``flags`` tuple,
    followed by the CS-group query ``SELECT * FROM CSPairs ORDER BY ID``.
    """
    nn_table = engine.table(nn_table_name)
    id_index = engine.hash_index(nn_table, "id")

    def probe_keys(row):
        rid, nn_list, _dists, _ng = row
        limit = nn_list_limit(params, len(nn_list))
        return [other for other in nn_list[:limit] if other > rid]

    def on(left, right) -> bool:
        lid = left[0]
        r_list = right[1]
        limit = nn_list_limit(params, len(r_list))
        return lid in r_list[:limit]

    def project(left, right):
        lid, l_list, _l_dists, l_ng = left
        rid, r_list, _r_dists, r_ng = right
        max_m = max_pair_size(len(l_list), len(r_list), params)
        flags = prefix_equal_flags(lid, l_list, rid, r_list, max_m)
        return (lid, rid, l_ng, r_ng, flags)

    unsorted = engine.index_join(
        dest=f"{cs_table_name}_unsorted",
        schema=CSPAIRS_SCHEMA,
        outer=nn_table,
        probe_keys=probe_keys,
        index=id_index,
        on=on,
        project=project,
    )
    return engine.order_by(cs_table_name, unsorted, key=lambda row: (row[0], row[1]))


def iter_cs_pairs(table: HeapTable) -> Iterator[CSPair]:
    """Stream a materialized CSPairs table as row objects.

    One page at a time through the buffer pool — the access path the
    streaming partitioner uses, so a CSPairs relation larger than the
    pool is consumed without ever being fully resident.
    """
    for row in table.scan():
        yield CSPair(
            id1=row[0], id2=row[1], ng1=row[2], ng2=row[3], flags=tuple(row[4])
        )


def cs_pairs_from_table(table: HeapTable) -> list[CSPair]:
    """Read a materialized CSPairs table back into row objects."""
    return list(iter_cs_pairs(table))
