"""The end-to-end duplicate elimination pipeline (paper Figure 3).

:class:`DuplicateEliminator` is the stable entry point for solving DE
instances.  Since the staged-architecture refactor it is a thin facade:
the constructor's knobs build a frozen
:class:`~repro.run.config.RunConfig`, the live machinery lives on a
:class:`~repro.run.context.RunContext`, and execution is delegated to
the :class:`~repro.run.pipeline.StagedPipeline` — Phase 1, the optional
NN-relation spill, the CSPairs join, partitioning, post-processing, and
verification, each a :class:`~repro.run.stages.Stage`.

The facade guarantees:

- the historical constructor signature keeps working (every kwarg maps
  onto a ``RunConfig`` field or a context component);
- ``run`` / ``run_from_nn`` return the same :class:`DEResult` with
  bit-identical partitions to the pre-refactor pipeline on every
  execution path (in-memory, engine Phase 2, spilled NN relation);
- the former loose telemetry fields (``phase1``, ``phase2_seconds``,
  ``n_cs_pairs``) survive as deprecated read-only properties over
  ``DEResult.stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cspairs import CSPair
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.core.nn_phase import LookupOrder, Phase1Stats
from repro.core.predicates import CannotLinkPredicate
from repro.core.result import Partition
from repro.data.schema import Relation
from repro.distances.base import DistanceFunction
from repro.index.base import NNIndex
from repro.run.config import RunConfig
from repro.run.stats import RunStats
from repro.storage.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.run.context import RunContext
    from repro.verify.report import VerificationReport

__all__ = ["DEResult", "DuplicateEliminator"]


@dataclass
class DEResult:
    """Everything a DE run produces.

    The NN relation is part of the result because downstream consumers
    need it: the SN threshold heuristic reuses the NG values, and the
    ``thr`` baseline induces its threshold graph from the same NN lists
    (as in the paper's experimental setup).  On a spilled run it is a
    :class:`~repro.run.spill.SpilledNNRelation` — same interface,
    answered through the storage engine's buffer pool.
    """

    partition: Partition
    nn_relation: NNRelation
    params: DEParams
    #: Unified run telemetry: per-stage wall times, Phase-1 counters,
    #: distance-cache traffic, and (for engine runs) buffer statistics.
    stats: RunStats = field(default_factory=RunStats)
    #: The Phase-2 CSPairs rows, kept when the solver is configured
    #: with ``keep_cs_pairs`` (or any ``verify`` mode) so the verifier
    #: can audit the actual rows instead of a reconstruction.
    cs_pairs: list[CSPair] | None = field(default=None, repr=False)
    #: Invariant-verification outcome, filled by
    #: ``DuplicateEliminator(verify=...)``; ``None`` when not verified.
    verification: "VerificationReport | None" = field(default=None, repr=False)

    @property
    def duplicate_groups(self) -> list[tuple[int, ...]]:
        """The non-trivial groups (reported duplicates)."""
        return self.partition.non_trivial_groups()

    # ------------------------------------------------------------------
    # Deprecated telemetry accessors (pre-RunStats API)
    # ------------------------------------------------------------------

    @property
    def phase1(self) -> Phase1Stats:
        """Deprecated: use ``result.stats.phase1``."""
        return self.stats.phase1

    @property
    def phase2_seconds(self) -> float:
        """Deprecated: use ``result.stats.phase2_seconds`` (or the
        per-stage ``result.stats.timings``)."""
        return self.stats.phase2_seconds

    @property
    def n_cs_pairs(self) -> int:
        """Deprecated: use ``result.stats.n_cs_pairs``."""
        return self.stats.n_cs_pairs


class DuplicateEliminator:
    """Configurable solver for DE problem instances.

    Parameters
    ----------
    distance:
        The tuple distance function (wrapped in a memo cache unless
        ``cache_distance=False``).
    index:
        NN index instance; defaults to :class:`BruteForceIndex`.  The
        index is (re)built per :meth:`run` call.  Approximate indexes
        (MinHash, q-gram, BK-tree, pivot) trade distance evaluations
        for recall — see ``docs/performance.md`` ("Choosing an index");
        the result's ``stats.phase1`` records the candidate counts and
        pruning each run actually achieved.
    engine:
        Optional storage engine.  When given (or ``use_engine=True``),
        Phase 2 executes through the engine's relational operators,
        faithfully to the paper's client-over-SQL-server architecture.
    order:
        Phase 1 lookup order (``"bf"``, ``"random"``, ``"sequential"``).
    minimal:
        Enforce minimal compact sets (off by default, as in the paper).
    cannot_link:
        Optional constraining predicate; violating groups are split.
    radius_fn:
        Optional :class:`~repro.core.radius.RadiusFunction` overriding
        the linear ``p * nn(v)`` neighborhood in the NG computation.
    n_workers:
        Phase-1 worker count.  ``1`` (default) runs the sequential
        lookup loop; more workers run the chunked parallel engine
        (:class:`~repro.parallel.engine.ParallelNNEngine`), which
        produces an identical NN relation and partition.
    pool:
        Worker pool kind for the parallel path (``"thread"`` or
        ``"process"``).
    chunk_size:
        Optional fixed chunk length for the parallel path.
    verify:
        Runtime invariant verification of every result.  ``False``
        (default) skips it; ``True`` or ``"report"`` attaches a
        :class:`~repro.verify.report.VerificationReport` to
        ``DEResult.verification`` without ever raising; ``"strict"``
        additionally raises :class:`~repro.verify.report
        .VerificationError` when any check fails.  Postprocessed runs
        (``minimal`` or ``cannot_link``) intentionally reshape groups,
        so they are checked only for partition well-formedness, the cut
        specification, and NN parity.
    keep_cs_pairs:
        Keep the Phase-2 CSPairs rows on the result (implied by any
        ``verify`` mode).
    spill:
        Stream the Phase-1 output into a storage-engine heap table
        instead of materializing it in memory (implies an engine);
        Phase 2 and partitioning read it back through the buffer pool.
    buffer_pages, page_capacity:
        Sizing for an engine the solver creates itself (ignored when an
        ``engine`` instance is passed in).
    config:
        A prebuilt :class:`~repro.run.config.RunConfig`; wins over the
        individual execution kwargs.
    """

    def __init__(
        self,
        distance: DistanceFunction,
        index: NNIndex | None = None,
        engine: Engine | None = None,
        use_engine: bool = False,
        order: LookupOrder = "bf",
        order_seed: int = 0,
        minimal: bool = False,
        cannot_link: CannotLinkPredicate | None = None,
        cache_distance: bool = True,
        radius_fn=None,
        n_workers: int = 1,
        pool: str = "thread",
        chunk_size: int | None = None,
        verify: bool | str = False,
        keep_cs_pairs: bool = False,
        spill: bool = False,
        buffer_pages: int = 256,
        page_capacity: int = 64,
        config: RunConfig | None = None,
    ):
        if config is None:
            config = RunConfig(
                order=order,
                order_seed=order_seed,
                n_workers=n_workers,
                pool=pool,
                chunk_size=chunk_size,
                use_engine=use_engine or engine is not None or spill,
                spill=spill,
                buffer_pages=buffer_pages,
                page_capacity=page_capacity,
                minimal=minimal,
                cache_distance=cache_distance,
                verify=verify,
                keep_cs_pairs=keep_cs_pairs,
            )
        # Imported lazily: repro.run.context sits above this module in
        # the import graph (it pulls in core submodules at load time).
        from repro.run.context import RunContext

        self.context: RunContext = RunContext.create(
            config,
            distance=distance,
            index=index,
            engine=engine,
            radius_fn=radius_fn,
            cannot_link=cannot_link,
        )

    # ------------------------------------------------------------------
    # Facade attributes (historical API)
    # ------------------------------------------------------------------

    @property
    def config(self) -> RunConfig:
        return self.context.config

    @property
    def distance(self) -> DistanceFunction:
        return self.context.distance

    @property
    def index(self) -> NNIndex:
        return self.context.index

    @property
    def engine(self) -> Engine | None:
        return self.context.engine

    @property
    def radius_fn(self):
        return self.context.radius_fn

    @property
    def cannot_link(self) -> CannotLinkPredicate | None:
        return self.context.cannot_link

    @property
    def order(self) -> LookupOrder:
        return self.context.config.order  # type: ignore[return-value]

    @property
    def order_seed(self) -> int:
        return self.context.config.order_seed

    @property
    def minimal(self) -> bool:
        return self.context.config.minimal

    @property
    def n_workers(self) -> int:
        return self.context.config.n_workers

    @property
    def pool(self) -> str:
        return self.context.config.pool

    @property
    def chunk_size(self) -> int | None:
        return self.context.config.chunk_size

    @property
    def verify(self) -> bool | str:
        return self.context.config.verify

    @property
    def keep_cs_pairs(self) -> bool:
        config = self.context.config
        return config.keep_cs_pairs or bool(config.verify)

    # ------------------------------------------------------------------

    def _pipeline(self):
        # Imported lazily: repro.run.pipeline imports this module.
        from repro.run.pipeline import StagedPipeline

        return StagedPipeline(self.context)

    def run(self, relation: Relation, params: DEParams) -> DEResult:
        """Solve the DE instance over ``relation``."""
        return self._pipeline().run(relation, params)

    def run_from_nn(
        self, relation: Relation, nn_relation: NNRelation, params: DEParams
    ) -> DEResult:
        """Solve Phase 2 only, over a precomputed NN relation.

        Useful for parameter sweeps that share one (expensive) Phase 1:
        the paper notes the SN threshold is not needed until Phase 2,
        and the quality benchmarks sweep ``c``/``AGG``/``K`` this way.
        """
        return self._pipeline().run_from_nn(relation, nn_relation, params)
