"""The end-to-end duplicate elimination pipeline (paper Figure 3).

:class:`DuplicateEliminator` wires the two phases together:

1. **NN list computation** — build (or accept) a nearest-neighbor index
   over the relation and materialize ``NN_Reln`` in breadth-first
   lookup order;
2. **Partitioning** — construct CSPairs and extract compact SN groups,
   either directly in memory or through the storage engine (the paper's
   SQL path), which produce identical results.

Optional post-processing applies the minimality refinement
(section 4.5.2) and constraining predicates (section 4.5.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.cspairs import (
    CSPair,
    build_cs_pairs,
    build_cs_pairs_engine,
    cs_pairs_from_table,
    materialize_nn_reln,
)
from repro.core.formulation import DEParams
from repro.core.minimality import enforce_minimality
from repro.core.neighborhood import NNRelation
from repro.core.nn_phase import LookupOrder, Phase1Stats, prepare_nn_lists
from repro.core.partitioner import partition_records
from repro.core.predicates import CannotLinkPredicate, apply_constraining_predicate
from repro.core.result import Partition
from repro.data.schema import Relation
from repro.distances.base import CachedDistance, DistanceFunction
from repro.index.base import NNIndex
from repro.index.bruteforce import BruteForceIndex
from repro.storage.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.verify.report import VerificationReport

__all__ = ["DEResult", "DuplicateEliminator"]


@dataclass
class DEResult:
    """Everything a DE run produces.

    The NN relation is part of the result because downstream consumers
    need it: the SN threshold heuristic reuses the NG values, and the
    ``thr`` baseline induces its threshold graph from the same NN lists
    (as in the paper's experimental setup).
    """

    partition: Partition
    nn_relation: NNRelation
    params: DEParams
    phase1: Phase1Stats = field(default_factory=Phase1Stats)
    phase2_seconds: float = 0.0
    n_cs_pairs: int = 0
    #: The Phase-2 CSPairs rows, kept when the solver is configured
    #: with ``keep_cs_pairs`` (or any ``verify`` mode) so the verifier
    #: can audit the actual rows instead of a reconstruction.
    cs_pairs: list[CSPair] | None = field(default=None, repr=False)
    #: Invariant-verification outcome, filled by
    #: ``DuplicateEliminator(verify=...)``; ``None`` when not verified.
    verification: "VerificationReport | None" = field(default=None, repr=False)

    @property
    def duplicate_groups(self) -> list[tuple[int, ...]]:
        """The non-trivial groups (reported duplicates)."""
        return self.partition.non_trivial_groups()


class DuplicateEliminator:
    """Configurable solver for DE problem instances.

    Parameters
    ----------
    distance:
        The tuple distance function (wrapped in a memo cache unless
        ``cache_distance=False``).
    index:
        NN index instance; defaults to :class:`BruteForceIndex`.  The
        index is (re)built per :meth:`run` call.  Approximate indexes
        (MinHash, q-gram, BK-tree, pivot) trade distance evaluations
        for recall — see ``docs/performance.md`` ("Choosing an index");
        the result's ``phase1`` stats record the candidate counts and
        pruning each run actually achieved.
    engine:
        Optional storage engine.  When given (or ``use_engine=True``),
        Phase 2 executes through the engine's relational operators,
        faithfully to the paper's client-over-SQL-server architecture.
    order:
        Phase 1 lookup order (``"bf"``, ``"random"``, ``"sequential"``).
    minimal:
        Enforce minimal compact sets (off by default, as in the paper).
    cannot_link:
        Optional constraining predicate; violating groups are split.
    radius_fn:
        Optional :class:`~repro.core.radius.RadiusFunction` overriding
        the linear ``p * nn(v)`` neighborhood in the NG computation.
    n_workers:
        Phase-1 worker count.  ``1`` (default) runs the sequential
        lookup loop; more workers run the chunked parallel engine
        (:class:`~repro.parallel.engine.ParallelNNEngine`), which
        produces an identical NN relation and partition.
    pool:
        Worker pool kind for the parallel path (``"thread"`` or
        ``"process"``).
    chunk_size:
        Optional fixed chunk length for the parallel path.
    verify:
        Runtime invariant verification of every result.  ``False``
        (default) skips it; ``True`` or ``"report"`` attaches a
        :class:`~repro.verify.report.VerificationReport` to
        ``DEResult.verification`` without ever raising; ``"strict"``
        additionally raises :class:`~repro.verify.report
        .VerificationError` when any check fails.  Postprocessed runs
        (``minimal`` or ``cannot_link``) intentionally reshape groups,
        so they are checked only for partition well-formedness, the cut
        specification, and NN parity.
    keep_cs_pairs:
        Keep the Phase-2 CSPairs rows on the result (implied by any
        ``verify`` mode).
    """

    def __init__(
        self,
        distance: DistanceFunction,
        index: NNIndex | None = None,
        engine: Engine | None = None,
        use_engine: bool = False,
        order: LookupOrder = "bf",
        order_seed: int = 0,
        minimal: bool = False,
        cannot_link: CannotLinkPredicate | None = None,
        cache_distance: bool = True,
        radius_fn=None,
        n_workers: int = 1,
        pool: str = "thread",
        chunk_size: int | None = None,
        verify: bool | str = False,
        keep_cs_pairs: bool = False,
    ):
        wrap = cache_distance and not isinstance(distance, CachedDistance)
        self.distance: DistanceFunction = (
            CachedDistance(distance) if wrap else distance
        )
        self.index: NNIndex = index if index is not None else BruteForceIndex()
        self.engine = engine if engine is not None else (Engine() if use_engine else None)
        self.order: LookupOrder = order
        self.order_seed = order_seed
        self.minimal = minimal
        self.cannot_link = cannot_link
        #: Optional RadiusFunction generalizing the p*nn(v) neighborhood
        #: (paper section 2's non-linear remark); None = linear.
        self.radius_fn = radius_fn
        self.n_workers = n_workers
        self.pool = pool
        self.chunk_size = chunk_size
        if verify not in (False, True, "report", "strict"):
            raise ValueError(
                f"verify must be False, True, 'report', or 'strict'; "
                f"got {verify!r}"
            )
        self.verify = verify
        self.keep_cs_pairs = keep_cs_pairs or bool(verify)

    # ------------------------------------------------------------------

    def run(self, relation: Relation, params: DEParams) -> DEResult:
        """Solve the DE instance over ``relation``."""
        stats = Phase1Stats()
        self.index.build(relation, self.distance)
        nn_relation = prepare_nn_lists(
            relation,
            self.index,
            params,
            order=self.order,
            order_seed=self.order_seed,
            stats=stats,
            radius_fn=self.radius_fn,
            n_workers=self.n_workers,
            pool=self.pool,
            chunk_size=self.chunk_size,
        )
        partition, phase2_seconds, pairs = self._phase2(relation, nn_relation, params)
        result = DEResult(
            partition=partition,
            nn_relation=nn_relation,
            params=params,
            phase1=stats,
            phase2_seconds=phase2_seconds,
            n_cs_pairs=len(pairs),
            cs_pairs=pairs if self.keep_cs_pairs else None,
        )
        self._maybe_verify(result, relation)
        return result

    def run_from_nn(
        self, relation: Relation, nn_relation: NNRelation, params: DEParams
    ) -> DEResult:
        """Solve Phase 2 only, over a precomputed NN relation.

        Useful for parameter sweeps that share one (expensive) Phase 1:
        the paper notes the SN threshold is not needed until Phase 2,
        and the quality benchmarks sweep ``c``/``AGG``/``K`` this way.
        """
        partition, phase2_seconds, pairs = self._phase2(relation, nn_relation, params)
        result = DEResult(
            partition=partition,
            nn_relation=nn_relation,
            params=params,
            phase2_seconds=phase2_seconds,
            n_cs_pairs=len(pairs),
            cs_pairs=pairs if self.keep_cs_pairs else None,
        )
        self._maybe_verify(result, relation)
        return result

    # ------------------------------------------------------------------

    def _phase2(
        self, relation: Relation, nn_relation: NNRelation, params: DEParams
    ) -> tuple[Partition, float, list]:
        started = time.perf_counter()
        if self.engine is not None:
            materialize_nn_reln(self.engine, nn_relation)
            table = build_cs_pairs_engine(self.engine, params)
            pairs = cs_pairs_from_table(table)
        else:
            pairs = build_cs_pairs(nn_relation, params)
        partition = partition_records(relation.ids(), pairs, params)
        if self.minimal:
            partition = enforce_minimality(partition, nn_relation)
        if self.cannot_link is not None:
            partition = apply_constraining_predicate(
                partition, relation, self.cannot_link
            )
        return partition, time.perf_counter() - started, pairs

    def _maybe_verify(self, result: DEResult, relation: Relation) -> None:
        """Attach (and in strict mode enforce) the verification report."""
        if not self.verify:
            return
        # Imported lazily: repro.verify depends on this module.
        from repro.verify.verifier import verify_result

        postprocessed = self.minimal or self.cannot_link is not None
        checks = ("partition", "cut-spec", "nn-parity") if postprocessed else None
        result.verification = verify_result(
            result,
            relation,
            self.distance,
            cs_pairs=result.cs_pairs,
            checks=checks,
            radius_fn=self.radius_fn,
            strict=self.verify == "strict",
        )
