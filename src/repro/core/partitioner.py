"""Partitioning step — second step of Phase 2 (paper section 4.2).

Consume the CSPairs rows grouped by their minimum id (``Q[ID = v]`` in
the paper) and extract, for each unassigned ``v``, the largest
non-trivial compact SN set ``G_v`` that ``v`` can belong to:

- a group of size ``m`` exists under ``v`` iff exactly ``m - 1``
  partners ``w`` have equal m-neighbor sets with ``v`` (set equality is
  transitive, so the pairwise checks extend to the whole group);
- the group must satisfy the SN criterion ``AGG({ng}) < c``;
- the cut specification is honored by construction (flags are only
  computed up to ``K`` for the size spec; for the diameter spec, equal
  prefix sets of within-θ lists imply ``Diameter(G) <= θ``).

Scanning candidate sizes from largest to smallest guarantees maximality
("it cannot be extended to a larger compact SN set"); records never
claimed by any group become singletons.  The correctness argument is
the paper's: every compact SN set in the solution is grouped under its
minimum id, because its members' m-neighbor sets all equal the set
itself.

Two scalability properties of the scan are exploited here:

- **Streaming** — the CS-group query emits rows sorted by ``(id1,
  id2)``, so :func:`partition_records` consumes them through a
  :func:`itertools.groupby` over any sorted *iterator*: one anchor's
  rows are resident at a time, never the whole relation.  A spilled
  run feeds it straight from the ``CSPairs`` heap table through the
  buffer pool.  (:func:`rows_by_anchor` still materializes the full
  ``Q[ID = v]`` dict for the runtime verifier, which genuinely needs
  random access.)
- **Sharding** — groups never span connected components of the
  mutual-NN graph (a compact set's members are pairwise mutual, so its
  edges all lie inside one component), making component-wise group
  extraction embarrassingly parallel and bit-identical to the global
  scan: :func:`partition_records_sharded`.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from itertools import groupby
from typing import Iterable, Iterator, Sequence

from repro.core.criteria import aggregate
from repro.core.cspairs import CSPair
from repro.core.formulation import DEParams
from repro.core.result import Partition

__all__ = [
    "partition_records",
    "partition_records_sharded",
    "extract_group",
    "extract_component_groups",
    "iter_anchor_groups",
    "mutual_components",
    "rows_by_anchor",
]


def rows_by_anchor(cs_pairs: Sequence[CSPair]) -> dict[int, list[CSPair]]:
    """Group sorted CSPairs rows by their anchor ``id1``, as a dict.

    This materialized form of the paper's ``Q[ID = v]`` access pattern
    exists for the runtime verifier, which re-derives group support
    from the same rows and needs random access by anchor.  The
    partitioner itself streams through :func:`iter_anchor_groups`.
    """
    return {
        anchor: list(rows)
        for anchor, rows in groupby(cs_pairs, key=lambda row: row.id1)
    }


def iter_anchor_groups(
    cs_pairs: Iterable[CSPair],
) -> Iterator[tuple[int, list[CSPair]]]:
    """Stream ``(anchor, rows)`` groups from ``(id1, id2)``-sorted rows.

    Only one anchor's rows are resident at a time, so a CSPairs
    relation larger than memory can be consumed directly from its heap
    table scan.
    """
    for anchor, rows in groupby(cs_pairs, key=lambda row: row.id1):
        yield anchor, list(rows)


def extract_group(
    anchor: int,
    anchor_ng: int,
    rows: Sequence[CSPair],
    params: DEParams,
    assigned: set[int],
) -> list[int] | None:
    """Return the largest valid compact SN group under ``anchor``.

    ``rows`` are the CSPairs rows with ``id1 == anchor``.  Returns the
    sorted member list (anchor included) or ``None`` when no non-trivial
    group qualifies.
    """
    if not rows:
        return None
    max_m = max(len(row.flags) + 1 for row in rows)
    for m in range(max_m, 1, -1):
        partners = [row for row in rows if row.supports_size(m)]
        if len(partners) != m - 1:
            continue
        if any(row.id2 in assigned for row in partners):
            # Only possible under tie/approximation noise; the paper's
            # distinct-distance analysis rules it out.  Try smaller m.
            continue
        growths = [float(anchor_ng)] + [float(row.ng2) for row in partners]
        if aggregate(params.agg, growths) >= params.c:
            continue
        return sorted([anchor] + [row.id2 for row in partners])
    return None


def _scan_groups(
    anchored: Iterable[tuple[int, list[CSPair]]],
    params: DEParams,
    stats=None,
) -> list[list[int]]:
    """The paper's anchor scan over one stream of ``(anchor, rows)``.

    ``anchored`` must arrive in ascending anchor order (the CS-group
    query order); the ``assigned`` set only ever consults ids reachable
    from earlier anchors of the *same* stream, which is what makes the
    per-component sharding below exact.
    """
    assigned: set[int] = set()
    groups: list[list[int]] = []
    for anchor, rows in anchored:
        if stats is not None:
            stats.peak_group_rows = max(stats.peak_group_rows, len(rows))
        if anchor in assigned:
            continue
        group = extract_group(anchor, rows[0].ng1, rows, params, assigned)
        if group is not None:
            groups.append(group)
            assigned.update(group)
    return groups


def partition_records(
    ids: Iterable[int],
    cs_pairs: Iterable[CSPair],
    params: DEParams,
    stats=None,
) -> Partition:
    """Partition the relation given its (sorted) CSPairs rows.

    ``cs_pairs`` must be sorted by ``(id1, id2)`` — the output order of
    the CS-group query — and may be any iterable, including a
    streaming read of a spilled ``CSPairs`` table: consumption is a
    streaming group-by, so peak residency is one anchor's rows.
    ``ids`` is the full id universe; records claimed by no group become
    singletons.  ``stats`` (a :class:`~repro.run.stats.Phase2Stats`,
    duck-typed) records the peak anchor-group size.
    """
    groups = _scan_groups(iter_anchor_groups(cs_pairs), params, stats=stats)
    return _with_singletons(groups, ids)


# ----------------------------------------------------------------------
# Component-sharded extraction (the parallel path)
# ----------------------------------------------------------------------


def mutual_components(cs_pairs: Sequence[CSPair]) -> list[list[CSPair]]:
    """Split CSPairs rows into connected components of the mutual-NN
    graph, preserving the global ``(id1, id2)`` row order within each.

    Components never share a compact SN group: every group is a clique
    of mutual pairs, so all of its CSPairs edges lie inside one
    component.  That makes per-component extraction independent.
    """
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for row in cs_pairs:
        union(row.id1, row.id2)

    components: dict[int, list[CSPair]] = {}
    for row in cs_pairs:
        components.setdefault(find(row.id1), []).append(row)
    # Keyed by each component's minimum id; dict order follows first
    # appearance, which is already ascending-minimum for sorted input.
    return list(components.values())


def extract_component_groups(
    component: Sequence[CSPair], params: DEParams
) -> list[list[int]]:
    """Run the anchor scan over one mutual-NN component's sorted rows.

    Exactly the slice of the global scan that touches this component —
    the sharding argument above makes the concatenation over components
    equal the global result.  The incremental layer leans on this for
    bounded repair: a component whose rows did not change yields the
    same groups, so only touched components need re-extraction.
    """
    return _scan_groups(iter_anchor_groups(component), params)


def _extract_shard_groups(
    shard: list[list[CSPair]], params: DEParams
) -> list[list[int]]:
    """Extract groups for one shard of components (runs in a worker)."""
    groups: list[list[int]] = []
    for component in shard:
        groups.extend(extract_component_groups(component, params))
    return groups


def partition_records_sharded(
    ids: Iterable[int],
    cs_pairs: Iterable[CSPair],
    params: DEParams,
    n_workers: int = 2,
    pool: str = "thread",
    stats=None,
) -> Partition:
    """Partition via parallel per-component group extraction.

    Bit-identical to :func:`partition_records` for any worker count or
    pool kind: components are independent (see
    :func:`mutual_components`) and the final
    :meth:`~repro.core.result.Partition.from_groups` canonicalization
    is order-insensitive.  Sharding materializes the rows to build the
    component index, so this path trades the streaming bound for
    parallelism — spill runs keep ``n_workers == 1`` when memory is the
    constraint.
    """
    if pool not in ("thread", "process"):
        raise ValueError(f"unknown pool kind {pool!r}")
    rows = cs_pairs if isinstance(cs_pairs, list) else list(cs_pairs)
    components = mutual_components(rows)
    if stats is not None:
        stats.n_components = len(components)
        stats.peak_group_rows = max(
            [stats.peak_group_rows]
            + [len(list(g)) for c in components for _, g in groupby(c, key=lambda r: r.id1)]
        )

    # Deterministic balanced sharding: each component (in ascending
    # minimum-id order) lands on the currently lightest shard.
    n_shards = max(1, min(n_workers, len(components)))
    shards = _balance_components(components, n_shards)
    if stats is not None:
        stats.partition_shards = len(shards)

    if n_shards <= 1 or n_workers <= 1:
        shard_results = [_extract_shard_groups(shard, params) for shard in shards]
    elif pool == "thread":
        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            shard_results = list(
                executor.map(partial(_extract_shard_groups, params=params), shards)
            )
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            shard_results = list(
                executor.map(partial(_extract_shard_groups, params=params), shards)
            )

    groups = [group for result in shard_results for group in result]
    return _with_singletons(groups, ids)


def _balance_components(
    components: Sequence[list[CSPair]], n_shards: int
) -> list[list[list[CSPair]]]:
    """Assign each component to the currently lightest shard.

    A min-heap of ``(load, shard_index)`` makes each assignment
    ``O(log n_shards)`` instead of the former ``loads.index(min(loads))``
    re-scan — ``O(n_shards)`` per component, which dominated planning
    time for many small components on wide pools.  Tuple ordering
    breaks load ties on the lowest shard index, exactly reproducing the
    ``index(min(...))`` choice, so the assignment (and therefore the
    partition) is unchanged.
    """
    shards: list[list[list[CSPair]]] = [[] for _ in range(n_shards)]
    heap = [(0, idx) for idx in range(n_shards)]
    for component in components:
        load, idx = heapq.heappop(heap)
        shards[idx].append(component)
        heapq.heappush(heap, (load + len(component), idx))
    return shards


def _with_singletons(
    groups: list[list[int]], ids: Iterable[int]
) -> Partition:
    """Close the partition: every unclaimed record is a singleton."""
    assigned = {rid for group in groups for rid in group}
    singles = [[rid] for rid in ids if rid not in assigned]
    return Partition.from_groups(groups + singles)
