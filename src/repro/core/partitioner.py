"""Partitioning step — second step of Phase 2 (paper section 4.2).

Consume the CSPairs rows grouped by their minimum id (``Q[ID = v]`` in
the paper) and extract, for each unassigned ``v``, the largest
non-trivial compact SN set ``G_v`` that ``v`` can belong to:

- a group of size ``m`` exists under ``v`` iff exactly ``m - 1``
  partners ``w`` have equal m-neighbor sets with ``v`` (set equality is
  transitive, so the pairwise checks extend to the whole group);
- the group must satisfy the SN criterion ``AGG({ng}) < c``;
- the cut specification is honored by construction (flags are only
  computed up to ``K`` for the size spec; for the diameter spec, equal
  prefix sets of within-θ lists imply ``Diameter(G) <= θ``).

Scanning candidate sizes from largest to smallest guarantees maximality
("it cannot be extended to a larger compact SN set"); records never
claimed by any group become singletons.  The correctness argument is
the paper's: every compact SN set in the solution is grouped under its
minimum id, because its members' m-neighbor sets all equal the set
itself.
"""

from __future__ import annotations

from itertools import groupby
from typing import Iterable, Sequence

from repro.core.criteria import aggregate
from repro.core.cspairs import CSPair
from repro.core.formulation import DEParams
from repro.core.result import Partition

__all__ = ["partition_records", "extract_group", "rows_by_anchor"]


def rows_by_anchor(cs_pairs: Sequence[CSPair]) -> dict[int, list[CSPair]]:
    """Group sorted CSPairs rows by their anchor ``id1``.

    This is the paper's ``Q[ID = v]`` access pattern; the partitioner
    consumes it in anchor order, and the runtime verifier reuses it to
    re-derive group support from the same rows.
    """
    return {
        anchor: list(rows)
        for anchor, rows in groupby(cs_pairs, key=lambda row: row.id1)
    }


def extract_group(
    anchor: int,
    anchor_ng: int,
    rows: Sequence[CSPair],
    params: DEParams,
    assigned: set[int],
) -> list[int] | None:
    """Return the largest valid compact SN group under ``anchor``.

    ``rows`` are the CSPairs rows with ``id1 == anchor``.  Returns the
    sorted member list (anchor included) or ``None`` when no non-trivial
    group qualifies.
    """
    if not rows:
        return None
    max_m = max(len(row.flags) + 1 for row in rows)
    for m in range(max_m, 1, -1):
        partners = [row for row in rows if row.supports_size(m)]
        if len(partners) != m - 1:
            continue
        if any(row.id2 in assigned for row in partners):
            # Only possible under tie/approximation noise; the paper's
            # distinct-distance analysis rules it out.  Try smaller m.
            continue
        growths = [float(anchor_ng)] + [float(row.ng2) for row in partners]
        if aggregate(params.agg, growths) >= params.c:
            continue
        return sorted([anchor] + [row.id2 for row in partners])
    return None


def partition_records(
    ids: Iterable[int],
    cs_pairs: Sequence[CSPair],
    params: DEParams,
) -> Partition:
    """Partition the relation given its (sorted) CSPairs rows.

    ``cs_pairs`` must be sorted by ``(id1, id2)`` — the output order of
    the CS-group query.  ``ids`` is the full id universe; records
    claimed by no group become singletons.
    """
    assigned: set[int] = set()
    groups: list[list[int]] = []

    for anchor, rows in rows_by_anchor(cs_pairs).items():
        if anchor in assigned:
            continue
        group = extract_group(anchor, rows[0].ng1, rows, params, assigned)
        if group is not None:
            groups.append(group)
            assigned.update(group)

    for rid in ids:
        if rid not in assigned:
            groups.append([rid])
            assigned.add(rid)

    return Partition.from_groups(groups)
