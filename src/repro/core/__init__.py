"""Core DE framework: criteria, formulation, two-phase algorithm.

The paper's primary contribution lives here; substrates (distances,
indexes, storage, baselines, data) live in sibling subpackages.
"""

from repro.core.criteria import (
    AGGREGATIONS,
    aggregate,
    group_diameter,
    is_compact_set,
    is_sn_group,
    neighborhood_growth_brute,
    nn_distance_brute,
)
from repro.core.cspairs import CSPair, build_cs_pairs, prefix_equal_flags
from repro.core.explain import PairExplanation, explain_group, explain_pair
from repro.core.incremental import IncrementalDeduplicator
from repro.core.merge import (
    MergePlan,
    MergeResult,
    first_by_id,
    least_abbreviated_value,
    longest_value,
    merge_partition,
    most_frequent_value,
)
from repro.core.review import ReviewCandidate, fragile_groups, near_miss_pairs
from repro.core.formulation import CombinedCut, CutSpec, DEParams, DiameterCut, SizeCut
from repro.core.minimality import enforce_minimality
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.core.partitioner import partition_records
from repro.core.pipeline import DEResult, DuplicateEliminator
from repro.core.predicates import apply_constraining_predicate
from repro.core.radius import (
    AffineRadius,
    CappedRadius,
    LinearRadius,
    PowerRadius,
    RadiusFunction,
)
from repro.core.result import Partition
from repro.core.serialize import load_result, save_result
from repro.core.threshold import ThresholdEstimate, estimate_sn_threshold

__all__ = [
    "AGGREGATIONS",
    "aggregate",
    "is_compact_set",
    "is_sn_group",
    "group_diameter",
    "neighborhood_growth_brute",
    "nn_distance_brute",
    "DEParams",
    "SizeCut",
    "DiameterCut",
    "CombinedCut",
    "CutSpec",
    "NNEntry",
    "NNRelation",
    "Phase1Stats",
    "prepare_nn_lists",
    "CSPair",
    "build_cs_pairs",
    "prefix_equal_flags",
    "partition_records",
    "Partition",
    "DEResult",
    "DuplicateEliminator",
    "estimate_sn_threshold",
    "ThresholdEstimate",
    "enforce_minimality",
    "apply_constraining_predicate",
    "explain_pair",
    "explain_group",
    "PairExplanation",
    "RadiusFunction",
    "LinearRadius",
    "AffineRadius",
    "PowerRadius",
    "CappedRadius",
    "save_result",
    "load_result",
    "IncrementalDeduplicator",
    "MergePlan",
    "MergeResult",
    "merge_partition",
    "longest_value",
    "most_frequent_value",
    "least_abbreviated_value",
    "first_by_id",
    "ReviewCandidate",
    "near_miss_pairs",
    "fragile_groups",
]
