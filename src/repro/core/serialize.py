"""JSON serialization of DE results.

Deduplication runs feed downstream pipelines (merge tooling, manual
review queues); these helpers persist what they need — the partition,
the NN evidence, and the parameters that produced them — as plain JSON.

>>> save_result(result, "run.json")
>>> partition, nn_relation, params = load_result("run.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.formulation import CombinedCut, DEParams, DiameterCut, SizeCut
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.pipeline import DEResult
from repro.core.result import Partition
from repro.index.base import Neighbor

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "params_to_dict",
    "params_from_dict",
    "nn_relation_to_dict",
    "nn_relation_from_dict",
    "save_result",
    "load_result",
]


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    return {"groups": [list(group) for group in partition.groups]}


def partition_from_dict(payload: dict[str, Any]) -> Partition:
    return Partition.from_groups(payload["groups"])


def params_to_dict(params: DEParams) -> dict[str, Any]:
    cut: dict[str, Any]
    if isinstance(params.cut, SizeCut):
        cut = {"type": "size", "k": params.cut.k}
    elif isinstance(params.cut, CombinedCut):
        cut = {"type": "combined", "k": params.cut.k, "theta": params.cut.theta}
    else:
        cut = {"type": "diameter", "theta": params.cut.theta}
    return {"cut": cut, "agg": params.agg, "c": params.c, "p": params.p}


def params_from_dict(payload: dict[str, Any]) -> DEParams:
    cut_payload = payload["cut"]
    if cut_payload["type"] == "size":
        cut: SizeCut | DiameterCut | CombinedCut = SizeCut(cut_payload["k"])
    elif cut_payload["type"] == "diameter":
        cut = DiameterCut(cut_payload["theta"])
    elif cut_payload["type"] == "combined":
        cut = CombinedCut(cut_payload["k"], cut_payload["theta"])
    else:
        raise ValueError(f"unknown cut type {cut_payload['type']!r}")
    return DEParams(
        cut=cut, agg=payload["agg"], c=payload["c"], p=payload["p"]
    )


def nn_relation_to_dict(nn_relation: NNRelation) -> dict[str, Any]:
    return {
        "entries": [
            {
                "rid": entry.rid,
                "ng": entry.ng,
                "neighbors": [[n.rid, n.distance] for n in entry.neighbors],
            }
            for entry in nn_relation
        ]
    }


def nn_relation_from_dict(payload: dict[str, Any]) -> NNRelation:
    nn_relation = NNRelation()
    for entry in payload["entries"]:
        nn_relation.add(
            NNEntry(
                rid=entry["rid"],
                neighbors=tuple(
                    Neighbor(distance, rid) for rid, distance in entry["neighbors"]
                ),
                ng=entry["ng"],
            )
        )
    return nn_relation


def save_result(result: DEResult, path: str | Path) -> None:
    """Write a DE result (partition, NN relation, parameters) as JSON."""
    payload = {
        "format": "repro-de-result",
        "version": 1,
        "params": params_to_dict(result.params),
        "partition": partition_to_dict(result.partition),
        "nn_relation": nn_relation_to_dict(result.nn_relation),
        "stats": {
            # Flat legacy keys, kept for older readers...
            "phase1_lookups": result.phase1.lookups,
            "phase1_seconds": result.phase1.seconds,
            "phase2_seconds": result.phase2_seconds,
            "n_cs_pairs": result.n_cs_pairs,
            # ...plus the unified telemetry (per-stage wall times,
            # distance-cache traffic, buffer stats on engine runs).
            "run": result.stats.to_dict(),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_result(path: str | Path) -> tuple[Partition, NNRelation, DEParams]:
    """Read back a saved DE result's partition, NN relation, and params."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-de-result":
        raise ValueError(f"{path} is not a saved DE result")
    return (
        partition_from_dict(payload["partition"]),
        nn_relation_from_dict(payload["nn_relation"]),
        params_from_dict(payload["params"]),
    )
