"""Checkers for the DE framework properties (paper section 3.1).

The paper analyzes DE in the spirit of Kleinberg's axiomatic framework
for clustering, establishing four lemmas.  This module provides
*empirical verifiers* used by the property-based tests and the L1-L4
benchmark:

- **Lemma 1 (uniqueness)** — re-solving an instance yields the same
  partition (the solver is a function).
- **Lemma 2 (scale invariance)** — ``DE_S(K)`` is unchanged under
  ``d -> alpha * d``.
- **Lemma 3 (split/merge consistency)** — under a P-conscious
  transformation of ``d`` (within-group distances shrink, cross-group
  distances grow), every new group is a subset of an old group or a
  union of old groups.
- **Lemma 4 (constrained richness)** — for suitable parameters the
  range of ``DE_S(K)`` includes all partitions into many small groups;
  :func:`realize_partition` constructs a distance function whose DE
  solution is a requested target partition.
"""

from __future__ import annotations

from repro.core.formulation import DEParams
from repro.core.pipeline import DuplicateEliminator
from repro.core.result import Partition
from repro.data.schema import Relation
from repro.distances.base import DistanceFunction, FunctionDistance, ScaledDistance

__all__ = [
    "check_uniqueness",
    "check_scale_invariance",
    "p_conscious_transform",
    "is_p_conscious",
    "check_split_merge_consistency",
    "realize_partition",
]


def _solve(relation: Relation, distance: DistanceFunction, params: DEParams) -> Partition:
    solver = DuplicateEliminator(distance, cache_distance=False)
    return solver.run(relation, params).partition


def check_uniqueness(
    relation: Relation, distance: DistanceFunction, params: DEParams, trials: int = 3
) -> bool:
    """Lemma 1: repeated runs produce identical partitions."""
    first = _solve(relation, distance, params)
    return all(_solve(relation, distance, params) == first for _ in range(trials - 1))


def check_scale_invariance(
    relation: Relation,
    distance: DistanceFunction,
    params: DEParams,
    alpha: float = 0.5,
) -> bool:
    """Lemma 2: ``DE_S(K)`` under ``d`` equals ``DE_S(K)`` under ``alpha*d``."""
    base = _solve(relation, distance, params)
    scaled = _solve(relation, ScaledDistance(distance, alpha), params)
    return base == scaled


def p_conscious_transform(
    distance: DistanceFunction,
    partition: Partition,
    shrink: float = 0.5,
    grow: float = 1.0,
    cap: float = 1.0,
) -> DistanceFunction:
    """Build a P-conscious transformation ``d'`` of ``distance``.

    Within-group distances are multiplied by ``shrink`` (<= 1); cross-
    group distances are pushed toward ``cap`` by factor ``grow`` (>= 1,
    clamped at ``cap``), so ``d'(u, v) >= d(u, v)`` across groups and
    ``d'(u, v) <= d(u, v)`` within groups — the paper's definition.
    """
    if shrink > 1.0 or shrink < 0.0:
        raise ValueError("shrink must be in [0, 1]")
    if grow < 1.0:
        raise ValueError("grow must be at least 1")

    def transformed(a, b) -> float:
        d = distance.distance(a, b)
        if partition.same_group(a.rid, b.rid):
            return d * shrink
        return min(cap, d * grow)

    wrapper = FunctionDistance(transformed, name=f"pconscious({distance.name})")
    return wrapper


def is_p_conscious(
    relation: Relation,
    original: DistanceFunction,
    transformed: DistanceFunction,
    partition: Partition,
) -> bool:
    """Verify the defining inequalities of a P-conscious transformation."""
    records = list(relation)
    for i, a in enumerate(records):
        for b in records[i + 1 :]:
            d0 = original.distance(a, b)
            d1 = transformed.distance(a, b)
            if partition.same_group(a.rid, b.rid):
                if d1 > d0:
                    return False
            elif d1 < d0:
                return False
    return True


def check_split_merge_consistency(
    relation: Relation,
    distance: DistanceFunction,
    params: DEParams,
    shrink: float = 0.5,
    grow: float = 1.2,
) -> bool:
    """Lemma 3: after a P-conscious transformation, every group of the
    new solution is a subset of an old group or a union of old groups."""
    original = _solve(relation, distance, params)
    transformed = p_conscious_transform(distance, original, shrink=shrink, grow=grow)
    new = _solve(relation, transformed, params)
    for group in new:
        subset_of_old = False
        try:
            container = set(original.group_of(group[0]))
            subset_of_old = set(group).issubset(container)
        except KeyError:
            return False
        if subset_of_old:
            continue
        if not new.is_union_of_groups(group, original):
            return False
    return True


def realize_partition(
    target: Partition,
    within: float = 0.05,
    across: float = 0.9,
) -> tuple[Relation, DistanceFunction]:
    """Construct an instance whose DE solution is ``target`` (Lemma 4).

    Builds a synthetic relation over the target's ids and a distance
    function placing group members at distance ``within`` (scaled by a
    distinct per-pair epsilon to keep distances unique) and everything
    else at about ``across``.  With ``c`` above the maximum group size
    and ``K`` at least the maximum group size, ``DE_S(K)`` recovers
    ``target``, which demonstrates the (α, β)-richness of the range.
    """
    ids = target.ids()
    relation = Relation.from_rows(
        "realized", ("value",), [[f"record-{rid}"] for rid in ids]
    )
    # Map relation record ids onto target ids positionally.
    id_map = dict(zip(relation.ids(), ids))

    def synthetic(a, b) -> float:
        ta, tb = id_map[a.rid], id_map[b.rid]
        if ta == tb:
            return 0.0
        lo, hi = min(ta, tb), max(ta, tb)
        jitter = ((lo * 31 + hi * 17) % 97) / 97.0
        if target.same_group(ta, tb):
            return within * (1.0 + 0.5 * jitter)
        return across * (1.0 + 0.1 * jitter)

    return relation, FunctionDistance(synthetic, name="realized")
