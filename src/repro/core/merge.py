"""Golden-record consolidation (the *elimination* in duplicate
elimination).

Detecting groups is half the task; most pipelines then collapse each
group into one canonical ("golden") record.  This module implements the
standard survivorship policies over a detected
:class:`~repro.core.result.Partition`:

- per-field **resolvers** pick the surviving value among a group's
  field values (longest, most frequent, least abbreviated, first by
  record id);
- a :class:`MergePlan` applies one resolver per schema field and emits
  the consolidated relation plus a lineage map (golden id → source
  ids).

The policies are deliberately simple and deterministic; the interesting
question — *which records co-refer* — is the paper's problem and is
solved upstream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.result import Partition
from repro.data.schema import Record, Relation

__all__ = [
    "FieldResolver",
    "longest_value",
    "most_frequent_value",
    "least_abbreviated_value",
    "first_by_id",
    "MergePlan",
    "MergeResult",
    "merge_partition",
]

#: A field resolver picks the surviving value from the group's values
#: (in ascending record-id order; never called with an empty list).
FieldResolver = Callable[[Sequence[str]], str]


def longest_value(values: Sequence[str]) -> str:
    """The longest value (ties: first in id order).

    A good default for free-text fields: corrupted copies usually *lose*
    information (dropped tokens, contractions), so the longest variant
    tends to be the intact one.
    """
    best = values[0]
    for value in values[1:]:
        if len(value) > len(best):
            best = value
    return best


def most_frequent_value(values: Sequence[str]) -> str:
    """The modal value (ties: first in id order).

    Right for categorical fields (state, zip code) where the majority
    is almost surely correct.
    """
    counts = Counter(values)
    best = values[0]
    for value in values:
        if counts[value] > counts[best]:
            best = value
    return best


def least_abbreviated_value(values: Sequence[str]) -> str:
    """The value with the fewest 1-2 character tokens, then longest.

    Prefers "Microsoft Corporation" over "Microsoft Corp" over
    "M S Corp": initials and contractions are what error injection (and
    real entry) produce.
    """

    def short_tokens(value: str) -> int:
        return sum(1 for token in value.split() if len(token) <= 2)

    best = values[0]
    for value in values[1:]:
        key_new = (short_tokens(value), -len(value))
        key_best = (short_tokens(best), -len(best))
        if key_new < key_best:
            best = value
    return best


def first_by_id(values: Sequence[str]) -> str:
    """The value of the smallest record id (stable, audit-friendly)."""
    return values[0]


@dataclass
class MergePlan:
    """Field-by-field survivorship policy.

    Parameters
    ----------
    default:
        Resolver applied to fields without an explicit entry.
    per_field:
        Attribute name → resolver overrides.
    """

    default: FieldResolver = longest_value
    per_field: dict[str, FieldResolver] = field(default_factory=dict)

    def resolver_for(self, attribute: str) -> FieldResolver:
        return self.per_field.get(attribute, self.default)


@dataclass
class MergeResult:
    """Outcome of consolidating a partition."""

    #: The consolidated relation (one record per group, fresh dense ids).
    golden: Relation
    #: golden record id -> sorted source record ids.
    lineage: dict[int, tuple[int, ...]]

    def sources_of(self, golden_rid: int) -> tuple[int, ...]:
        return self.lineage[golden_rid]

    @property
    def n_merged_away(self) -> int:
        """How many records the consolidation removed."""
        return sum(len(src) - 1 for src in self.lineage.values())


def merge_partition(
    relation: Relation,
    partition: Partition,
    plan: MergePlan | None = None,
    name: str | None = None,
) -> MergeResult:
    """Collapse each group of ``partition`` into one golden record.

    Groups are processed in canonical partition order; singleton groups
    pass their record through unchanged (but still re-identified, so
    golden ids are dense).
    """
    plan = plan if plan is not None else MergePlan()
    resolvers = [plan.resolver_for(attribute) for attribute in relation.schema]

    golden = Relation(
        name=name or f"{relation.name}_golden", schema=relation.schema
    )
    lineage: dict[int, tuple[int, ...]] = {}
    for golden_rid, group in enumerate(partition.groups):
        members = [relation.get(rid) for rid in group]
        fields_out = tuple(
            resolvers[index]([member.fields[index] for member in members])
            for index in range(len(relation.schema))
        )
        golden.add(Record(golden_rid, fields_out))
        lineage[golden_rid] = tuple(group)
    return MergeResult(golden=golden, lineage=lineage)
