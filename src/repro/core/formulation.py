"""The DE problem formulation: parameters and cut specifications.

The paper's DE problem (section 3): given a relation ``R``, a distance
``d``, an aggregation ``AGG``, an SN threshold ``c``, and a *cut
specification* — a size bound ``K`` (``DE_S(K)``) or a diameter bound
``θ`` (``DE_D(θ)``) — partition ``R`` into the minimum number of groups
that are each (i) compact, (ii) ``SN(AGG, c)``, and (iii) within the
cut bound.

The initial CS+SN-only formulation is deliberately *not* offered: the
paper shows it degenerates (its integer example collapses
``{1, 2, 4, 21, 22, 31, 32}`` into one group), which is exactly why the
cut specifications exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.criteria import AGGREGATIONS

__all__ = ["SizeCut", "DiameterCut", "CombinedCut", "CutSpec", "DEParams"]


@dataclass(frozen=True)
class SizeCut:
    """``|G| <= K``: groups of duplicates are small (``DE_S(K)``)."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("K must be a positive integer")

    def __str__(self) -> str:
        return f"size<={self.k}"


@dataclass(frozen=True)
class DiameterCut:
    """``Diameter(G) <= θ``: within-group distances are bounded (``DE_D(θ)``)."""

    theta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.theta < 1.0:
            raise ValueError("theta must be in the open interval (0, 1)")

    def __str__(self) -> str:
        return f"diam<={self.theta}"


@dataclass(frozen=True)
class CombinedCut:
    """``|G| <= K`` **and** ``Diameter(G) <= θ`` together.

    The paper notes "it is also possible to use size and diameter
    specifications together"; Phase 1 then fetches the K nearest
    neighbors within radius θ, and both bounds hold by construction.
    """

    k: int
    theta: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("K must be a positive integer")
        if not 0.0 < self.theta < 1.0:
            raise ValueError("theta must be in the open interval (0, 1)")

    def __str__(self) -> str:
        return f"size<={self.k}&diam<={self.theta}"


CutSpec = Union[SizeCut, DiameterCut, CombinedCut]


@dataclass(frozen=True)
class DEParams:
    """Full parameterization of a DE problem instance.

    Parameters
    ----------
    cut:
        The size or diameter specification.
    agg:
        SN aggregation function name (``max``, ``avg``, or ``max2``).
    c:
        SN threshold (must exceed 1: a lone duplicate pair already has
        neighborhood growth 2).
    p:
        Neighborhood radius multiplier; the paper fixes ``p = 2``.
    """

    cut: CutSpec
    agg: str = "max"
    c: float = 4.0
    p: float = 2.0

    def __post_init__(self) -> None:
        if self.agg not in AGGREGATIONS:
            raise ValueError(
                f"unknown aggregation {self.agg!r}; expected one of "
                f"{sorted(AGGREGATIONS)}"
            )
        if self.c <= 1.0:
            raise ValueError("SN threshold c must be greater than 1")
        if self.p <= 1.0:
            raise ValueError("neighborhood multiplier p must exceed 1")

    @property
    def is_size_spec(self) -> bool:
        return isinstance(self.cut, SizeCut)

    @property
    def k(self) -> int:
        """The size bound K (size and combined specifications)."""
        if not isinstance(self.cut, (SizeCut, CombinedCut)):
            raise AttributeError("diameter-spec parameters have no K")
        return self.cut.k

    @property
    def theta(self) -> float:
        """The diameter bound θ (diameter and combined specifications)."""
        if not isinstance(self.cut, (DiameterCut, CombinedCut)):
            raise AttributeError("size-spec parameters have no theta")
        return self.cut.theta

    def describe(self) -> str:
        return f"DE({self.cut}, agg={self.agg}, c={self.c}, p={self.p})"

    @classmethod
    def size(cls, k: int, agg: str = "max", c: float = 4.0, p: float = 2.0) -> "DEParams":
        """Convenience constructor for ``DE_S(K)``."""
        return cls(cut=SizeCut(k), agg=agg, c=c, p=p)

    @classmethod
    def diameter(
        cls, theta: float, agg: str = "max", c: float = 4.0, p: float = 2.0
    ) -> "DEParams":
        """Convenience constructor for ``DE_D(θ)``."""
        return cls(cut=DiameterCut(theta), agg=agg, c=c, p=p)

    @classmethod
    def combined(
        cls,
        k: int,
        theta: float,
        agg: str = "max",
        c: float = 4.0,
        p: float = 2.0,
    ) -> "DEParams":
        """Convenience constructor for the joint size+diameter cut."""
        return cls(cut=CombinedCut(k, theta), agg=agg, c=c, p=p)
