"""First-class constraint algebra for constraint-aware deduplication.

The paper's constraining predicates (section 4.5.1) model *negative*
domain knowledge: certain tuple pairs cannot be duplicates.  This
module turns that idea into a small typed algebra that every execution
layer speaks:

- :class:`CannotLink` — two records whose values in a field *differ*
  (both non-empty) cannot be duplicates (the paper's "identical but for
  the version number" example);
- :class:`BlockKey` — a hard must-share-key predicate: records are
  duplicate candidates only when they agree exactly on the field.  Hard
  keys partition the relation into equivalence classes, so the pushdown
  planner can turn them into blocks;
- :class:`TimeWindow` — a temporal predicate: records are duplicate
  candidates only when their ISO dates in a field lie within ``days``
  of each other.  ``hard`` windows participate in block planning
  (timestamp-sorted gap splits are sound equivalence cuts); soft ones
  only filter pairs.

A *conjunction* of constraints is just a tuple — every layer evaluates
all of them (:class:`PairFilter`).  Constraints are frozen dataclasses
that serialize to plain dicts (:func:`constraint_to_dict` /
:func:`constraint_from_dict`), so they ride inside
:class:`~repro.run.config.RunConfig` and pickle across process pools.

Missing-value semantics are strict and mode-independent by design:

- ``CannotLink`` never fires when either value is empty (absence of a
  version number forbids nothing);
- ``BlockKey`` compares raw values, so empty keys form their own block;
- ``TimeWindow`` treats an unparseable or empty date as *violating*
  (the record can match nothing under the window).  Strictness is what
  keeps postprocess and pushdown semantics coincident: a lenient
  "can't evaluate, allow" rule would admit pairs in postprocess mode
  that pushdown blocking can never co-locate.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Iterable, Mapping, Sequence

from repro.data.schema import Record, Relation

__all__ = [
    "BlockKey",
    "CannotLink",
    "Constraint",
    "ConstraintError",
    "PairFilter",
    "RelationPairFilter",
    "TimeWindow",
    "constraint_from_dict",
    "constraint_to_dict",
    "constraints_from_dicts",
    "constraints_to_dicts",
    "hard_constraints",
    "parse_day",
    "plan_blocks",
    "residual_constraints",
    "validate_constraints",
]


class ConstraintError(ValueError):
    """An invalid constraint (unknown kind, bad field, bad window)."""


def parse_day(value: str) -> int | None:
    """Parse an ISO ``YYYY-MM-DD`` date to its ordinal day, else ``None``."""
    try:
        return datetime.date.fromisoformat(value.strip()).toordinal()
    except ValueError:
        return None


@dataclass(frozen=True)
class Constraint:
    """Base class: one predicate over a named schema field."""

    #: Serialization tag; each subclass sets its own.
    kind: ClassVar[str] = ""

    field: str

    @property
    def hard(self) -> bool:
        """Hard constraints define equivalence classes the planner may
        turn into blocks; soft ones only filter pairs."""
        return False

    def validate(self, schema: Sequence[str]) -> None:
        if self.field not in schema:
            raise ConstraintError(
                f"{self.kind} constraint references field {self.field!r} "
                f"not in schema {tuple(schema)}"
            )

    def allows(self, a: Record, b: Record, schema: Sequence[str]) -> bool:
        """Convenience single-pair evaluation (tests, small groups)."""
        return PairFilter((self,), schema)(a, b)


@dataclass(frozen=True)
class CannotLink(Constraint):
    """Records with *differing* non-empty values in ``field`` cannot link."""

    kind: ClassVar[str] = "cannot-link"


@dataclass(frozen=True)
class BlockKey(Constraint):
    """Records must agree exactly on ``field`` to be duplicate candidates."""

    kind: ClassVar[str] = "block-key"

    @property
    def hard(self) -> bool:
        return True


@dataclass(frozen=True)
class TimeWindow(Constraint):
    """Records' ISO dates in ``field`` must lie within ``days`` of each other.

    ``hard`` windows additionally drive pushdown block planning: sorting
    a block by date and cutting wherever consecutive records are more
    than ``days`` apart yields sound equivalence classes (any cross-cut
    pair is separated by more than ``days``).  The cut is coarser than
    the pairwise window — records chained through intermediates can
    share a block yet violate the window pairwise — so a window always
    also acts as a pair filter, in every mode.
    """

    kind: ClassVar[str] = "time-window"

    days: int = 30
    hard_window: bool = True

    @property
    def hard(self) -> bool:
        return self.hard_window

    def validate(self, schema: Sequence[str]) -> None:
        super().validate(schema)
        if self.days < 0:
            raise ConstraintError(
                f"time-window days must be non-negative; got {self.days!r}"
            )


_KINDS: dict[str, type[Constraint]] = {
    cls.kind: cls for cls in (CannotLink, BlockKey, TimeWindow)
}


def constraint_to_dict(constraint: Constraint) -> dict[str, Any]:
    """Serialize one constraint to a plain JSON-friendly dict."""
    payload: dict[str, Any] = {"kind": constraint.kind}
    for f in fields(constraint):
        payload[f.name] = getattr(constraint, f.name)
    return payload


def constraint_from_dict(payload: Mapping[str, Any]) -> Constraint:
    """Rebuild a constraint from :func:`constraint_to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise ConstraintError(
            f"unknown constraint kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConstraintError(f"unknown {kind} constraint keys {unknown}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConstraintError(f"invalid {kind} constraint: {exc}") from exc


def constraints_to_dicts(constraints: Iterable[Constraint]) -> tuple[dict, ...]:
    return tuple(constraint_to_dict(c) for c in constraints)


def constraints_from_dicts(payloads: Iterable[Mapping]) -> tuple[Constraint, ...]:
    return tuple(constraint_from_dict(p) for p in payloads)


def validate_constraints(
    constraints: Iterable[Constraint], schema: Sequence[str]
) -> None:
    """Check every constraint's field against ``schema`` (raises)."""
    for constraint in constraints:
        constraint.validate(schema)


def hard_constraints(
    constraints: Iterable[Constraint],
) -> tuple[Constraint, ...]:
    """The constraints eligible to drive pushdown block planning."""
    return tuple(c for c in constraints if c.hard)


def residual_constraints(
    constraints: Iterable[Constraint],
) -> tuple[Constraint, ...]:
    """The constraints that must still filter pairs *inside* a block.

    ``BlockKey`` is fully discharged by blocking (equal keys by
    construction); everything else — soft constraints and time windows,
    whose gap blocks over-admit chained records — remains pairwise.
    """
    return tuple(c for c in constraints if not isinstance(c, BlockKey))


class PairFilter:
    """Compiled conjunction: ``filter(a, b)`` is True when the pair is
    *allowed* by every constraint.

    Field indexes are resolved once against the schema, and date parses
    are memoized per distinct value.  Instances pickle (process-pool
    join workers ship them inside the chunk payload); the memo travels
    along, which is harmless.
    """

    def __init__(
        self, constraints: Sequence[Constraint], schema: Sequence[str]
    ) -> None:
        validate_constraints(constraints, schema)
        self.constraints = tuple(constraints)
        self.schema = tuple(schema)
        self._checks: list[tuple[str, int, int]] = []
        for constraint in self.constraints:
            idx = self.schema.index(constraint.field)
            days = constraint.days if isinstance(constraint, TimeWindow) else 0
            self._checks.append((constraint.kind, idx, days))
        self._day_memo: dict[str, int | None] = {}

    def __call__(self, a: Record, b: Record) -> bool:
        for kind, idx, days in self._checks:
            va, vb = a.fields[idx], b.fields[idx]
            if kind == "block-key":
                if va != vb:
                    return False
            elif kind == "cannot-link":
                if va and vb and va != vb:
                    return False
            else:  # time-window
                da, db = self._day(va), self._day(vb)
                if da is None or db is None or abs(da - db) > days:
                    return False
        return True

    def forbids(self, a: Record, b: Record) -> bool:
        """The cannot-link view of the conjunction (postprocess split)."""
        return not self(a, b)

    def _day(self, value: str) -> int | None:
        try:
            return self._day_memo[value]
        except KeyError:
            day = parse_day(value)
            self._day_memo[value] = day
            return day


class RelationPairFilter:
    """A :class:`PairFilter` bound to a relation: evaluates *rid* pairs.

    The Phase-2 join speaks record ids, not records; this adapter
    resolves them.  Instances pickle (relation records are plain data),
    so the process-pool join initializer can ship one to each worker.
    """

    def __init__(self, pair_filter: PairFilter, relation: Relation) -> None:
        self.pair_filter = pair_filter
        self.relation = relation

    def __call__(self, rid1: int, rid2: int) -> bool:
        return self.pair_filter(
            self.relation.get(rid1), self.relation.get(rid2)
        )


def plan_blocks(
    relation: Relation, constraints: Sequence[Constraint]
) -> list[list[int]]:
    """Partition the relation's rids into hard-constraint blocks.

    Starts from one block per combination of ``BlockKey`` values, then
    refines each block under every hard ``TimeWindow``: sort by date
    ordinal and cut wherever consecutive records lie more than ``days``
    apart.  Records whose date fails to parse become singleton blocks
    (the strict window semantics: they match nothing).  Blocks are
    disjoint, cover the relation, and are ordered by minimum rid.
    """
    hard = hard_constraints(constraints)
    schema = relation.schema
    validate_constraints(hard, schema)
    key_indexes = [
        schema.index(c.field) for c in hard if isinstance(c, BlockKey)
    ]
    windows = [
        (schema.index(c.field), c.days)
        for c in hard
        if isinstance(c, TimeWindow)
    ]

    by_key: dict[tuple[str, ...], list[int]] = {}
    for record in relation:
        key = tuple(record.fields[idx] for idx in key_indexes)
        by_key.setdefault(key, []).append(record.rid)

    blocks = [sorted(rids) for rids in by_key.values()]
    for idx, days in windows:
        refined: list[list[int]] = []
        for block in blocks:
            dated: list[tuple[int, int]] = []
            for rid in block:
                day = parse_day(relation.get(rid).fields[idx])
                if day is None:
                    refined.append([rid])
                else:
                    dated.append((day, rid))
            dated.sort()
            current: list[int] = []
            previous: int | None = None
            for day, rid in dated:
                if previous is not None and day - previous > days:
                    refined.append(sorted(current))
                    current = []
                current.append(rid)
                previous = day
            if current:
                refined.append(sorted(current))
        blocks = refined

    return sorted((sorted(block) for block in blocks), key=lambda b: b[0])
