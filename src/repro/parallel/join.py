"""The partitioned, multi-worker Phase-2 CSPairs self-join.

The paper's Phase 2 starts with a SQL self-join of ``NN_Reln``: every
mutual pair ``(id1 < id2)`` becomes one CSPairs row carrying the
prefix-set-equality flags.  :class:`ParallelCSJoinEngine` runs that
join hash-partitioned by anchor id:

- the *anchor order* (the ascending ids of ``NN_Reln``) is split into
  contiguous chunks with the same planner Phase 1 uses
  (:func:`repro.parallel.chunking.plan_chunks`);
- each worker resolves its chunk against a shared
  :class:`~repro.storage.engine.HashIndex` on ``id``, probing all join
  keys of an outer row with one :meth:`~repro.storage.engine.HashIndex
  .probe_batch` call, and emits a *locally sorted run* of CSPairs rows;
- the runs are k-way merged into the final ``ORDER BY (id1, id2)``.

Because every CSPairs row ``(id1, id2)`` has ``id2`` drawn from
``id1``'s NN-list, partitioning the *outer* side by anchor id covers
every output row exactly once, and because ``(id1, id2)`` is a key of
the output, the merged result is **bit-identical to the sequential
join for any worker count, pool kind, or chunk size** — the same
contract the parallel Phase-1 engine gives.

Pool choice mirrors :class:`~repro.parallel.engine.ParallelNNEngine`:
``"thread"`` shares one index (no copies, GIL-serialized compute),
``"process"`` ships the index buckets to each worker once via the pool
initializer.  Unlike Phase 1, the join kernel needs no distance
function — chunks, rows, and params all pickle — so the process pool
works under any distance.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

from repro.core.cspairs import (
    CSPAIRS_SCHEMA,
    CSPair,
    max_pair_size,
    nn_list_limit,
    prefix_equal_flags,
)
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.parallel.chunking import Chunk, plan_chunks
from repro.storage.engine import HashIndex
from repro.storage.table import HeapTable, Row

__all__ = [
    "JoinChunkResult",
    "ParallelCSJoinEngine",
    "merge_runs",
    "build_cs_pairs_parallel",
    "build_cs_pairs_engine_parallel",
]

PoolKind = Literal["thread", "process"]

#: Chunks per worker (same smoothing rationale as Phase 1).
CHUNKS_PER_WORKER = 4

def _pair_key(row: Row) -> tuple[int, int]:
    """Sort key of the CSPairs output — the paper's CS-group query order."""
    return (row[0], row[1])


@dataclass
class JoinChunkResult:
    """One worker's sorted run for one anchor-range chunk.

    ``pairs_emitted`` is stored separately from ``pairs`` because the
    out-of-core path clears the row list as soon as the run is spilled
    to a scratch table, while the accounting must survive.
    """

    chunk_index: int
    pairs: list[Row]
    rows_probed: int
    keys_probed: int
    pairs_emitted: int
    seconds: float
    #: Mutual pairs dropped by a constraint pair filter (inline mode).
    pairs_filtered: int = 0

    def release(self) -> None:
        """Drop the row payload (the run now lives in a scratch table)."""
        self.pairs = []


def _join_chunk(
    index: HashIndex, params: DEParams, chunk: Chunk, pair_filter=None
) -> JoinChunkResult:
    """Join one contiguous anchor-id range against the shared index.

    Runs inside a worker.  Emits the chunk's CSPairs rows sorted by
    ``(id1, id2)`` — a ready-to-merge run.  ``pair_filter`` (a rid-pair
    predicate, e.g. :class:`repro.core.constraints.RelationPairFilter`)
    drops mutual pairs the constraints forbid before any flags are
    computed — the inline constraint mode's join-time discharge.
    """
    started = time.perf_counter()
    rows_probed = 0
    keys_probed = 0
    pairs_filtered = 0
    pairs: list[Row] = []
    probe_batch = index.probe_batch
    for rid in chunk.rids:
        bucket = index.get(rid)
        if not bucket:
            continue
        left = bucket[0]
        _, nn_list, _dists, left_ng = left
        rows_probed += 1
        limit = nn_list_limit(params, len(nn_list))
        keys = [other for other in nn_list[:limit] if other > rid]
        if not keys:
            continue
        keys_probed += len(keys)
        for right_bucket in probe_batch(keys):
            for right in right_bucket:
                r_list = right[1]
                if rid not in r_list[: nn_list_limit(params, len(r_list))]:
                    continue  # not mutual
                if pair_filter is not None and not pair_filter(rid, right[0]):
                    pairs_filtered += 1
                    continue
                max_m = max_pair_size(len(nn_list), len(r_list), params)
                pairs.append(
                    (
                        rid,
                        right[0],
                        left_ng,
                        right[3],
                        prefix_equal_flags(
                            rid, nn_list, right[0], r_list, max_m
                        ),
                    )
                )
    pairs.sort(key=_pair_key)
    return JoinChunkResult(
        chunk_index=chunk.index,
        pairs=pairs,
        rows_probed=rows_probed,
        keys_probed=keys_probed,
        pairs_emitted=len(pairs),
        seconds=time.perf_counter() - started,
        pairs_filtered=pairs_filtered,
    )


# ----------------------------------------------------------------------
# Process-pool plumbing: ship the (index, params) payload to each
# worker once via the initializer instead of once per chunk.
# ----------------------------------------------------------------------

_JOIN_PAYLOAD: dict = {}


def _init_join_worker(index, params, pair_filter=None) -> None:
    _JOIN_PAYLOAD["args"] = (index, params, pair_filter)


def _join_chunk_in_process(chunk: Chunk) -> JoinChunkResult:
    index, params, pair_filter = _JOIN_PAYLOAD["args"]
    return _join_chunk(index, params, chunk, pair_filter)


class ParallelCSJoinEngine:
    """Chunked Phase-2 join executor over a ``concurrent.futures`` pool.

    Parameters
    ----------
    n_workers:
        Worker count.  ``1`` runs the chunks inline — still through the
        batched probe path, which is what the Phase-2 benchmark
        measures against the row-at-a-time sequential join.
    pool:
        ``"thread"`` (default; shared index) or ``"process"`` (true
        parallelism; buckets pickled to each worker once).
    chunk_size:
        Fixed anchors per chunk; default is a balanced split into
        ``n_workers * CHUNKS_PER_WORKER`` chunks (minimum 2, so even a
        single-worker run never materializes the whole join at once).
    """

    def __init__(
        self,
        n_workers: int = 1,
        pool: PoolKind = "thread",
        chunk_size: int | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if pool not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {pool!r}")
        self.n_workers = n_workers
        self.pool: PoolKind = pool
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------

    def plan(self, anchor_ids: Sequence[int]) -> list[Chunk]:
        """The contiguous anchor-range partitioning for one join."""
        if self.chunk_size is not None:
            return plan_chunks(anchor_ids, chunk_size=self.chunk_size)
        n_chunks = max(2, self.n_workers * CHUNKS_PER_WORKER)
        return plan_chunks(anchor_ids, n_chunks=n_chunks)

    def iter_chunk_results(
        self,
        anchor_ids: Sequence[int],
        index: HashIndex,
        params: DEParams,
        pair_filter=None,
    ) -> Iterator[JoinChunkResult]:
        """Yield each chunk's sorted run, in chunk (= anchor) order.

        The streaming core: a consumer can spill each run out of core
        as soon as it arrives, so peak memory holds one run, never the
        whole CSPairs relation.  ``pair_filter`` (picklable rid-pair
        predicate) drops forbidden mutual pairs inside the workers.
        """
        chunks = self.plan(anchor_ids)
        if self.n_workers == 1 or len(chunks) <= 1:
            for chunk in chunks:
                yield _join_chunk(index, params, chunk, pair_filter)
        elif self.pool == "thread":
            with ThreadPoolExecutor(max_workers=self.n_workers) as executor:
                yield from executor.map(
                    lambda chunk: _join_chunk(index, params, chunk, pair_filter),
                    chunks,
                )
        else:
            with ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_join_worker,
                initargs=(index, params, pair_filter),
            ) as executor:
                yield from executor.map(_join_chunk_in_process, chunks)

    def join_rows(
        self,
        anchor_ids: Sequence[int],
        index: HashIndex,
        params: DEParams,
        stats=None,
        pair_filter=None,
    ) -> list[Row]:
        """The merged, fully sorted CSPairs rows.

        ``stats`` (a :class:`~repro.run.stats.Phase2Stats`, duck-typed)
        accumulates the join accounting: per-worker run stats, probe
        counts, and the split between parallel join time and the final
        k-way merge.
        """
        started = time.perf_counter()
        results = list(
            self.iter_chunk_results(anchor_ids, index, params, pair_filter)
        )
        join_seconds = time.perf_counter() - started

        merge_started = time.perf_counter()
        merged = list(merge_runs(result.pairs for result in results))
        merge_seconds = time.perf_counter() - merge_started
        if stats is not None:
            record_join(stats, self, results, join_seconds, merge_seconds)
        return merged

    def describe(self) -> str:
        return f"{self.n_workers} worker(s), {self.pool} pool"


def merge_runs(runs) -> Iterator[Row]:
    """K-way merge of sorted CSPairs runs into ``ORDER BY (id1, id2)``.

    Contiguous anchor partitioning makes the runs' key ranges disjoint,
    so this degenerates to concatenation — but the heap merge is
    correct for *any* partitioning (including the pair-count-bounded
    sub-runs the spill path writes), which keeps the output invariant
    independent of the planning policy.
    """
    return heapq.merge(*runs, key=_pair_key)


def record_join(
    stats,
    engine: ParallelCSJoinEngine,
    results: Sequence[JoinChunkResult],
    join_seconds: float,
    merge_seconds: float,
) -> None:
    """Accumulate one join's accounting into a Phase-2 stats object."""
    stats.join_workers = engine.n_workers
    stats.join_pool = engine.pool
    stats.join_seconds += join_seconds
    stats.merge_seconds += merge_seconds
    stats.n_join_chunks += len(results)
    for result in results:
        stats.rows_probed += result.rows_probed
        stats.probes += result.keys_probed
        stats.pairs_emitted += result.pairs_emitted
        stats.pairs_filtered += result.pairs_filtered
        stats.peak_run_rows = max(stats.peak_run_rows, result.pairs_emitted)
        stats.worker_runs.append(
            {
                "chunk": result.chunk_index,
                "rows_probed": result.rows_probed,
                "probes": result.keys_probed,
                "pairs_emitted": result.pairs_emitted,
                "seconds": result.seconds,
            }
        )


def rows_to_cs_pairs(rows) -> list[CSPair]:
    """Materialize sorted join rows as :class:`CSPair` objects."""
    return [
        CSPair(id1=row[0], id2=row[1], ng1=row[2], ng2=row[3],
               flags=tuple(row[4]))
        for row in rows
    ]


def build_cs_pairs_engine_parallel(
    engine,
    params: DEParams,
    n_workers: int = 1,
    pool: PoolKind = "thread",
    chunk_size: int | None = None,
    nn_table_name: str = "NN_Reln",
    cs_table_name: str = "CSPairs",
    stats=None,
    spill_runs: bool = False,
    pair_filter=None,
) -> HeapTable:
    """CSPairs via the storage engine, hash-partitioned by anchor id.

    The multi-core counterpart of :func:`repro.core.cspairs
    .build_cs_pairs_engine`: same logical plan (id-index self-join of
    ``NN_Reln``, then ``ORDER BY (id1, id2)``), executed as contiguous
    anchor-range partitions probing one shared hash index with batched
    keys.  Output table content and order are bit-identical to the
    sequential builder for any worker count.

    With ``spill_runs=True`` (the out-of-core mode), each worker run is
    written to a scratch table as soon as it arrives — sliced into
    sub-runs of at most one buffer pool's worth of rows — and the final
    table is produced by a k-way merge of run *scans* through the
    buffer pool, so the full CSPairs relation is never resident in
    memory.  Inline (1-worker) execution pulls runs lazily, which makes
    the peak resident footprint one bounded run; with a real pool the
    workers may complete ahead of the writer, trading memory back for
    speed.
    """
    nn_table = engine.table(nn_table_name)
    id_index = engine.hash_index(nn_table, "id")
    anchor_ids = sorted(id_index.keys())

    pool_rows = max(1, engine.buffer.capacity * engine.disk.page_capacity)
    if chunk_size is None and spill_runs:
        # Bound each run's anchor count so a run's rows stay within a
        # small multiple (the NN-list limit) of the buffer pool, while
        # still splitting into enough chunks to feed every worker.
        balanced = -(-len(anchor_ids) // max(2, n_workers * CHUNKS_PER_WORKER))
        chunk_size = max(8, min(pool_rows, max(1, balanced)))
    join = ParallelCSJoinEngine(
        n_workers=n_workers, pool=pool, chunk_size=chunk_size
    )
    out = engine.create_table(cs_table_name, CSPAIRS_SCHEMA, replace=True)

    if not spill_runs:
        started = time.perf_counter()
        results = list(
            join.iter_chunk_results(anchor_ids, id_index, params, pair_filter)
        )
        join_seconds = time.perf_counter() - started
        merge_started = time.perf_counter()
        out.insert_many(merge_runs(result.pairs for result in results))
        merge_seconds = time.perf_counter() - merge_started
        if stats is not None:
            record_join(stats, join, results, join_seconds, merge_seconds)
        return out

    run_tables = []
    results: list[JoinChunkResult] = []
    started = time.perf_counter()
    for result in join.iter_chunk_results(
        anchor_ids, id_index, params, pair_filter
    ):
        # Slices of a sorted run are themselves sorted runs; bounding
        # them keeps every scratch table mergeable by streaming scans.
        pairs = result.pairs
        for low in range(0, len(pairs), pool_rows):
            run = engine.create_table(
                f"{cs_table_name}__run{len(run_tables)}",
                CSPAIRS_SCHEMA,
                replace=True,
            )
            run.insert_many(pairs[low : low + pool_rows])
            run_tables.append(run)
        result.release()
        results.append(result)
    join_seconds = time.perf_counter() - started

    merge_started = time.perf_counter()
    out.insert_many(merge_runs(run.scan() for run in run_tables))
    for run in run_tables:
        engine.catalog.drop_table(run.name)
    merge_seconds = time.perf_counter() - merge_started
    if stats is not None:
        record_join(stats, join, results, join_seconds, merge_seconds)
    return out


def build_cs_pairs_parallel(
    nn_relation: NNRelation,
    params: DEParams,
    n_workers: int = 1,
    pool: PoolKind = "thread",
    chunk_size: int | None = None,
    stats=None,
    pair_filter=None,
) -> list[CSPair]:
    """In-memory CSPairs via the partitioned join.

    Bit-identical to :func:`repro.core.cspairs.build_cs_pairs` for any
    worker count — the in-memory leg of the Phase-2 parity suite.
    (``pair_filter`` intentionally breaks that parity: inline-mode runs
    drop constraint-forbidden pairs at the source.)
    """
    rows = nn_relation.as_rows()
    index = HashIndex({row[0]: [row] for row in rows})
    engine = ParallelCSJoinEngine(
        n_workers=n_workers, pool=pool, chunk_size=chunk_size
    )
    merged = engine.join_rows([row[0] for row in rows], index, params,
                              stats=stats, pair_filter=pair_filter)
    return rows_to_cs_pairs(merged)
