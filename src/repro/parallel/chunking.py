"""Contiguous chunk planning for the parallel Phase-1 engine.

Chunks are contiguous slices of the *lookup order*, not of the record-id
space: consecutive lookups are close in the order (that is what the
breadth-first order buys, per Figure 5), so keeping them on the same
worker preserves buffer locality.  The planner therefore never assumes
``rid == position`` — record ids may be sparse, gapped, or non-zero-based
and are carried through verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Chunk", "plan_chunks"]


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of the lookup order.

    Parameters
    ----------
    index:
        Position of the chunk in the overall order (the deterministic
        merge key).
    rids:
        The record ids to look up, in order.
    """

    index: int
    rids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.rids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.rids)


def plan_chunks(
    rids: Sequence[int],
    n_chunks: int | None = None,
    chunk_size: int | None = None,
) -> list[Chunk]:
    """Split a lookup order into contiguous, balanced chunks.

    Exactly one of ``n_chunks`` / ``chunk_size`` must be given.  With
    ``n_chunks``, sizes differ by at most one (the leading chunks take
    the remainder); with ``chunk_size``, every chunk but the last has
    exactly that size.  Empty chunks are never produced, so the result
    may hold fewer than ``n_chunks`` entries for short orders.
    """
    if (n_chunks is None) == (chunk_size is None):
        raise ValueError("give exactly one of n_chunks or chunk_size")
    n = len(rids)
    if n == 0:
        return []
    if chunk_size is not None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        bounds = list(range(0, n, chunk_size)) + [n]
    else:
        assert n_chunks is not None
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")
        n_chunks = min(n_chunks, n)
        base, extra = divmod(n, n_chunks)
        bounds = [0]
        for i in range(n_chunks):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return [
        Chunk(index=i, rids=tuple(rids[lo:hi]))
        for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
    ]
