"""The chunked, multi-worker Phase-1 executor.

:class:`ParallelNNEngine` runs the NN-list computation of Phase 1 over
a pool of workers.  The lookup order is resolved up front and split
into contiguous chunks (:func:`repro.parallel.chunking.plan_chunks`);
each worker answers its chunk through the index's *batch* API — for
:class:`~repro.index.bruteforce.BruteForceIndex` a blocked all-pairs
evaluation that halves evaluations via distance symmetry and fills the
shared pair cache the NG range counts are then served from — and the
per-chunk :class:`~repro.core.neighborhood.NNEntry` lists merge in
chunk order.  Every entry is a pure function of (relation, distance,
params), so the merged result is identical to the sequential
``prepare_nn_lists`` output for any worker count, pool kind, or chunk
size.

Breadth-first order under chunking
----------------------------------
The paper's BF order is produced *online*: each lookup's results decide
which ids are probed next (Figure 5), so the exact global sequence
cannot be known before the lookups run.  The engine instead chunks the
order that seeds the BF traversal — the outer scan of ``R`` — which
keeps each worker on a contiguous region of the relation; within a
chunk, the blocked batch evaluation touches each region of the index
once, which is the same locality the BF order exists to create.

Pool choice
-----------
``pool="thread"`` shares one index (and thus one pair cache) across
workers — cross-chunk pair reuse is preserved, but CPU-bound pure-Python
distances serialize on the GIL.  ``pool="process"`` gives real
parallelism at the cost of pickling the index to each worker and losing
cross-chunk cache sharing.  See ``docs/performance.md`` for guidance.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.core.bforder import random_order
from repro.core.formulation import CombinedCut, DEParams, SizeCut
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.nn_phase import _substage_delta, _substage_snapshot
from repro.data.schema import Relation
from repro.index.base import NNIndex
from repro.parallel.chunking import Chunk, plan_chunks

__all__ = ["ChunkResult", "ParallelNNEngine"]

PoolKind = Literal["thread", "process"]

#: How many chunks the default plan creates per worker.  Several chunks
#: per worker smooth out load imbalance without shrinking chunks so far
#: that the blocked evaluation loses its symmetry savings.
CHUNKS_PER_WORKER = 4


@dataclass
class ChunkResult:
    """One worker's output for one chunk, plus its cost accounting."""

    chunk_index: int
    entries: list[NNEntry]
    lookups: int
    seconds: float
    evaluations: int
    cache_hits: int
    cache_misses: int
    candidates_generated: int = 0
    evaluations_pruned: int = 0
    kernel_evaluations: int = 0
    #: Sub-stage wall-time deltas accrued on the worker's index during
    #: this chunk (``candidates`` / ``verify``); exact for process
    #: pools, indicative only under thread interleaving (the engine
    #: then uses the global delta instead).
    substage_seconds: dict[str, float] = field(default_factory=dict)


def _cut_shape(params: DEParams) -> tuple[int | None, float | None]:
    """Translate a cut specification into the ``phase1_batch`` query shape."""
    if isinstance(params.cut, SizeCut):
        return params.cut.k, None
    if isinstance(params.cut, CombinedCut):
        # The K nearest neighbors within radius theta: both bounds hold.
        return params.cut.k, params.theta
    return None, params.theta


def _counters(index: NNIndex) -> tuple[int, int, int, int, int, int]:
    return (
        index.evaluations,
        getattr(index, "cache_hits", 0),
        getattr(index, "cache_misses", 0),
        getattr(index, "candidates_generated", 0),
        getattr(index, "evaluations_pruned", 0),
        getattr(index, "kernel_evaluations", 0),
    )


def _run_chunk(
    index: NNIndex, params: DEParams, chunk: Chunk, radius_fn
) -> ChunkResult:
    """Compute the NN entries for one chunk (runs inside a worker)."""
    relation = index.relation
    assert relation is not None
    started = time.perf_counter()
    ev0, hit0, miss0, cand0, pruned0, kern0 = _counters(index)
    substages0 = _substage_snapshot(index)
    records = [relation.get(rid) for rid in chunk.rids]
    k, theta = _cut_shape(params)
    answers = index.phase1_batch(
        records, k=k, theta=theta, p=params.p, radius_fn=radius_fn
    )
    entries = [
        NNEntry(rid=record.rid, neighbors=tuple(neighbors), ng=ng)
        for record, (neighbors, ng) in zip(records, answers)
    ]
    ev1, hit1, miss1, cand1, pruned1, kern1 = _counters(index)
    return ChunkResult(
        chunk_index=chunk.index,
        entries=entries,
        lookups=len(records),
        seconds=time.perf_counter() - started,
        evaluations=ev1 - ev0,
        cache_hits=hit1 - hit0,
        cache_misses=miss1 - miss0,
        candidates_generated=cand1 - cand0,
        evaluations_pruned=pruned1 - pruned0,
        kernel_evaluations=kern1 - kern0,
        substage_seconds=_substage_delta(index, substages0),
    )


# ----------------------------------------------------------------------
# Process-pool plumbing: ship the (index, params, radius_fn) payload to
# each worker once via the initializer instead of once per chunk.
# ----------------------------------------------------------------------

_WORKER_PAYLOAD: dict = {}


def _init_process_worker(index, params, radius_fn) -> None:
    _WORKER_PAYLOAD["args"] = (index, params, radius_fn)


def _run_chunk_in_process(chunk: Chunk) -> ChunkResult:
    index, params, radius_fn = _WORKER_PAYLOAD["args"]
    return _run_chunk(index, params, chunk, radius_fn)


class ParallelNNEngine:
    """Chunked Phase-1 executor over a ``concurrent.futures`` pool.

    Parameters
    ----------
    n_workers:
        Worker count.  ``1`` runs the chunks inline — still through the
        batched fast path, which is how the sequential-vs-batch
        benchmark isolates the blocked-evaluation speedup.
    pool:
        ``"thread"`` (default; shared index and pair cache) or
        ``"process"`` (true parallelism; the index must pickle).
    chunk_size:
        Fixed chunk length; default is a balanced split into
        ``n_workers * CHUNKS_PER_WORKER`` chunks.
    """

    def __init__(
        self,
        n_workers: int = 1,
        pool: PoolKind = "thread",
        chunk_size: int | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if pool not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {pool!r}")
        self.n_workers = n_workers
        self.pool: PoolKind = pool
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------

    def plan(self, rids: Sequence[int]) -> list[Chunk]:
        """The chunk plan the engine will execute for a lookup order."""
        if self.chunk_size is not None:
            return plan_chunks(rids, chunk_size=self.chunk_size)
        if self.n_workers == 1:
            # Inline execution has no load imbalance to smooth, and one
            # whole-order chunk maximizes the blocked pass's symmetry
            # savings: every pair is in-batch, none goes through the
            # cache twice.
            return plan_chunks(rids, n_chunks=1)
        return plan_chunks(rids, n_chunks=self.n_workers * CHUNKS_PER_WORKER)

    def _resolve_order(
        self, relation: Relation, order: str, order_seed: int
    ) -> list[int]:
        if order == "random":
            return random_order(relation, seed=order_seed)
        if order in ("bf", "sequential"):
            # "bf": the online BF traversal is seeded by the scan of R
            # (see module docstring); chunking that scan order keeps
            # each worker contiguous in the relation.
            return relation.ids()
        raise ValueError(f"unknown lookup order {order!r}")

    def iter_chunk_results(
        self,
        relation: Relation,
        index: NNIndex,
        params: DEParams,
        order: str = "bf",
        order_seed: int = 0,
        stats=None,
        radius_fn=None,
    ):
        """Yield :class:`ChunkResult` objects in chunk order.

        The streaming core of :meth:`run`: results are yielded as soon
        as each chunk (in plan order) completes, so a consumer can
        spill entries out of core without the whole NN relation ever
        being resident.  ``stats`` accounting (lookups, wall time,
        counter deltas) is finalized when the iterator is exhausted;
        an abandoned iterator records nothing.
        """
        if index.relation is not relation:
            raise ValueError("index was not built over the given relation")

        rids = self._resolve_order(relation, order, order_seed)
        chunks = self.plan(rids)
        started = time.perf_counter()
        ev0, hit0, miss0, cand0, pruned0, kern0 = _counters(index)
        substages0 = _substage_snapshot(index)
        results: list[ChunkResult] = []

        def finalize() -> None:
            if stats is None:
                return
            lookups = sum(r.lookups for r in results)
            stats.lookups += lookups
            stats.seconds += time.perf_counter() - started
            stats.n_chunks += len(results)
            stats.chunk_seconds.extend(r.seconds for r in results)
            if self.pool == "process" and self.n_workers > 1 and len(chunks) > 1:
                # Worker processes own private index copies; the parent's
                # counters never move, so sum the per-chunk deltas.
                evaluations = sum(r.evaluations for r in results)
                cache_hits = sum(r.cache_hits for r in results)
                cache_misses = sum(r.cache_misses for r in results)
                candidates = sum(r.candidates_generated for r in results)
                pruned = sum(r.evaluations_pruned for r in results)
                kernel = sum(r.kernel_evaluations for r in results)
                substages: dict[str, float] = {}
                for r in results:
                    for name, seconds in r.substage_seconds.items():
                        substages[name] = substages.get(name, 0.0) + seconds
            else:
                # Shared index: per-chunk deltas interleave across
                # threads, but the global delta is exact.
                ev1, hit1, miss1, cand1, pruned1, kern1 = _counters(index)
                evaluations = ev1 - ev0
                cache_hits = hit1 - hit0
                cache_misses = miss1 - miss0
                candidates = cand1 - cand0
                pruned = pruned1 - pruned0
                kernel = kern1 - kern0
                substages = _substage_delta(index, substages0)
            stats.evaluations += evaluations
            stats.cache_hits += cache_hits
            stats.cache_misses += cache_misses
            stats.candidates_generated += candidates
            stats.evaluations_pruned += pruned
            stats.kernel_evaluations += kernel
            stats.add_substages(substages)
            stats.credit_index(
                index.name,
                lookups=lookups,
                evaluations=evaluations,
                candidates_generated=candidates,
                evaluations_pruned=pruned,
                kernel_evaluations=kernel,
            )

        # ``Executor.map`` yields in submission order — chunk order —
        # regardless of completion order, so no sort is needed.
        if self.n_workers == 1 or len(chunks) <= 1:
            for chunk in chunks:
                result = _run_chunk(index, params, chunk, radius_fn)
                results.append(result)
                yield result
        elif self.pool == "thread":
            with ThreadPoolExecutor(max_workers=self.n_workers) as executor:
                for result in executor.map(
                    lambda chunk: _run_chunk(index, params, chunk, radius_fn),
                    chunks,
                ):
                    results.append(result)
                    yield result
        else:
            with ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_process_worker,
                initargs=(index, params, radius_fn),
            ) as executor:
                for result in executor.map(_run_chunk_in_process, chunks):
                    results.append(result)
                    yield result
        finalize()

    def run(
        self,
        relation: Relation,
        index: NNIndex,
        params: DEParams,
        order: str = "bf",
        order_seed: int = 0,
        stats=None,
        radius_fn=None,
    ) -> NNRelation:
        """Materialize the NN relation, identically to ``prepare_nn_lists``.

        ``stats`` (a :class:`~repro.core.nn_phase.Phase1Stats`) is
        extended with per-chunk timings and pair-cache hit counts on top
        of the sequential path's lookup/second accounting.
        """
        nn_relation = NNRelation()
        for result in self.iter_chunk_results(
            relation,
            index,
            params,
            order=order,
            order_seed=order_seed,
            stats=stats,
            radius_fn=radius_fn,
        ):
            for entry in result.entries:
                nn_relation.add(entry)
        return nn_relation
