"""Parallel Phase-1 execution: chunked, multi-worker NN-list computation.

The paper's Phase 1 (NN-list materialization) dominates the total DE
cost, and its section 4.1 is entirely about lookup throughput.  This
subsystem scales it out: the lookup order is split into contiguous
chunks (preserving per-worker buffer locality, the point of the BF
order of Figure 5), chunks fan out over a ``concurrent.futures`` pool,
and per-chunk results merge deterministically so output is identical to
the sequential path for any worker count.

Entry points:

- :func:`repro.parallel.chunking.plan_chunks` — contiguous, balanced
  chunking of a lookup order (no assumption that record ids are dense
  or zero-based);
- :class:`repro.parallel.engine.ParallelNNEngine` — the chunked
  executor; also the single-worker batched fast path used by the
  ``BENCH_phase1`` scalability benchmark.
"""

from repro.parallel.chunking import Chunk, plan_chunks
from repro.parallel.engine import ChunkResult, ParallelNNEngine

__all__ = ["Chunk", "ChunkResult", "ParallelNNEngine", "plan_chunks"]
