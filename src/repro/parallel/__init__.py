"""Parallel execution: chunked, multi-worker Phase 1 *and* Phase 2.

The paper's Phase 1 (NN-list materialization) dominates the total DE
cost, and its section 4.1 is entirely about lookup throughput.  This
subsystem scales it out: the lookup order is split into contiguous
chunks (preserving per-worker buffer locality, the point of the BF
order of Figure 5), chunks fan out over a ``concurrent.futures`` pool,
and per-chunk results merge deterministically so output is identical to
the sequential path for any worker count.

Once Phase 1 is batched and parallel, the bottleneck moves to Phase 2
— the paper's SQL self-join of ``NN_Reln`` into ``CSPairs``.  The same
chunking machinery partitions that join by anchor id
(:class:`repro.parallel.join.ParallelCSJoinEngine`): workers probe one
shared hash index with batched keys and emit locally sorted runs that
k-way merge into the final ``ORDER BY (id1, id2)``.

Entry points:

- :func:`repro.parallel.chunking.plan_chunks` — contiguous, balanced
  chunking of a lookup order (no assumption that record ids are dense
  or zero-based);
- :class:`repro.parallel.engine.ParallelNNEngine` — the chunked
  Phase-1 executor; also the single-worker batched fast path used by
  the ``BENCH_phase1`` scalability benchmark;
- :class:`repro.parallel.join.ParallelCSJoinEngine` — the partitioned
  Phase-2 self-join executor behind ``BENCH_phase2``, with in-memory
  and engine-backed builders (`build_cs_pairs_parallel`,
  `build_cs_pairs_engine_parallel`).
"""

from repro.parallel.chunking import Chunk, plan_chunks
from repro.parallel.engine import ChunkResult, ParallelNNEngine
from repro.parallel.join import (
    JoinChunkResult,
    ParallelCSJoinEngine,
    build_cs_pairs_engine_parallel,
    build_cs_pairs_parallel,
)

__all__ = [
    "Chunk",
    "ChunkResult",
    "JoinChunkResult",
    "ParallelCSJoinEngine",
    "ParallelNNEngine",
    "build_cs_pairs_engine_parallel",
    "build_cs_pairs_parallel",
    "plan_chunks",
]
