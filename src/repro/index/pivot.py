"""Pivot-based metric index (LAESA).

A distance-agnostic exact index for *metric* distance functions: pick
``n_pivots`` reference records, precompute every record's distance to
each pivot, and prune candidates with the triangle inequality —
``|d(q, p) - d(x, p)| <= d(q, x)`` for any pivot ``p``, so a candidate
whose pivot-distance vector differs too much from the query's cannot be
within the bound.

Complements the structure-specific indexes: the BK-tree needs raw
Levenshtein, the q-gram index needs strings; LAESA only needs the
triangle inequality, which holds for token-set Jaccard and for raw edit
distance, making it the generic member of the paper's "index over
distance functions" family.

For non-metric distances (normalized edit, fms) the pruning bound is
unsound; construct with ``assume_metric=False`` to disable pruning and
degrade gracefully to a filtered scan, or (default) keep pruning and
accept approximation.  Exactness under metric distances is covered by
property tests against brute force.
"""

from __future__ import annotations

from repro.data.schema import Record
from repro.index.base import Neighbor, NNIndex

__all__ = ["PivotIndex"]

#: Slack applied to pruning comparisons: the triangle-inequality bound
#: is computed by float subtraction and can exceed the true distance by
#: an ulp at exact ties, which would wrongly prune a tied candidate.
_EPSILON = 1e-9


class PivotIndex(NNIndex):
    """LAESA: pivot-table pruning over any (metric) distance.

    Parameters
    ----------
    n_pivots:
        Number of pivot records.  Pivots are chosen by max-min farthest
        point traversal, which spreads them across the space.
    assume_metric:
        Apply triangle-inequality pruning.  Leave True for metrics
        (raw Levenshtein, token Jaccard); set False to disable pruning
        for non-metric distances (the index then verifies every record,
        still exact but with no speedup).
    """

    name = "pivot"

    def __init__(self, n_pivots: int = 8, assume_metric: bool = True):
        super().__init__()
        if n_pivots < 1:
            raise ValueError("n_pivots must be at least 1")
        self.n_pivots = n_pivots
        self.assume_metric = assume_metric
        self._pivots: list[Record] = []
        #: rid -> tuple of distances to each pivot.
        self._table: dict[int, tuple[float, ...]] = {}

    # ------------------------------------------------------------------

    def _build(self) -> None:
        relation, distance = self._checked()
        records = list(relation)
        self._pivots = []
        self._table = {}
        if not records:
            return

        # Max-min farthest-point pivot selection.  Every distance spent
        # here is charged to build_evaluations: the pivot table is the
        # index's up-front cost, amortized over the queries it prunes.
        first = records[0]
        self._pivots.append(first)
        self.build_evaluations += len(records)
        min_dist = {
            record.rid: distance.distance(first, record) for record in records
        }
        while len(self._pivots) < min(self.n_pivots, len(records)):
            next_rid = max(min_dist, key=lambda rid: (min_dist[rid], rid))
            if min_dist[next_rid] == 0.0:
                break  # all remaining records coincide with a pivot
            pivot = relation.get(next_rid)
            self._pivots.append(pivot)
            self.build_evaluations += len(records)
            for record in records:
                d = distance.distance(pivot, record)
                if d < min_dist[record.rid]:
                    min_dist[record.rid] = d

        self.build_evaluations += len(self._pivots) * len(records)
        for record in records:
            self._table[record.rid] = tuple(
                distance.distance(pivot, record) for pivot in self._pivots
            )

    def _query_vector(self, record: Record) -> tuple[float, ...]:
        vector = self._table.get(record.rid)
        if vector is not None:
            return vector
        assert self.distance is not None
        return tuple(
            self.distance.distance(pivot, record) for pivot in self._pivots
        )

    def _lower_bound(
        self, query_vector: tuple[float, ...], rid: int
    ) -> float:
        """Triangle-inequality lower bound on d(query, rid)."""
        if not self.assume_metric:
            return 0.0
        candidate_vector = self._table[rid]
        bound = 0.0
        for dq, dx in zip(query_vector, candidate_vector):
            gap = dq - dx if dq >= dx else dx - dq
            if gap > bound:
                bound = gap
        return bound

    # ------------------------------------------------------------------

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        query_vector = self._query_vector(record)
        # Order candidates by lower bound so good ones verify early and
        # the cutoff prunes aggressively.
        ordered = sorted(
            (rid for rid in self._table if rid != record.rid),
            key=lambda rid: (self._lower_bound(query_vector, rid), rid),
        )
        from bisect import insort

        hits: list[Neighbor] = []
        cutoff = float("inf")
        for position, rid in enumerate(ordered):
            bound = self._lower_bound(query_vector, rid)
            if bound > cutoff + _EPSILON:
                # Ordered by bound: nothing later can qualify — the
                # whole tail is pruned by the triangle inequality.
                self.evaluations_pruned += len(ordered) - position
                break
            self.candidates_generated += 1
            # One-at-a-time verification (the cutoff depends on earlier
            # results); the edit kernel still accelerates single pairs.
            d = self._candidate_distances(record, [rid])[0]
            insort(hits, Neighbor(d, rid))
            if len(hits) >= k:
                cutoff = hits[k - 1].distance
        return hits[:k]

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        query_vector = self._query_vector(record)
        survivors: list[int] = []
        for rid in self._table:
            if rid == record.rid:
                continue
            if self._lower_bound(query_vector, rid) > radius + _EPSILON:
                self.evaluations_pruned += 1
                continue
            self.candidates_generated += 1
            survivors.append(rid)
        verified = [
            Neighbor(d, rid)
            for d, rid in zip(
                self._candidate_distances(record, survivors), survivors
            )
            if d < radius or (inclusive and d == radius)
        ]
        verified.sort()
        return verified
