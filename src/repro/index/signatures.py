"""Columnar, vocabulary-hashed MinHash signature factory.

The scalar :func:`~repro.index.minhash.minhash_signature` hashes every
*occurrence* of a token once per salt: ``sum_r |tokens(r)| * n_hashes``
keyed blake2b calls for a relation.  Token sets are Zipfian, so the
number of *distinct* tokens ``V`` is far smaller than the number of
occurrences — on the Org generator roughly 12–17x smaller at n >= 5k,
and the gap widens with n.  :class:`SignatureFactory` exploits that:

1. **Intern** the corpus into a token vocabulary and a CSR layout
   (``indptr`` / ``indices``, the same shape
   :class:`~repro.distances.kernels.columnar.ColumnarVectors` uses):
   each record's element set becomes a row of vocabulary ids.
2. **Hash each distinct token once per salt** with the *same* keyed
   blake2b the scalar path uses, into a ``(V, n_hashes)`` uint64
   matrix ``H``.
3. **Gather + column-min**: record ``r``'s signature is the
   element-wise minimum of the rows ``H[ids(r)]`` — a vectorized
   ``np.minimum.reduceat`` over CSR segments on the numpy backend, a
   C-speed ``map(min, zip(*rows))`` on the pure-python fallback.

Both backends are **bit-identical** to the scalar function by
construction: the per-(token, salt) hashes are the very same blake2b
values, min over uint64 equals min over the non-negative python ints,
and empty element sets sign as all-``_PRIME`` exactly like the scalar
path.  Persistent-postings warm restarts, shard plans, and every parity
checksum therefore stay valid no matter which backend signed.

:func:`group_band_buckets` is the companion bucketing step: instead of
``n * n_bands`` per-record tuple-keyed dict inserts it packs each band's
sub-signature rows and groups equal rows via a stable lexsort, emitting
one shared key tuple (and one shared member list) per *bucket*.  Bucket
membership order equals relation order — identical to the scalar
append order.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.distances.kernels.compat import (
    KernelUnavailable,
    numpy_or_none,
    require_numpy,
)

__all__ = [
    "BandGrouping",
    "RelationSignatures",
    "SignatureFactory",
    "group_band_buckets",
    "resolve_signer_backend",
]

_PRIME = (1 << 61) - 1


def resolve_signer_backend(mode: str) -> str:
    """Map an ``enable_kernel`` mode onto a signer backend.

    ``"python"`` keeps the scalar loop; ``"numpy"`` requires numpy
    (raising :class:`~repro.distances.kernels.KernelUnavailable` when it
    is missing, mirroring ``NNIndex._resolve_kernel``); ``"auto"`` picks
    numpy when importable and falls back to python otherwise.
    """
    if mode == "python":
        return "python"
    if mode == "numpy":
        require_numpy()
        return "numpy"
    if mode == "auto":
        return "numpy" if numpy_or_none() is not None else "python"
    raise ValueError(f"unknown signer mode: {mode!r}")


@dataclass
class RelationSignatures:
    """Signatures of one relation, columnar plus scalar views.

    ``matrix`` is the ``(n, n_hashes)`` uint64 signature matrix (``None``
    on the python backend); ``tuples`` is the per-record python-int
    tuple view — byte-for-byte what :func:`minhash_signature` returns —
    aligned with ``rids`` (relation iteration order).
    """

    rids: list[int]
    tuples: list[tuple[int, ...]]
    n_hashes: int
    backend: str
    matrix: object | None = None
    #: Sub-stage wall times: ``tokenize`` (element extraction + vocab
    #: interning) and ``sign`` (hashing + min-gather).
    timings: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rids)

    def matches(self, rids: Sequence[int], n_hashes: int) -> bool:
        """Whether these signatures cover exactly ``rids`` at ``n_hashes``."""
        return self.n_hashes == n_hashes and list(rids) == self.rids


@dataclass
class BandGrouping:
    """The vectorized LSH bucketing of a signature batch.

    All three views alias the *same* key tuples and member lists, so a
    relation-sized index pays one tuple per bucket, not one per
    (record, band) insert:

    - ``buckets``: ``(band, sub-signature) -> member rids`` in relation
      order — exactly the scalar ``setdefault``/``append`` result;
    - ``row_keys``: per record its ``n_bands`` keys (the scalar
      ``band_keys`` output), sharing key tuples across records;
    - ``row_buckets``: per band, row -> member list, the hash-free probe
      path for in-relation candidate lookups.

    ``row_bucket_arrays`` (numpy backend only, else ``None``) mirrors
    ``row_buckets`` with int64 member *views* into one per-band sorted
    rid array — zero extra copies, and in-relation probes can union
    bands with ``np.unique`` instead of python set inserts.
    """

    buckets: dict[tuple[int, tuple[int, ...]], list[int]]
    row_keys: list[tuple[tuple[int, tuple[int, ...]], ...]]
    row_buckets: list[list[list[int]]]
    seconds: float = 0.0
    row_bucket_arrays: list[list] | None = None


class SignatureFactory:
    """Vocabulary-hashed MinHash signer with numpy and python backends.

    Parameters
    ----------
    n_hashes:
        Signature width (salt count).
    backend:
        ``"auto"`` / ``"numpy"`` / ``"python"`` — resolved through
        :func:`resolve_signer_backend`, i.e. with the same semantics as
        ``NNIndex.enable_kernel``.
    """

    def __init__(self, n_hashes: int, backend: str = "auto") -> None:
        if n_hashes < 1:
            raise ValueError("n_hashes must be at least 1")
        self.n_hashes = n_hashes
        self.backend = resolve_signer_backend(backend)
        self._salts = [salt.to_bytes(8, "little") for salt in range(n_hashes)]

    # ------------------------------------------------------------------

    def _hash_token(self, token: str) -> list[int]:
        """All ``n_hashes`` keyed blake2b values of one distinct token.

        The per-(token, salt) value is exactly ``_stable_hash(token,
        salt)`` — same digest size, same little-endian decode — which is
        the whole bit-identity argument.
        """
        encoded = token.encode("utf-8")
        blake2b = hashlib.blake2b
        return [
            int.from_bytes(
                blake2b(encoded, digest_size=8, salt=salt).digest(), "little"
            )
            for salt in self._salts
        ]

    def sign_records(
        self,
        rids: Sequence[int],
        elements_of: Callable[[int], Iterable[str]],
    ) -> RelationSignatures:
        """Sign ``rids``, reading each record's element set lazily.

        ``elements_of(rid)`` returns the record's token/q-gram iterable
        (duplicates are fine; interning dedups).  Element extraction is
        timed as ``tokenize``, hashing + min-gather as ``sign``.
        """
        started = time.perf_counter()
        vocab: dict[str, int] = {}
        vocab_id = vocab.setdefault
        indptr = [0]
        indices: list[int] = []
        for rid in rids:
            row = {vocab_id(token, len(vocab)) for token in elements_of(rid)}
            indices.extend(row)
            indptr.append(len(indices))
        tokenize_seconds = time.perf_counter() - started

        started = time.perf_counter()
        if self.backend == "numpy":
            matrix, tuples = self._sign_numpy(vocab, indptr, indices)
        else:
            matrix, tuples = None, self._sign_python(vocab, indptr, indices)
        sign_seconds = time.perf_counter() - started
        return RelationSignatures(
            rids=[int(rid) for rid in rids],
            tuples=tuples,
            n_hashes=self.n_hashes,
            backend=self.backend,
            matrix=matrix,
            timings={
                "tokenize": tokenize_seconds,
                "sign": sign_seconds,
            },
        )

    def sign_sets(
        self, element_sets: Sequence[Iterable[str]]
    ) -> RelationSignatures:
        """Sign explicit element sets (positional rids ``0..n-1``)."""
        return self.sign_records(
            range(len(element_sets)), lambda i: element_sets[i]
        )

    # ------------------------------------------------------------------

    def _hash_matrix_rows(self, vocab: dict[str, int]) -> list[list[int]]:
        """One hash row per distinct token, in vocabulary-id order."""
        rows: list[list[int]] = [None] * len(vocab)  # type: ignore[list-item]
        for token, vid in vocab.items():
            rows[vid] = self._hash_token(token)
        return rows

    def _sign_numpy(
        self, vocab: dict[str, int], indptr: list[int], indices: list[int]
    ):
        np = require_numpy()
        n = len(indptr) - 1
        signatures = np.full((n, self.n_hashes), _PRIME, dtype=np.uint64)
        if vocab:
            flat = [value for row in self._hash_matrix_rows(vocab) for value in row]
            hashes = np.array(flat, dtype=np.uint64).reshape(
                len(vocab), self.n_hashes
            )
            ids = np.asarray(indices, dtype=np.int64)
            starts = np.asarray(indptr[:-1], dtype=np.int64)
            sizes = np.diff(np.asarray(indptr, dtype=np.int64))
            nonempty = sizes > 0
            # Bound the (occurrences, n_hashes) gather scratch: chunk the
            # record range so each gather stays around ~256k rows.
            chunk_rows = 1 << 18
            row = 0
            while row < n:
                end = row
                budget = 0
                while end < n and (budget == 0 or budget < chunk_rows):
                    budget += int(sizes[end])
                    end += 1
                lo, hi = int(starts[row]), int(indptr[end])
                if hi > lo:
                    gathered = hashes[ids[lo:hi]]
                    mask = nonempty[row:end]
                    # Empty rows are dropped from the reduceat boundary
                    # list (duplicate offsets would mis-reduce); their
                    # signatures stay the all-_PRIME fill.
                    bounds = (starts[row:end] - lo)[mask]
                    reduced = np.minimum.reduceat(gathered, bounds, axis=0)
                    signatures[row:end][mask] = reduced
                row = end
        tuples = [tuple(row) for row in signatures.tolist()]
        return signatures, tuples

    def _sign_python(
        self, vocab: dict[str, int], indptr: list[int], indices: list[int]
    ) -> list[tuple[int, ...]]:
        empty = tuple([_PRIME] * self.n_hashes)
        rows = self._hash_matrix_rows(vocab)
        tuples: list[tuple[int, ...]] = []
        for i in range(len(indptr) - 1):
            lo, hi = indptr[i], indptr[i + 1]
            if lo == hi:
                tuples.append(empty)
                continue
            token_rows = [rows[vid] for vid in indices[lo:hi]]
            if len(token_rows) == 1:
                tuples.append(tuple(token_rows[0]))
            else:
                tuples.append(tuple(map(min, zip(*token_rows))))
        return tuples


def group_band_buckets(
    signatures: RelationSignatures, n_bands: int
) -> BandGrouping:
    """Bucket signed records by LSH band, vectorized when possible.

    Equal-key grouping runs as one stable lexsort per band on the numpy
    backend (stable, so members keep relation order — the scalar append
    order) and as the classic dict-``setdefault`` loop otherwise.  Both
    produce identical ``buckets`` / ``row_keys`` structures.
    """
    if signatures.n_hashes % n_bands != 0:
        raise ValueError("n_hashes must be divisible by n_bands")
    started = time.perf_counter()
    rows_per_band = signatures.n_hashes // n_bands
    rids = signatures.rids
    n = len(rids)
    np = numpy_or_none()

    buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}
    per_band_keys: list[list] = []
    row_buckets: list[list[list[int]]] = []
    row_bucket_arrays: list[list] | None = None

    if signatures.matrix is not None and np is not None and n:
        matrix = signatures.matrix
        rid_array = np.asarray(rids, dtype=np.int64)
        row_bucket_arrays = []
        for band in range(n_bands):
            sub = matrix[:, band * rows_per_band : (band + 1) * rows_per_band]
            # Stable sort: within an equal-key run, relation order is
            # preserved — the scalar append order.
            order = np.lexsort(tuple(sub[:, c] for c in reversed(range(rows_per_band))))
            sorted_sub = sub[order]
            if n > 1:
                changed = np.any(sorted_sub[1:] != sorted_sub[:-1], axis=1)
                heads = np.concatenate(([0], np.flatnonzero(changed) + 1))
            else:
                heads = np.zeros(1, dtype=np.int64)
            starts = np.concatenate((heads, [n]))
            counts = np.diff(starts)
            # row -> bucket ordinal, inverted from the sort positions.
            inverse = np.empty(n, dtype=np.int64)
            inverse[order] = np.repeat(np.arange(len(heads)), counts)
            ordered_rid_array = rid_array[order]
            ordered_rids = ordered_rid_array.tolist()
            bounds = starts.tolist()
            # One python tuple per *bucket*, not per (record, band), and
            # one C-speed slice per bucket for its member list.
            keys = [
                (band, tuple(key_row))
                for key_row in sorted_sub[heads].tolist()
            ]
            bucket_lists = [
                ordered_rids[bounds[g] : bounds[g + 1]]
                for g in range(len(keys))
            ]
            # Zero-copy int64 twins of the member lists: views into the
            # band's sorted rid array, for np.unique-based probe unions.
            bucket_views = [
                ordered_rid_array[bounds[g] : bounds[g + 1]]
                for g in range(len(keys))
            ]
            buckets.update(zip(keys, bucket_lists))
            inverse_list = inverse.tolist()
            per_band_keys.append([keys[g] for g in inverse_list])
            row_buckets.append([bucket_lists[g] for g in inverse_list])
            row_bucket_arrays.append(
                [bucket_views[g] for g in inverse_list]
            )
    else:
        per_band_keys = [[None] * n for _ in range(n_bands)]
        row_buckets = [[None] * n for _ in range(n_bands)]  # type: ignore[list-item]
        for i, signature in enumerate(signatures.tuples):
            for band in range(n_bands):
                key = (
                    band,
                    signature[band * rows_per_band : band * rows_per_band + rows_per_band],
                )
                bucket = buckets.setdefault(key, [])
                bucket.append(rids[i])
                per_band_keys[band][i] = key
                row_buckets[band][i] = bucket

    row_keys = [tuple(keys) for keys in zip(*per_band_keys)] if n else []
    return BandGrouping(
        buckets=buckets,
        row_keys=row_keys,
        row_buckets=row_buckets,
        seconds=time.perf_counter() - started,
        row_bucket_arrays=row_bucket_arrays,
    )
