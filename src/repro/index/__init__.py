"""Nearest-neighbor indexes for Phase 1 of the DE algorithm.

:class:`BruteForceIndex` is the exact reference; :class:`BKTreeIndex`
is exact for (normalized) Levenshtein; :class:`QgramInvertedIndex` and
:class:`MinHashIndex` are the approximate, inverted-index-style
structures the paper cites and "treats as exact".
"""

from repro.index.base import Neighbor, NNIndex
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.cache import PagedPostingStore
from repro.index.inverted import QgramInvertedIndex
from repro.index.minhash import MinHashIndex, band_keys, minhash_signature
from repro.index.pivot import PivotIndex
from repro.index.postings import PersistentMinHashPostings

__all__ = [
    "Neighbor",
    "NNIndex",
    "BruteForceIndex",
    "BKTreeIndex",
    "QgramInvertedIndex",
    "MinHashIndex",
    "PivotIndex",
    "PagedPostingStore",
    "PersistentMinHashPostings",
    "minhash_signature",
    "band_keys",
]
