"""BK-tree index for edit distance.

A Burkhard-Keller tree over *raw* Levenshtein distance (which is a true
metric, unlike its length-normalized variant).  The tree answers raw
range queries exactly; normalized-distance queries are answered by
translating radii:

- ``d_norm(a, b) = ed(a, b) / max(|a|, |b|)`` and ``|b| <= |a| + ed``
  give ``d_norm >= ed / (|a| + ed)``, increasing in ``ed``.  Hence a raw
  search radius ``r`` guarantees that every pruned string has
  ``d_norm >= (r + 1) / (|a| + r + 1)``, which yields exact k-NN by
  radius doubling with a provable stopping rule, and exact range queries
  via ``ed <= radius * |a| / (1 - radius)``.

This is the "exact nearest neighbor index" role of the paper's Phase 1
for the edit distance runs.

Batch traversals
----------------
The tree's edge-window descent (keep children with edge weight in
``[raw - r, raw + r]``) *is* triangle-inequality pruning; per
traversal, ``evaluations_pruned`` counts the nodes it never visited.
Inside a batch scope two caches remove the remaining repeat work, both
exact because raw Levenshtein is an integer and symmetric:

- a per-query *traversal memo* (node -> raw distance) that carries over
  the k-NN radius doubling and into the NG range query that follows in
  ``phase1_batch`` — re-visited nodes cost a dict probe, not a DP;
- a cross-query *canonical pair cache* keyed by ``(min rep, max rep)``
  node-representative rids, so when query ``b`` visits the node holding
  ``a``'s text after query ``a`` already visited ``b``'s, the second
  evaluation is a cache hit.

Per-query (non-batch) traversals consult the pair cache but never fill
it, keeping the sequential path the honest baseline (same convention as
:class:`~repro.index.bruteforce.BruteForceIndex`).
"""

from __future__ import annotations

from repro.data.schema import Record
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance, levenshtein
from repro.distances.tokens import normalize
from repro.index.base import Neighbor, NNIndex

__all__ = ["BKTreeIndex"]


class _Node:
    __slots__ = ("text", "rids", "children")

    def __init__(self, text: str, rid: int):
        self.text = text
        self.rids = [rid]
        self.children: dict[int, _Node] = {}


class BKTreeIndex(NNIndex):
    """Exact k-NN / range index for (normalized) Levenshtein distance.

    Only meaningful together with :class:`EditDistance` (plain
    Levenshtein, not Damerau: the restricted Damerau variant violates
    the triangle inequality the tree relies on).
    """

    name = "bktree"

    def __init__(self) -> None:
        super().__init__()
        self._root: _Node | None = None
        self._max_length = 0
        self._n_nodes = 0
        self._normalize_text = True
        #: rid -> representative rid (first record inserted with the
        #: same rendered text); the canonical key space of the
        #: cross-query pair cache.
        self._rep_of: dict[int, int] = {}
        #: (min rep, max rep) -> raw distance, filled by batch
        #: traversals, consulted by all.
        self._node_pair_cache: dict[tuple[int, int], int] = {}
        #: Per-query traversal memos, alive for one batch scope only.
        self._query_memos: dict[int, dict[int, int]] = {}

    def _build(self) -> None:
        relation, distance = self._checked()
        while isinstance(distance, CachedDistance):
            distance = distance.inner
        if not isinstance(distance, EditDistance):
            raise TypeError("BKTreeIndex requires an EditDistance function")
        if distance.damerau:
            raise ValueError(
                "BKTreeIndex requires plain Levenshtein; the restricted "
                "Damerau variant is not a metric"
            )
        self._normalize_text = distance.normalize_text
        self._root = None
        self._max_length = 0
        self._n_nodes = 0
        self._rep_of = {}
        self._node_pair_cache = {}
        self._query_memos = {}
        for record in relation:
            text = self._render(record)
            self._max_length = max(self._max_length, len(text))
            self._insert(text, record.rid)

    def _on_batch_exit(self) -> None:
        # Memos key nodes by id(); dropping them with the batch keeps
        # them safe against id reuse after a rebuild.
        self._query_memos = {}

    def _render(self, record: Record) -> str:
        text = record.text()
        return normalize(text) if self._normalize_text else text

    def _raw_distance(self, a: str, b: str) -> int:
        """Exact raw Levenshtein for tree traversal.

        With kernels enabled the bit-parallel Myers scan replaces the
        two-row DP whenever either string fits one machine word; both
        algorithms are exact, so traversal decisions are unchanged.
        """
        if self._kernel is not None:
            from repro.distances.kernels.edit import myers_levenshtein

            if 0 < len(a) <= 64:
                return myers_levenshtein(a, b)
            if 0 < len(b) <= 64:
                return myers_levenshtein(b, a)
        return levenshtein(a, b)

    def _insert(self, text: str, rid: int) -> None:
        if self._root is None:
            self._root = _Node(text, rid)
            self._n_nodes = 1
            self._rep_of[rid] = rid
            return
        node = self._root
        while True:
            raw = levenshtein(text, node.text)
            self.build_evaluations += 1
            if raw == 0:
                node.rids.append(rid)
                self._rep_of[rid] = node.rids[0]
                return
            child = node.children.get(raw)
            if child is None:
                node.children[raw] = _Node(text, rid)
                self._n_nodes += 1
                self._rep_of[rid] = rid
                return
            node = child

    def _raw_range(
        self, query: str, radius: int, qrid: int | None = None
    ) -> list[tuple[int, _Node]]:
        """Return ``(raw_distance, node)`` for nodes with ``ed <= radius``."""
        if self._root is None:
            return []
        memo: dict[int, int] | None = None
        if qrid is not None and self._batch_depth:
            memo = self._query_memos.setdefault(qrid, {})
        pair_cache = self._node_pair_cache
        qrep = self._rep_of.get(qrid, -1) if qrid is not None else -1
        hits: list[tuple[int, _Node]] = []
        stack = [self._root]
        visited = 0
        while stack:
            node = stack.pop()
            visited += 1
            nid = id(node)
            raw = memo.get(nid) if memo is not None else None
            if raw is None:
                key: tuple[int, int] | None = None
                if qrep >= 0:
                    nrep = node.rids[0]
                    key = (qrep, nrep) if qrep <= nrep else (nrep, qrep)
                    raw = pair_cache.get(key)
                if raw is None:
                    self.cache_misses += 1
                    # The exact raw distance is needed to decide which
                    # child edges stay inside [raw - radius, raw + radius].
                    raw = self._raw_distance(query, node.text)
                    self.evaluations += 1
                    if key is not None and self._batch_depth:
                        pair_cache[key] = raw
                else:
                    self.cache_hits += 1
                if memo is not None:
                    memo[nid] = raw
            else:
                self.cache_hits += 1
            if raw <= radius:
                hits.append((raw, node))
            lo, hi = raw - radius, raw + radius
            for edge, child in node.children.items():
                if lo <= edge <= hi:
                    stack.append(child)
        self.candidates_generated += visited
        self.evaluations_pruned += self._n_nodes - visited
        return hits

    # ------------------------------------------------------------------

    def _norm(self, query: str, raw: int, other: str) -> float:
        longest = max(len(query), len(other))
        if longest == 0:
            return 0.0
        return raw / longest

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        query = self._render(record)
        radius = 1
        limit = max(self._max_length, len(query), 1)
        while True:
            hits = self._collect(record, query, radius)
            if len(hits) >= k:
                kth = hits[k - 1].distance
                pruned_lower_bound = (radius + 1) / (len(query) + radius + 1)
                if kth < pruned_lower_bound or radius >= limit:
                    return hits[:k]
            elif radius >= limit:
                return hits[:k]
            radius = min(radius * 2, limit)

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        self._checked()
        query = self._render(record)
        if radius >= 1.0:
            raw_radius = max(self._max_length, len(query))
        else:
            raw_radius = int(radius * len(query) / (1.0 - radius)) + 1
            raw_radius = min(raw_radius, max(self._max_length, len(query)))
        hits = self._collect(record, query, raw_radius)
        if inclusive:
            return [h for h in hits if h.distance <= radius]
        return [h for h in hits if h.distance < radius]

    def _collect(self, record: Record, query: str, raw_radius: int) -> list[Neighbor]:
        """Range-search and convert to normalized-distance neighbors."""
        neighbors: list[Neighbor] = []
        for raw, node in self._raw_range(query, raw_radius, qrid=record.rid):
            norm = self._norm(query, raw, node.text)
            for rid in node.rids:
                if rid != record.rid:
                    neighbors.append(Neighbor(norm, rid))
        neighbors.sort()
        return neighbors
