"""BK-tree index for edit distance.

A Burkhard-Keller tree over *raw* Levenshtein distance (which is a true
metric, unlike its length-normalized variant).  The tree answers raw
range queries exactly; normalized-distance queries are answered by
translating radii:

- ``d_norm(a, b) = ed(a, b) / max(|a|, |b|)`` and ``|b| <= |a| + ed``
  give ``d_norm >= ed / (|a| + ed)``, increasing in ``ed``.  Hence a raw
  search radius ``r`` guarantees that every pruned string has
  ``d_norm >= (r + 1) / (|a| + r + 1)``, which yields exact k-NN by
  radius doubling with a provable stopping rule, and exact range queries
  via ``ed <= radius * |a| / (1 - radius)``.

This is the "exact nearest neighbor index" role of the paper's Phase 1
for the edit distance runs.
"""

from __future__ import annotations

from repro.data.schema import Record
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance, levenshtein
from repro.distances.tokens import normalize
from repro.index.base import Neighbor, NNIndex

__all__ = ["BKTreeIndex"]


class _Node:
    __slots__ = ("text", "rids", "children")

    def __init__(self, text: str, rid: int):
        self.text = text
        self.rids = [rid]
        self.children: dict[int, _Node] = {}


class BKTreeIndex(NNIndex):
    """Exact k-NN / range index for (normalized) Levenshtein distance.

    Only meaningful together with :class:`EditDistance` (plain
    Levenshtein, not Damerau: the restricted Damerau variant violates
    the triangle inequality the tree relies on).
    """

    name = "bktree"

    def __init__(self) -> None:
        super().__init__()
        self._root: _Node | None = None
        self._max_length = 0
        self._normalize_text = True

    def _build(self) -> None:
        relation, distance = self._checked()
        while isinstance(distance, CachedDistance):
            distance = distance.inner
        if not isinstance(distance, EditDistance):
            raise TypeError("BKTreeIndex requires an EditDistance function")
        if distance.damerau:
            raise ValueError(
                "BKTreeIndex requires plain Levenshtein; the restricted "
                "Damerau variant is not a metric"
            )
        self._normalize_text = distance.normalize_text
        self._root = None
        self._max_length = 0
        for record in relation:
            text = self._render(record)
            self._max_length = max(self._max_length, len(text))
            self._insert(text, record.rid)

    def _render(self, record: Record) -> str:
        text = record.text()
        return normalize(text) if self._normalize_text else text

    def _insert(self, text: str, rid: int) -> None:
        if self._root is None:
            self._root = _Node(text, rid)
            return
        node = self._root
        while True:
            raw = levenshtein(text, node.text)
            if raw == 0:
                node.rids.append(rid)
                return
            child = node.children.get(raw)
            if child is None:
                node.children[raw] = _Node(text, rid)
                return
            node = child

    def _raw_range(self, query: str, radius: int) -> list[tuple[int, _Node]]:
        """Return ``(raw_distance, node)`` for nodes with ``ed <= radius``."""
        if self._root is None:
            return []
        hits: list[tuple[int, _Node]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            # The exact raw distance is needed to decide which child
            # edges stay inside [raw - radius, raw + radius].
            raw = levenshtein(query, node.text)
            self.evaluations += 1
            if raw <= radius:
                hits.append((raw, node))
            lo, hi = raw - radius, raw + radius
            for edge, child in node.children.items():
                if lo <= edge <= hi:
                    stack.append(child)
        return hits

    # ------------------------------------------------------------------

    def _norm(self, query: str, raw: int, other: str) -> float:
        longest = max(len(query), len(other))
        if longest == 0:
            return 0.0
        return raw / longest

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        query = self._render(record)
        radius = 1
        limit = max(self._max_length, len(query), 1)
        while True:
            hits = self._collect(record, query, radius)
            if len(hits) >= k:
                kth = hits[k - 1].distance
                pruned_lower_bound = (radius + 1) / (len(query) + radius + 1)
                if kth < pruned_lower_bound or radius >= limit:
                    return hits[:k]
            elif radius >= limit:
                return hits[:k]
            radius = min(radius * 2, limit)

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        self._checked()
        query = self._render(record)
        if radius >= 1.0:
            raw_radius = max(self._max_length, len(query))
        else:
            raw_radius = int(radius * len(query) / (1.0 - radius)) + 1
            raw_radius = min(raw_radius, max(self._max_length, len(query)))
        hits = self._collect(record, query, raw_radius)
        if inclusive:
            return [h for h in hits if h.distance <= radius]
        return [h for h in hits if h.distance < radius]

    def _collect(self, record: Record, query: str, raw_radius: int) -> list[Neighbor]:
        """Range-search and convert to normalized-distance neighbors."""
        neighbors: list[Neighbor] = []
        for raw, node in self._raw_range(query, raw_radius):
            norm = self._norm(query, raw, node.text)
            for rid in node.rids:
                if rid != record.rid:
                    neighbors.append(Neighbor(norm, rid))
        neighbors.sort()
        return neighbors
