"""Persistent, incrementally-updatable MinHash/LSH postings.

The batch :class:`~repro.index.minhash.MinHashIndex` signs the whole
relation in ``_build`` — fine for one run, wasteful for an online
session that restarts.  This module keeps the same signature scheme
(:func:`~repro.index.minhash.minhash_signature` is stable across
processes) but makes the postings *live in the storage engine*: every
``add`` / ``remove`` appends rows to two heap-table logs,

- ``<prefix>Signatures(rid, signature, op)``
- ``<prefix>Postings(band, key, rid, op)``

with ``op = +1`` for inserts and ``-1`` tombstones for removals.  A
warm restart replays the logs through the buffer pool and recovers the
exact in-memory buckets **without re-hashing a single token** —
:attr:`signatures_computed` stays 0 and :attr:`restored` reports the
path taken.  :meth:`compact` rewrites both tables net of tombstones;
:meth:`save` / :meth:`load` snapshot the compacted state to JSON so a
session can warm-start across processes (the engine's disk manager is
process-local).

The index is a *candidate generator*: :meth:`candidates` returns the
rids sharing at least one LSH band with the probe.  The incremental
deduplicator accepts it via ``candidates=`` and verifies surfaced
candidates with the true distance — the standard approximate trade
described in ``docs/performance.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from collections.abc import Sequence

from repro.data.schema import Record
from repro.distances.tokens import qgrams, tokenize
from repro.index.minhash import band_keys, minhash_signature
from repro.index.signatures import SignatureFactory
from repro.storage.engine import Engine

__all__ = ["PersistentMinHashPostings"]

#: Schema of the signature log table.
SIGNATURES_SCHEMA = ("rid", "signature", "op")
#: Schema of the postings log table.
POSTINGS_SCHEMA = ("band", "key", "rid", "op")


class PersistentMinHashPostings:
    """Engine-backed MinHash postings with tombstoned removals.

    Parameters
    ----------
    engine:
        The storage engine owning the log tables.  If the tables
        already exist in its catalog, the index restores from them
        (warm restart) instead of starting empty.
    n_hashes, n_bands, use_qgrams, q:
        The signature scheme, matching
        :class:`~repro.index.minhash.MinHashIndex`.
    prefix:
        Table-name prefix, so several indexes can share one engine.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        n_hashes: int = 64,
        n_bands: int = 16,
        use_qgrams: bool = False,
        q: int = 3,
        prefix: str = "MinHash",
    ):
        if n_hashes % n_bands != 0:
            raise ValueError("n_hashes must be divisible by n_bands")
        self.engine = engine
        self.n_hashes = n_hashes
        self.n_bands = n_bands
        self.use_qgrams = use_qgrams
        self.q = q
        self.signatures_table = f"{prefix}Signatures"
        self.postings_table = f"{prefix}Postings"
        self._signatures: dict[int, tuple[int, ...]] = {}
        self._buckets: dict[tuple[int, tuple[int, ...]], set[int]] = {}
        #: Signatures hashed from tokens this session (0 after a warm
        #: restart — the whole point of the persistent log).
        self.signatures_computed = 0
        #: Log rows appended this session.
        self.log_rows_appended = 0
        #: Pending ``op = -1`` rows not yet compacted away.
        self.tombstones = 0
        #: Whether this instance recovered its state from existing logs.
        self.restored = False
        if (
            self.signatures_table in engine.catalog
            and self.postings_table in engine.catalog
        ):
            self._restore()
        else:
            engine.create_table(self.signatures_table, SIGNATURES_SCHEMA, replace=True)
            engine.create_table(self.postings_table, POSTINGS_SCHEMA, replace=True)

    # ------------------------------------------------------------------
    # Log replay / maintenance
    # ------------------------------------------------------------------

    def _restore(self) -> None:
        """Recover buckets and signatures by replaying the logs."""
        for rid, signature, op in self.engine.table(self.signatures_table).scan():
            if op > 0:
                self._signatures[rid] = tuple(signature)
            else:
                self._signatures.pop(rid, None)
                self.tombstones += 1
        for band, key, rid, op in self.engine.table(self.postings_table).scan():
            bucket = self._buckets.setdefault((band, tuple(key)), set())
            if op > 0:
                bucket.add(rid)
            else:
                bucket.discard(rid)
        self.restored = True

    def _elements(self, record: Record) -> set[str]:
        text = record.text()
        return set(qgrams(text, q=self.q) if self.use_qgrams else tokenize(text))

    def _keys_of(self, signature: tuple[int, ...]):
        return band_keys(signature, self.n_bands)

    def add(self, record: Record) -> None:
        """Sign ``record``, bucket it, and append to the logs."""
        rid = record.rid
        if rid in self._signatures:
            raise ValueError(f"record {rid} already indexed")
        signature = minhash_signature(self._elements(record), self.n_hashes)
        self.signatures_computed += 1
        self._signatures[rid] = signature
        self.engine.table(self.signatures_table).insert((rid, signature, 1))
        postings = self.engine.table(self.postings_table)
        for band, key in self._keys_of(signature):
            self._buckets.setdefault((band, key), set()).add(rid)
            postings.insert((band, key, rid, 1))
        self.log_rows_appended += 1 + self.n_bands

    def add_many(self, records: "Sequence[Record]") -> None:
        """Sign and index a batch of records via the columnar factory.

        Equivalent to calling :meth:`add` once per record, in order —
        same signatures (the factory is bit-identical to
        :func:`~repro.index.minhash.minhash_signature`), same log rows
        in the same order, same counter movement — but the hashing runs
        vocabulary-deduplicated and vectorized, so bulk loads and cold
        starts pay per *distinct* token, not per occurrence.
        """
        if not records:
            return
        rids = [record.rid for record in records]
        if len(set(rids)) != len(rids):
            raise ValueError("duplicate rids in batch")
        for rid in rids:
            if rid in self._signatures:
                raise ValueError(f"record {rid} already indexed")
        by_rid = {record.rid: record for record in records}
        factory = SignatureFactory(self.n_hashes, backend="auto")
        signed = factory.sign_records(
            rids, lambda rid: self._elements(by_rid[rid])
        )
        self.signatures_computed += len(records)
        signatures = self.engine.table(self.signatures_table)
        postings = self.engine.table(self.postings_table)
        for rid, signature in zip(signed.rids, signed.tuples):
            self._signatures[rid] = signature
            signatures.insert((rid, signature, 1))
            for band, key in self._keys_of(signature):
                self._buckets.setdefault((band, key), set()).add(rid)
                postings.insert((band, key, rid, 1))
            self.log_rows_appended += 1 + self.n_bands

    def remove(self, rid: int) -> None:
        """Tombstone ``rid`` in both logs and drop it from the buckets.

        Raises :class:`KeyError` for an id that is not indexed.
        """
        signature = self._signatures.pop(rid)
        self.engine.table(self.signatures_table).insert((rid, signature, -1))
        postings = self.engine.table(self.postings_table)
        for band, key in self._keys_of(signature):
            bucket = self._buckets.get((band, key))
            if bucket is not None:
                bucket.discard(rid)
            postings.insert((band, key, rid, -1))
        self.log_rows_appended += 1 + self.n_bands
        self.tombstones += 1

    def candidates(self, record: Record) -> list[int]:
        """Rids sharing at least one LSH band with ``record``, sorted.

        An indexed probe reuses its logged signature; an out-of-index
        probe (the arrival being inserted is indexed first by the
        deduplicator, so this is rare) is signed on the fly.
        """
        signature = self._signatures.get(record.rid)
        if signature is None:
            signature = minhash_signature(self._elements(record), self.n_hashes)
            self.signatures_computed += 1
        seen: set[int] = set()
        for band, key in self._keys_of(signature):
            seen.update(self._buckets.get((band, key), ()))
        seen.discard(record.rid)
        return sorted(seen)

    def compact(self) -> int:
        """Rewrite both logs net of tombstones; returns rows dropped.

        Keeps a long-lived session's log scans (and the next restart's
        replay) proportional to the *live* record count instead of the
        full mutation history.
        """
        before = (
            self.engine.table(self.signatures_table).n_rows
            + self.engine.table(self.postings_table).n_rows
        )
        signatures = self.engine.create_table(
            self.signatures_table, SIGNATURES_SCHEMA, replace=True
        )
        postings = self.engine.create_table(
            self.postings_table, POSTINGS_SCHEMA, replace=True
        )
        after = 0
        for rid in sorted(self._signatures):
            signature = self._signatures[rid]
            signatures.insert((rid, signature, 1))
            for band, key in self._keys_of(signature):
                postings.insert((band, key, rid, 1))
            after += 1 + self.n_bands
        self.tombstones = 0
        return before - after

    # ------------------------------------------------------------------
    # Cross-process snapshots
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Snapshot the live (compacted) state to a JSON file."""
        path = Path(path)
        payload = {
            "meta": {
                "n_hashes": self.n_hashes,
                "n_bands": self.n_bands,
                "use_qgrams": self.use_qgrams,
                "q": self.q,
            },
            "signatures": [
                [rid, list(self._signatures[rid])]
                for rid in sorted(self._signatures)
            ],
        }
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    @classmethod
    def load(
        cls, path: str | Path, engine: Engine, *, prefix: str = "MinHash"
    ) -> "PersistentMinHashPostings":
        """Warm-start from a :meth:`save` snapshot into ``engine``.

        Recreates both log tables from the snapshot and replays them —
        no token is re-hashed (``signatures_computed == 0``).
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        meta = payload["meta"]
        index = cls(
            engine,
            n_hashes=meta["n_hashes"],
            n_bands=meta["n_bands"],
            use_qgrams=meta["use_qgrams"],
            q=meta["q"],
            prefix=prefix,
        )
        if index._signatures:
            raise ValueError(
                f"engine already holds postings tables with prefix {prefix!r}"
            )
        signatures = engine.table(index.signatures_table)
        postings = engine.table(index.postings_table)
        for rid, signature in payload["signatures"]:
            signature = tuple(signature)
            index._signatures[rid] = signature
            signatures.insert((rid, signature, 1))
            for band, key in index._keys_of(signature):
                index._buckets.setdefault((band, key), set()).add(rid)
                postings.insert((band, key, rid, 1))
        index.restored = True
        return index

    # ------------------------------------------------------------------

    def __contains__(self, rid: int) -> bool:
        return rid in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)
