"""Brute-force (nested loop) nearest-neighbor index.

The paper's fallback when no index is available ("otherwise, we apply
nested loop join methods in this phase") and our exactness reference:
every other index is validated against this one.
"""

from __future__ import annotations

import heapq

from repro.data.schema import Record
from repro.index.base import Neighbor, NNIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NNIndex):
    """Exact k-NN / range queries by scanning the whole relation."""

    name = "bruteforce"

    def _build(self) -> None:
        pass  # nothing to construct

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0:
            return []
        heap: list[Neighbor] = []
        for other in relation:
            if other.rid == record.rid:
                continue
            hit = Neighbor(self._evaluate(record, other), other.rid)
            if len(heap) < k:
                # heapq is a min-heap; invert ordering to keep the k smallest.
                heapq.heappush(heap, _Inverted(hit))
            elif hit < heap[0].neighbor:
                heapq.heapreplace(heap, _Inverted(hit))
        return sorted(item.neighbor for item in heap)

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        hits = []
        for other in relation:
            if other.rid == record.rid:
                continue
            d = self._evaluate(record, other)
            if d < radius or (inclusive and d == radius):
                hits.append(Neighbor(d, other.rid))
        hits.sort()
        return hits


class _Inverted:
    """Wrap a Neighbor so heapq keeps the *largest* at the root."""

    __slots__ = ("neighbor",)

    def __init__(self, neighbor: Neighbor):
        self.neighbor = neighbor

    def __lt__(self, other: "_Inverted") -> bool:
        return self.neighbor > other.neighbor
