"""Brute-force (nested loop) nearest-neighbor index.

The paper's fallback when no index is available ("otherwise, we apply
nested loop join methods in this phase") and our exactness reference:
every other index is validated against this one.

Batch fast path
---------------
Per-query brute force re-scans the relation for every lookup: Phase 1
over n records costs ``n * (n - 1)`` evaluations for the NN lists and
the same again for the NG range counts.  The batch methods instead run
a *blocked all-pairs* evaluation: each unordered pair inside the batch
is evaluated at most once (distance symmetry), the result feeds both
endpoints' answer heaps in the same pass, and every evaluated pair is
stored in a shared pair cache that the NG range counts following in
Phase 1 are then served from.  For a whole-relation batch this drops
Phase 1 from ``2n(n-1)`` evaluations to ``n(n-1)/2`` — the engine
behind the ``repro.parallel`` chunked executor.

The per-query methods consult the cache but never populate it, so
plain sequential usage keeps its O(1) memory profile and remains the
honest baseline the batch path is benchmarked against.

Evaluation direction is canonicalized by record id (the lower rid is
always the first argument).  The distance protocol is symmetric, but
floating-point accumulation inside real distance functions need not be
bit-symmetric; a fixed direction keeps results bit-identical no matter
which query touches a pair first — the property the parallel engine's
"identical for any worker count" guarantee rests on.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.data.schema import Record
from repro.index.base import Neighbor, NNIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NNIndex):
    """Exact k-NN / range queries by scanning the whole relation.

    Parameters
    ----------
    cache_pairs:
        Enable the blocked batch evaluation and its shared pair cache.
        With ``False`` the batch methods degrade to the sequential
        per-record fallback.
    max_cache_entries:
        Optional bound on the pair cache (FIFO eviction, as in
        :class:`~repro.distances.base.CachedDistance`).  Unbounded
        caching of a whole-relation batch stores O(n²) floats; see
        ``docs/performance.md`` for sizing guidance.
    """

    name = "bruteforce"

    def __init__(
        self, cache_pairs: bool = True, max_cache_entries: int | None = None
    ):
        super().__init__()
        if max_cache_entries is not None and max_cache_entries <= 0:
            raise ValueError("max_cache_entries must be positive (or None)")
        self.cache_pairs = cache_pairs
        self.max_cache_entries = max_cache_entries
        self._pair_cache: dict[tuple[int, int], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: One-slot (rid, np, rids, row) memo for per-query kernel
        #: lookups: Phase 1 probes each record twice in a row (NN list,
        #: then NG count) and this spares the second row computation.
        self._kernel_row_cache = None

    def _build(self) -> None:
        self._pair_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self._kernel_row_cache = None

    # ------------------------------------------------------------------
    # Pair cache
    # ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distance requests served by the pair cache."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def _canonical(self, record: Record, other: Record) -> float:
        """Evaluate the pair in canonical (lower rid first) direction."""
        if record.rid <= other.rid:
            return self._evaluate(record, other)
        return self._evaluate(other, record)

    def _pair_distance(self, record: Record, other: Record) -> float:
        """Evaluate ``d(record, other)``, consulting (not filling) the cache."""
        if self._pair_cache:
            rid, oid = record.rid, other.rid
            key = (rid, oid) if rid <= oid else (oid, rid)
            cached = self._pair_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        self.cache_misses += 1
        return self._canonical(record, other)

    def _store(self, key: tuple[int, int], distance: float) -> None:
        cache = self._pair_cache
        if (
            self.max_cache_entries is not None
            and len(cache) >= self.max_cache_entries
        ):
            try:
                # Concurrent thread workers may race on the oldest key;
                # losing the race is harmless.
                cache.pop(next(iter(cache)))
            except (StopIteration, KeyError):
                pass
            else:
                self.cache_evictions += 1
        cache[key] = distance

    def prime_pairs(self, records: Sequence[Record]) -> None:
        """Blocked all-pairs fill: evaluate each (query, other) pair once.

        Symmetry means a pair of two query records is evaluated a single
        time even though both rows need it, and pairs already primed by
        an earlier batch (e.g. a previous chunk of the parallel engine)
        are skipped entirely.  No-op when ``cache_pairs`` is off.
        """
        if not self.cache_pairs:
            return
        relation, _ = self._checked()
        cache = self._pair_cache
        for record in records:
            rid = record.rid
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                key = (rid, oid) if rid <= oid else (oid, rid)
                if key not in cache:
                    self._store(key, self._canonical(record, other))

    # ------------------------------------------------------------------
    # Per-query scans
    # ------------------------------------------------------------------

    def _kernel_row(self, record: Record):
        """Masked kernel distance row for one query, or ``None``."""
        kernel = self._usable_kernel((record,))
        if kernel is None:
            return None
        from repro.distances.kernels.compat import require_numpy

        np = require_numpy()
        cached = self._kernel_row_cache
        if cached is not None and cached[0] == record.rid:
            return np, cached[1], cached[2]
        rids_arr = np.asarray(kernel.rids, dtype=np.int64)
        d = kernel.block([record.rid])[0]
        d[int(np.searchsorted(rids_arr, record.rid))] = float("inf")
        self.kernel_evaluations += max(0, len(rids_arr) - 1)
        self._kernel_row_cache = (record.rid, rids_arr, d)
        return np, rids_arr, d

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0:
            return []
        row = self._kernel_row(record)
        if row is not None:
            np, rids_arr, d = row
            return self._row_knn(np, d, rids_arr, k)
        heap: list[Neighbor] = []
        for other in relation:
            if other.rid == record.rid:
                continue
            hit = Neighbor(self._pair_distance(record, other), other.rid)
            if len(heap) < k:
                # heapq is a min-heap; invert ordering to keep the k smallest.
                heapq.heappush(heap, _Inverted(hit))
            elif hit < heap[0].neighbor:
                heapq.heapreplace(heap, _Inverted(hit))
        return sorted(item.neighbor for item in heap)

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        row = self._kernel_row(record)
        if row is not None:
            np, rids_arr, d = row
            return self._row_within(np, d, rids_arr, radius, inclusive)
        hits = []
        cache = self._pair_cache
        if cache:
            # Hot path for the NG range counts that follow a blocked
            # batch: almost every pair is a cache hit, so the loop is
            # inlined with hoisted locals and counters batched up.
            rid = record.rid
            get = cache.get
            cache_hits = 0
            cache_misses = 0
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                d = get((rid, oid) if rid <= oid else (oid, rid))
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                else:
                    cache_hits += 1
                if d < radius or (inclusive and d == radius):
                    hits.append(Neighbor(d, oid))
            self.cache_hits += cache_hits
            self.cache_misses += cache_misses
        else:
            for other in relation:
                if other.rid == record.rid:
                    continue
                self.cache_misses += 1
                d = self._canonical(record, other)
                if d < radius or (inclusive and d == radius):
                    hits.append(Neighbor(d, other.rid))
        hits.sort()
        return hits

    # ------------------------------------------------------------------
    # Vectorized kernel batch evaluation
    # ------------------------------------------------------------------
    #
    # When a batch kernel is resolved (``enable_kernel``), the batch
    # methods compute whole distance rows at once: queries are processed
    # in sub-blocks of ``_KERNEL_BLOCK`` rows to cap the dense block at
    # a few MB, and per-row selection (k smallest, range filter, NG
    # count) runs on the row arrays.  Kernel distances are bit-identical
    # to the scalar canonical-direction evaluation, so answers match
    # the scalar batch/per-query paths exactly; the work is ledgered in
    # ``kernel_evaluations`` and never touches the pair cache.

    _KERNEL_BLOCK = 64

    def _usable_kernel(self, records: Sequence[Record]):
        kernel = self._kernel
        if kernel is None:
            return None
        relation = self.relation
        if relation is None or len(kernel.rids) != len(relation):
            return None
        if any(record.rid not in kernel for record in records):
            return None
        return kernel

    def _kernel_scan(self, kernel, records: Sequence[Record]):
        """Set up a blocked row scan: returns ``(np, rids_arr, rows)``.

        ``rows`` yields one masked (self = inf) float64 distance row per
        query record, in batch order.
        """
        from repro.distances.kernels.compat import require_numpy

        np = require_numpy()
        rids_arr = np.asarray(kernel.rids, dtype=np.int64)

        def rows():
            inf = float("inf")
            block = self._KERNEL_BLOCK
            n = len(rids_arr)
            for start in range(0, len(records), block):
                chunk = [record.rid for record in records[start : start + block]]
                dense = kernel.block(chunk)
                self.kernel_evaluations += len(chunk) * max(0, n - 1)
                for r, rid in enumerate(chunk):
                    d = dense[r]
                    d[int(np.searchsorted(rids_arr, rid))] = inf
                    yield d

        return np, rids_arr, rows()

    @staticmethod
    def _row_knn(np, d, rids_arr, k: int) -> list[Neighbor]:
        """The k lexicographically smallest ``(d, rid)`` pairs of a row."""
        if k <= 0:
            return []
        m = d.shape[0] - 1  # self is masked to inf
        if m <= 0:
            return []
        if k < m:
            kth = np.partition(d, k - 1)[k - 1]
            idx = np.flatnonzero(d <= kth)
        else:
            idx = np.flatnonzero(d < np.inf)
        sub_d = d[idx]
        sub_r = rids_arr[idx]
        order = np.lexsort((sub_r, sub_d))[:k]
        return [Neighbor(float(sub_d[o]), int(sub_r[o])) for o in order]

    @staticmethod
    def _row_within(np, d, rids_arr, radius: float, inclusive: bool) -> list[Neighbor]:
        idx = np.flatnonzero(d <= radius if inclusive else d < radius)
        sub_d = d[idx]
        sub_r = rids_arr[idx]
        order = np.lexsort((sub_r, sub_d))
        return [Neighbor(float(sub_d[o]), int(sub_r[o])) for o in order]

    # ------------------------------------------------------------------
    # Blocked batch evaluation
    # ------------------------------------------------------------------
    #
    # Both batch methods share the same skeleton: query i scans the
    # relation but skips records that are *earlier queries of the same
    # batch* — that pair was evaluated during the earlier query's scan
    # and contributed to both answers right then.  Batch records must
    # therefore have distinct rids (relations guarantee this).

    def knn_batch(self, records: Sequence[Record], k: int) -> list[list[Neighbor]]:
        if k <= 0:
            return [[] for _ in records]
        kernel = self._usable_kernel(records)
        if kernel is not None:
            np, rids_arr, rows = self._kernel_scan(kernel, records)
            return [self._row_knn(np, d, rids_arr, k) for d in rows]
        if not self.cache_pairs:
            return [self.knn(record, k) for record in records]
        relation, _ = self._checked()
        cache = self._pair_cache
        position = {record.rid: i for i, record in enumerate(records)}
        # Negated (distance, rid) tuples make a min-heap keep the k
        # lexicographically smallest pairs with its root at the worst.
        heaps: list[list[tuple[float, int]]] = [[] for _ in records]

        def push(heap: list[tuple[float, int]], d: float, rid: int) -> None:
            item = (-d, -rid)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

        get = cache.get
        position_get = position.get
        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            heap = heaps[i]
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and pushed by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                push(heap, d, oid)
                if j is not None:
                    push(heaps[j], d, rid)
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        return [
            sorted(Neighbor(-nd, -nrid) for nd, nrid in heap) for heap in heaps
        ]

    def within_batch(
        self, records: Sequence[Record], radius: float, inclusive: bool = False
    ) -> list[list[Neighbor]]:
        kernel = self._usable_kernel(records)
        if kernel is not None:
            np, rids_arr, rows = self._kernel_scan(kernel, records)
            return [
                self._row_within(np, d, rids_arr, radius, inclusive) for d in rows
            ]
        if not self.cache_pairs:
            return [self.within(record, radius, inclusive) for record in records]
        relation, _ = self._checked()
        cache = self._pair_cache
        position = {record.rid: i for i, record in enumerate(records)}
        rows: list[list[Neighbor]] = [[] for _ in records]

        get = cache.get
        position_get = position.get
        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and recorded by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                if d < radius or (inclusive and d == radius):
                    rows[i].append(Neighbor(d, oid))
                    if j is not None:
                        rows[j].append(Neighbor(d, rid))
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        for row in rows:
            row.sort()
        return rows

    def phase1_batch(
        self,
        records: Sequence[Record],
        k: int | None = None,
        theta: float | None = None,
        p: float = 2.0,
        radius_fn=None,
    ) -> list[tuple[list[Neighbor], int]]:
        """Fused Phase-1 kernel: one blocked pass answers lists *and* NG.

        On top of the blocked-batch skeleton this retains, per query, a
        candidate list for the NG count using a monotone-radius filter:
        a pair is kept while ``d <= p * running_nn``, and since the
        running nearest-neighbor distance only shrinks, the retained
        set is always a superset of the final ``d < p * nn(v)``
        neighborhood — counted exactly at the end.  This removes the
        whole second relation scan (and its cache lookups) that
        per-record NG computation costs.

        The monotonicity argument needs the linear ``p * nn`` radius, so
        a custom ``radius_fn`` (and the cacheless configuration) falls
        back to the generic per-record path.  The kernel route needs
        neither restriction: every query already holds its full distance
        row, so the NG count (including a custom ``radius_fn``) is read
        straight off the row.
        """
        if k is None and theta is None:
            raise ValueError("phase1_batch needs k, theta, or both")
        kernel = self._usable_kernel(records)
        if kernel is not None:
            np, rids_arr, rows = self._kernel_scan(kernel, records)
            inf = float("inf")
            results: list[tuple[list[Neighbor], int]] = []
            for d in rows:
                if theta is not None:
                    neighbors = self._row_within(np, d, rids_arr, theta, False)
                    if k is not None:
                        neighbors = neighbors[:k]
                else:
                    assert k is not None
                    neighbors = self._row_knn(np, d, rids_arr, k)
                nn_d = float(d.min()) if d.size else inf
                if nn_d == inf:
                    ng = 1
                elif nn_d == 0.0:
                    # Exact duplicates: the zero-distance records are the
                    # neighborhood (see NNIndex.neighborhood_growth).
                    ng = 1 + int((d == 0.0).sum())
                else:
                    radius = radius_fn(nn_d) if radius_fn is not None else p * nn_d
                    ng = 1 + int((d < radius).sum())
                results.append((neighbors, ng))
            return results
        if (
            radius_fn is not None
            or not self.cache_pairs
            or (theta is None and k is not None and k <= 0)
        ):
            return super().phase1_batch(
                records, k=k, theta=theta, p=p, radius_fn=radius_fn
            )
        relation, _ = self._checked()
        cache = self._pair_cache
        get = cache.get
        n = len(records)
        position = {record.rid: i for i, record in enumerate(records)}
        position_get = position.get
        inf = float("inf")
        running = [inf] * n  # running nn(v) upper bound per query
        cands: list[list[float]] = [[] for _ in range(n)]
        use_heaps = theta is None
        heaps: list[list[tuple[float, int]]] = [[] for _ in range(n)]
        rows: list[list[Neighbor]] = [[] for _ in range(n)]

        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            heap = heaps[i]
            row = rows[i]
            cand = cands[i]
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and fed by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                if d < running[i]:
                    running[i] = d
                if d <= p * running[i]:
                    cand.append(d)
                if use_heaps:
                    item = (-d, -oid)
                    if len(heap) < k:
                        heapq.heappush(heap, item)
                    elif item > heap[0]:
                        heapq.heapreplace(heap, item)
                elif d < theta:
                    row.append(Neighbor(d, oid))
                if j is not None:
                    if d < running[j]:
                        running[j] = d
                    if d <= p * running[j]:
                        cands[j].append(d)
                    if use_heaps:
                        item = (-d, -rid)
                        other_heap = heaps[j]
                        if len(other_heap) < k:
                            heapq.heappush(other_heap, item)
                        elif item > other_heap[0]:
                            heapq.heapreplace(other_heap, item)
                    elif d < theta:
                        rows[j].append(Neighbor(d, rid))
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses

        results: list[tuple[list[Neighbor], int]] = []
        for i in range(n):
            if use_heaps:
                neighbors = sorted(
                    Neighbor(-nd, -nrid) for nd, nrid in heaps[i]
                )
            else:
                rows[i].sort()
                neighbors = rows[i] if k is None else rows[i][:k]
            nn_d = running[i]
            if nn_d == inf:
                ng = 1
            elif nn_d == 0.0:
                # Exact duplicates: the zero-distance records are the
                # neighborhood (see NNIndex.neighborhood_growth).
                ng = 1 + sum(1 for d in cands[i] if d == 0.0)
            else:
                radius = p * nn_d
                ng = 1 + sum(1 for d in cands[i] if d < radius)
            results.append((neighbors, ng))
        return results


class _Inverted:
    """Wrap a Neighbor so heapq keeps the *largest* at the root."""

    __slots__ = ("neighbor",)

    def __init__(self, neighbor: Neighbor):
        self.neighbor = neighbor

    def __lt__(self, other: "_Inverted") -> bool:
        return self.neighbor > other.neighbor
