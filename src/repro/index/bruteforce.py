"""Brute-force (nested loop) nearest-neighbor index.

The paper's fallback when no index is available ("otherwise, we apply
nested loop join methods in this phase") and our exactness reference:
every other index is validated against this one.

Batch fast path
---------------
Per-query brute force re-scans the relation for every lookup: Phase 1
over n records costs ``n * (n - 1)`` evaluations for the NN lists and
the same again for the NG range counts.  The batch methods instead run
a *blocked all-pairs* evaluation: each unordered pair inside the batch
is evaluated at most once (distance symmetry), the result feeds both
endpoints' answer heaps in the same pass, and every evaluated pair is
stored in a shared pair cache that the NG range counts following in
Phase 1 are then served from.  For a whole-relation batch this drops
Phase 1 from ``2n(n-1)`` evaluations to ``n(n-1)/2`` — the engine
behind the ``repro.parallel`` chunked executor.

The per-query methods consult the cache but never populate it, so
plain sequential usage keeps its O(1) memory profile and remains the
honest baseline the batch path is benchmarked against.

Evaluation direction is canonicalized by record id (the lower rid is
always the first argument).  The distance protocol is symmetric, but
floating-point accumulation inside real distance functions need not be
bit-symmetric; a fixed direction keeps results bit-identical no matter
which query touches a pair first — the property the parallel engine's
"identical for any worker count" guarantee rests on.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.data.schema import Record
from repro.index.base import Neighbor, NNIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NNIndex):
    """Exact k-NN / range queries by scanning the whole relation.

    Parameters
    ----------
    cache_pairs:
        Enable the blocked batch evaluation and its shared pair cache.
        With ``False`` the batch methods degrade to the sequential
        per-record fallback.
    max_cache_entries:
        Optional bound on the pair cache (FIFO eviction, as in
        :class:`~repro.distances.base.CachedDistance`).  Unbounded
        caching of a whole-relation batch stores O(n²) floats; see
        ``docs/performance.md`` for sizing guidance.
    """

    name = "bruteforce"

    def __init__(
        self, cache_pairs: bool = True, max_cache_entries: int | None = None
    ):
        super().__init__()
        if max_cache_entries is not None and max_cache_entries <= 0:
            raise ValueError("max_cache_entries must be positive (or None)")
        self.cache_pairs = cache_pairs
        self.max_cache_entries = max_cache_entries
        self._pair_cache: dict[tuple[int, int], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def _build(self) -> None:
        self._pair_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # ------------------------------------------------------------------
    # Pair cache
    # ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of distance requests served by the pair cache."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def _canonical(self, record: Record, other: Record) -> float:
        """Evaluate the pair in canonical (lower rid first) direction."""
        if record.rid <= other.rid:
            return self._evaluate(record, other)
        return self._evaluate(other, record)

    def _pair_distance(self, record: Record, other: Record) -> float:
        """Evaluate ``d(record, other)``, consulting (not filling) the cache."""
        if self._pair_cache:
            rid, oid = record.rid, other.rid
            key = (rid, oid) if rid <= oid else (oid, rid)
            cached = self._pair_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        self.cache_misses += 1
        return self._canonical(record, other)

    def _store(self, key: tuple[int, int], distance: float) -> None:
        cache = self._pair_cache
        if (
            self.max_cache_entries is not None
            and len(cache) >= self.max_cache_entries
        ):
            try:
                # Concurrent thread workers may race on the oldest key;
                # losing the race is harmless.
                cache.pop(next(iter(cache)))
            except (StopIteration, KeyError):
                pass
            else:
                self.cache_evictions += 1
        cache[key] = distance

    def prime_pairs(self, records: Sequence[Record]) -> None:
        """Blocked all-pairs fill: evaluate each (query, other) pair once.

        Symmetry means a pair of two query records is evaluated a single
        time even though both rows need it, and pairs already primed by
        an earlier batch (e.g. a previous chunk of the parallel engine)
        are skipped entirely.  No-op when ``cache_pairs`` is off.
        """
        if not self.cache_pairs:
            return
        relation, _ = self._checked()
        cache = self._pair_cache
        for record in records:
            rid = record.rid
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                key = (rid, oid) if rid <= oid else (oid, rid)
                if key not in cache:
                    self._store(key, self._canonical(record, other))

    # ------------------------------------------------------------------
    # Per-query scans
    # ------------------------------------------------------------------

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0:
            return []
        heap: list[Neighbor] = []
        for other in relation:
            if other.rid == record.rid:
                continue
            hit = Neighbor(self._pair_distance(record, other), other.rid)
            if len(heap) < k:
                # heapq is a min-heap; invert ordering to keep the k smallest.
                heapq.heappush(heap, _Inverted(hit))
            elif hit < heap[0].neighbor:
                heapq.heapreplace(heap, _Inverted(hit))
        return sorted(item.neighbor for item in heap)

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        hits = []
        cache = self._pair_cache
        if cache:
            # Hot path for the NG range counts that follow a blocked
            # batch: almost every pair is a cache hit, so the loop is
            # inlined with hoisted locals and counters batched up.
            rid = record.rid
            get = cache.get
            cache_hits = 0
            cache_misses = 0
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                d = get((rid, oid) if rid <= oid else (oid, rid))
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                else:
                    cache_hits += 1
                if d < radius or (inclusive and d == radius):
                    hits.append(Neighbor(d, oid))
            self.cache_hits += cache_hits
            self.cache_misses += cache_misses
        else:
            for other in relation:
                if other.rid == record.rid:
                    continue
                self.cache_misses += 1
                d = self._canonical(record, other)
                if d < radius or (inclusive and d == radius):
                    hits.append(Neighbor(d, other.rid))
        hits.sort()
        return hits

    # ------------------------------------------------------------------
    # Blocked batch evaluation
    # ------------------------------------------------------------------
    #
    # Both batch methods share the same skeleton: query i scans the
    # relation but skips records that are *earlier queries of the same
    # batch* — that pair was evaluated during the earlier query's scan
    # and contributed to both answers right then.  Batch records must
    # therefore have distinct rids (relations guarantee this).

    def knn_batch(self, records: Sequence[Record], k: int) -> list[list[Neighbor]]:
        if k <= 0:
            return [[] for _ in records]
        if not self.cache_pairs:
            return [self.knn(record, k) for record in records]
        relation, _ = self._checked()
        cache = self._pair_cache
        position = {record.rid: i for i, record in enumerate(records)}
        # Negated (distance, rid) tuples make a min-heap keep the k
        # lexicographically smallest pairs with its root at the worst.
        heaps: list[list[tuple[float, int]]] = [[] for _ in records]

        def push(heap: list[tuple[float, int]], d: float, rid: int) -> None:
            item = (-d, -rid)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)

        get = cache.get
        position_get = position.get
        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            heap = heaps[i]
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and pushed by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                push(heap, d, oid)
                if j is not None:
                    push(heaps[j], d, rid)
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        return [
            sorted(Neighbor(-nd, -nrid) for nd, nrid in heap) for heap in heaps
        ]

    def within_batch(
        self, records: Sequence[Record], radius: float, inclusive: bool = False
    ) -> list[list[Neighbor]]:
        if not self.cache_pairs:
            return [self.within(record, radius, inclusive) for record in records]
        relation, _ = self._checked()
        cache = self._pair_cache
        position = {record.rid: i for i, record in enumerate(records)}
        rows: list[list[Neighbor]] = [[] for _ in records]

        get = cache.get
        position_get = position.get
        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and recorded by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                if d < radius or (inclusive and d == radius):
                    rows[i].append(Neighbor(d, oid))
                    if j is not None:
                        rows[j].append(Neighbor(d, rid))
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        for row in rows:
            row.sort()
        return rows

    def phase1_batch(
        self,
        records: Sequence[Record],
        k: int | None = None,
        theta: float | None = None,
        p: float = 2.0,
        radius_fn=None,
    ) -> list[tuple[list[Neighbor], int]]:
        """Fused Phase-1 kernel: one blocked pass answers lists *and* NG.

        On top of the blocked-batch skeleton this retains, per query, a
        candidate list for the NG count using a monotone-radius filter:
        a pair is kept while ``d <= p * running_nn``, and since the
        running nearest-neighbor distance only shrinks, the retained
        set is always a superset of the final ``d < p * nn(v)``
        neighborhood — counted exactly at the end.  This removes the
        whole second relation scan (and its cache lookups) that
        per-record NG computation costs.

        The monotonicity argument needs the linear ``p * nn`` radius, so
        a custom ``radius_fn`` (and the cacheless configuration) falls
        back to the generic per-record path.
        """
        if (
            radius_fn is not None
            or not self.cache_pairs
            or (theta is None and k is not None and k <= 0)
        ):
            return super().phase1_batch(
                records, k=k, theta=theta, p=p, radius_fn=radius_fn
            )
        if k is None and theta is None:
            raise ValueError("phase1_batch needs k, theta, or both")
        relation, _ = self._checked()
        cache = self._pair_cache
        get = cache.get
        n = len(records)
        position = {record.rid: i for i, record in enumerate(records)}
        position_get = position.get
        inf = float("inf")
        running = [inf] * n  # running nn(v) upper bound per query
        cands: list[list[float]] = [[] for _ in range(n)]
        use_heaps = theta is None
        heaps: list[list[tuple[float, int]]] = [[] for _ in range(n)]
        rows: list[list[Neighbor]] = [[] for _ in range(n)]

        cache_hits = 0
        cache_misses = 0
        for i, record in enumerate(records):
            rid = record.rid
            heap = heaps[i]
            row = rows[i]
            cand = cands[i]
            for other in relation:
                oid = other.rid
                if oid == rid:
                    continue
                j = position_get(oid)
                if j is not None and j < i:
                    continue  # already evaluated and fed by query j
                key = (rid, oid) if rid <= oid else (oid, rid)
                d = get(key)
                if d is None:
                    cache_misses += 1
                    d = self._canonical(record, other)
                    self._store(key, d)
                else:
                    cache_hits += 1
                if d < running[i]:
                    running[i] = d
                if d <= p * running[i]:
                    cand.append(d)
                if use_heaps:
                    item = (-d, -oid)
                    if len(heap) < k:
                        heapq.heappush(heap, item)
                    elif item > heap[0]:
                        heapq.heapreplace(heap, item)
                elif d < theta:
                    row.append(Neighbor(d, oid))
                if j is not None:
                    if d < running[j]:
                        running[j] = d
                    if d <= p * running[j]:
                        cands[j].append(d)
                    if use_heaps:
                        item = (-d, -rid)
                        other_heap = heaps[j]
                        if len(other_heap) < k:
                            heapq.heappush(other_heap, item)
                        elif item > other_heap[0]:
                            heapq.heapreplace(other_heap, item)
                    elif d < theta:
                        rows[j].append(Neighbor(d, rid))
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses

        results: list[tuple[list[Neighbor], int]] = []
        for i in range(n):
            if use_heaps:
                neighbors = sorted(
                    Neighbor(-nd, -nrid) for nd, nrid in heaps[i]
                )
            else:
                rows[i].sort()
                neighbors = rows[i] if k is None else rows[i][:k]
            nn_d = running[i]
            if nn_d == inf:
                ng = 1
            elif nn_d == 0.0:
                # Exact duplicates: the zero-distance records are the
                # neighborhood (see NNIndex.neighborhood_growth).
                ng = 1 + sum(1 for d in cands[i] if d == 0.0)
            else:
                radius = p * nn_d
                ng = 1 + sum(1 for d in cands[i] if d < radius)
            results.append((neighbors, ng))
        return results


class _Inverted:
    """Wrap a Neighbor so heapq keeps the *largest* at the root."""

    __slots__ = ("neighbor",)

    def __init__(self, neighbor: Neighbor):
        self.neighbor = neighbor

    def __lt__(self, other: "_Inverted") -> bool:
        return self.neighbor > other.neighbor
