"""Q-gram inverted index with candidate verification.

The workhorse approximate NN index, modelled on the probabilistic
inverted-index structures the paper cites ([24, 9]): posting lists map
each q-gram of the (normalized) record text to the records containing
it.  A query merges the posting lists of its own q-grams, ranks
candidates by shared-gram count, and verifies the most promising ones
with the real distance function.

Exactness
---------
The index is approximate: a true neighbor sharing no q-gram with the
query can be missed.  The paper explicitly "treats these probabilistic
indexes as exact" and shows the assumption does not hurt results; we
additionally offer ``exhaustive_fallback`` (scan the remainder when too
few candidates surface) and validate recall against
:class:`~repro.index.bruteforce.BruteForceIndex` in benchmark A4.

Disk residency
--------------
When built with a :class:`~repro.storage.buffer.BufferPool`, posting
lists live on pages and every lookup goes through the buffer — this is
the configuration the Figure 8 (BF ordering) benchmark measures.
"""

from __future__ import annotations

from collections import Counter

from repro.data.schema import Record
from repro.distances.base import CachedDistance
from repro.distances.edit import EditDistance, levenshtein
from repro.distances.kernels.edit import banded_levenshtein, myers_levenshtein
from repro.distances.tokens import normalize, qgrams
from repro.index.base import Neighbor, NNIndex
from repro.index.cache import PagedPostingStore
from repro.storage.buffer import BufferPool

__all__ = ["QgramInvertedIndex"]


class QgramInvertedIndex(NNIndex):
    """Approximate NN index over q-grams of the whole-record text.

    Parameters
    ----------
    q:
        Gram length (3 is the usual choice for short strings).
    candidate_factor:
        For ``knn(record, k)``, verify the top ``candidate_factor * k``
        candidates (at least ``min_candidates``).
    min_candidates:
        Floor on the number of candidates verified per query.
    exhaustive_fallback:
        If fewer than ``k`` candidates share a q-gram with the query,
        fall back to scanning the remaining records so short NN-lists
        never silently truncate (rare, but keeps Phase 1 robust).
    max_df:
        Stop-gram threshold: posting lists longer than this are skipped
        during candidate generation (the classic IR optimization — a
        gram occurring in half the relation carries no signal but costs
        O(n) per query).  ``None`` disables skipping; the scalability
        benchmarks enable it.
    enable_fast_path:
        Allow the Levenshtein filter-verify fast path (count filter,
        banded DP, pair cache) when the distance is plain normalized
        edit distance.  Exists so the optimization ablation (benchmark
        A6) can measure the unoptimized baseline; leave on otherwise.
    within_budget:
        Cap on the number of candidates verified per ``within`` query
        (most-shared-grams first).  ``None`` verifies all candidates.
        Range queries power the NG computation; capping them trades a
        slight NG underestimate on very popular strings for linear-time
        behaviour, in the spirit of the paper's probabilistic indexes.
    buffer_pool:
        Optional buffer pool; when given, posting lists are paged and
        all lookups are counted in the pool's hit/miss statistics.
    """

    def __init__(
        self,
        q: int = 3,
        candidate_factor: int = 4,
        min_candidates: int = 24,
        exhaustive_fallback: bool = True,
        max_df: int | None = None,
        within_budget: int | None = None,
        enable_fast_path: bool = True,
        buffer_pool: BufferPool | None = None,
    ):
        super().__init__()
        if q < 1:
            raise ValueError("q must be at least 1")
        if max_df is not None and max_df < 1:
            raise ValueError("max_df must be positive")
        self.q = q
        self.candidate_factor = candidate_factor
        self.min_candidates = min_candidates
        self.exhaustive_fallback = exhaustive_fallback
        self.max_df = max_df
        self.within_budget = within_budget
        self.enable_fast_path = enable_fast_path
        self.buffer_pool = buffer_pool
        self.name = f"qgram{q}-inverted"
        self._postings: dict[str, list[int]] = {}
        self._df: dict[str, int] = {}
        self._paged: PagedPostingStore | None = None
        self._grams: dict[int, list[str]] = {}
        self._texts: dict[int, str] = {}
        self._n_grams: dict[int, int] = {}
        self._edit_fast_path = False
        # The shared canonical pair cache (NNIndex._pair_cache) doubles
        # as the fast path's memo: every pair is probed from both
        # endpoints (knn of a sees b, knn of b sees a) and again by the
        # NG range query; caching exact results halves the DP work.

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        relation, _ = self._checked()
        self._postings = {}
        self._grams = {}
        for record in relation:
            grams = qgrams(record.text(), q=self.q)
            self._grams[record.rid] = grams
            for gram in set(grams):
                self._postings.setdefault(gram, []).append(record.rid)
        self._df = {gram: len(rids) for gram, rids in self._postings.items()}
        # Cutoff-aware verification (classic filter-verify): when the
        # distance is plain normalized Levenshtein, candidates can be
        # rejected with a banded DP bounded by the current k-th best /
        # query radius, instead of a full distance computation.
        inner = self.distance
        while isinstance(inner, CachedDistance):
            inner = inner.inner
        self._edit_fast_path = (
            self.enable_fast_path
            and isinstance(inner, EditDistance)
            and not inner.damerau
            and inner.normalize_text
        )
        if self._edit_fast_path:
            self._texts = {
                record.rid: normalize(record.text()) for record in relation
            }
            self._n_grams = {
                rid: len(set(grams)) for rid, grams in self._grams.items()
            }
        if self.buffer_pool is not None:
            self._paged = PagedPostingStore(self.buffer_pool)
            # Insert in sorted-key order so lexicographically close grams
            # (shared by similar strings) land on neighboring pages.
            for gram in sorted(self._postings):
                self._paged.put(gram, self._postings[gram])
        else:
            self._paged = None

    def _read_postings(self, gram: str) -> list[int]:
        if self._paged is not None:
            return self._paged.get(gram)
        return self._postings.get(gram, [])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _candidates(self, record: Record) -> tuple[Counter[int], int, int]:
        """Count shared q-grams per candidate record id.

        Stop-grams (df above ``max_df``) are skipped: they would touch
        a large fraction of the relation per query while adding no
        discriminative signal.  Returns ``(counts, n_skipped,
        n_query_grams)``; the skip count keeps the count filter sound
        (a candidate may share every skipped gram too).
        """
        grams = self._grams.get(record.rid)
        if grams is None:
            grams = qgrams(record.text(), q=self.q)
        gram_set = set(grams)
        counts: Counter[int] = Counter()
        skipped = 0
        for gram in gram_set:
            if self.max_df is not None and self._df.get(gram, 0) > self.max_df:
                skipped += 1
                continue
            for rid in self._read_postings(gram):
                if rid != record.rid:
                    counts[rid] += 1
        return counts, skipped, len(gram_set)

    def _account_candidates(self, record: Record, n_candidates: int) -> None:
        """Record how many pairs one query surfaced vs. skipped entirely.

        Pairs sharing no (non-stop) q-gram with the query, plus
        candidates cut by the ``candidate_factor`` / ``within_budget``
        ranking, never reach verification — the inverted index's
        sub-quadratic lever.
        """
        relation, _ = self._checked()
        n_others = len(relation) - (1 if record.rid in relation else 0)
        self.candidates_generated += n_candidates
        self.evaluations_pruned += max(0, n_others - n_candidates)

    def _verify(
        self,
        record: Record,
        rid: int,
        cutoff: float | None,
        shared: int = 0,
        query_grams: int = 0,
    ) -> float | None:
        """Return the distance to ``rid``, or None if provably > cutoff.

        With the edit-distance fast path active, two classic filters
        reject far candidates before any (or with a cheap banded) DP:

        - *count filter*: one edit destroys at most ``q`` gram types,
          so ``ed >= (max(|G_a|, |G_b|) - shared) / q``; if that lower
          bound already exceeds the cutoff, skip with no DP at all;
        - *banded DP*: otherwise run Levenshtein with an early exit at
          ``cutoff * max(len_a, len_b)``.
        """
        relation, _ = self._checked()
        if not self._edit_fast_path or cutoff is None or cutoff >= 1.0:
            return self._pair_distance(record, relation.get(rid))
        key = (record.rid, rid) if record.rid <= rid else (rid, record.rid)
        cached = self._pair_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached if cached <= cutoff else None
        self.cache_misses += 1
        query = self._texts.get(record.rid)
        if query is None:
            query = normalize(record.text())
        other = self._texts[rid]
        longest = max(len(query), len(other))
        if longest == 0:
            return 0.0
        bound = int(cutoff * longest)
        if query_grams:
            grams = max(query_grams, self._n_grams.get(rid, 0))
            lower = (grams - shared) / self.q
            if lower > bound:
                # Count filter: ed provably exceeds the band, no DP run.
                self.evaluations_pruned += 1
                return None
        self.evaluations += 1
        raw = self._bounded_raw(query, other, bound)
        if raw > bound:
            return None
        distance = raw / longest
        self._pair_cache[key] = distance
        return distance

    def _bounded_raw(self, query: str, other: str, bound: int) -> int:
        """Raw Levenshtein, exact when <= ``bound`` (any value beyond).

        With kernels enabled the bit-parallel Myers scan replaces the
        two-row DP for strings that fit one machine word, and the
        Ukkonen band covers the long tail; both return the exact raw
        distance whenever it is within ``bound``, so verified values
        are identical to the scalar baseline's.
        """
        if self._kernel is not None:
            if 0 < len(query) <= 64:
                return myers_levenshtein(query, other)
            if 0 < len(other) <= 64:
                return myers_levenshtein(other, query)
            return banded_levenshtein(query, other, bound)
        return levenshtein(query, other, max_distance=bound)

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        from bisect import insort

        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        counts, skipped, n_grams = self._candidates(record)
        budget = max(self.candidate_factor * k, self.min_candidates)
        ranked = counts.most_common(budget)
        if len(ranked) < k and self.exhaustive_fallback:
            seen = {rid for rid, _ in ranked}
            seen.add(record.rid)
            ranked = ranked + [
                (r.rid, 0) for r in relation if r.rid not in seen
            ]
        self._account_candidates(record, len(ranked))
        if not self._edit_fast_path:
            # No cutoff-based rejection without the edit fast path:
            # every ranked candidate gets a full distance anyway, so
            # verify the whole list in one (kernelizable) batch.
            rids = [rid for rid, _ in ranked]
            hits = [
                Neighbor(d, rid)
                for d, rid in zip(self._candidate_distances(record, rids), rids)
            ]
            hits.sort()
            return hits[:k]
        hits: list[Neighbor] = []
        cutoff: float | None = None
        for rid, shared in ranked:
            d = self._verify(
                record, rid, cutoff, shared=shared + skipped, query_grams=n_grams
            )
            if d is None:
                continue
            insort(hits, Neighbor(d, rid))
            if len(hits) >= k:
                # Ties at the k-th distance are still admitted by the
                # inclusive bound in _verify; the final slice keeps the
                # rid-ordered winners.
                cutoff = hits[k - 1].distance
        return hits[:k]

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        counts, skipped, n_grams = self._candidates(record)
        if self.within_budget is not None:
            candidates = counts.most_common(self.within_budget)
        else:
            candidates = list(counts.items())
        self._account_candidates(record, len(candidates))
        if not self._edit_fast_path:
            rids = [rid for rid, _ in candidates]
            hits = [
                Neighbor(d, rid)
                for d, rid in zip(self._candidate_distances(record, rids), rids)
                if d < radius or (inclusive and d == radius)
            ]
            hits.sort()
            return hits
        hits = []
        for rid, shared in candidates:
            d = self._verify(
                record, rid, radius, shared=shared + skipped, query_grams=n_grams
            )
            if d is None:
                continue
            if d < radius or (inclusive and d == radius):
                hits.append(Neighbor(d, rid))
        hits.sort()
        return hits
