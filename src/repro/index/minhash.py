"""MinHash / LSH index over token sets.

A locality-sensitive candidate generator in the family of probabilistic
indexes the paper cites for cosine / fuzzy match similarity.  Records
are signed with ``n_hashes`` min-hashes of their word-token sets; the
signature is cut into bands, and records colliding in any band become
candidates, which are then verified with the actual distance function.

The banding scheme makes candidate probability an S-curve in Jaccard
similarity; with the defaults (64 hashes, 16 bands of 4 rows) pairs with
token Jaccard above ~0.4 are found with high probability, which is the
regime fuzzy duplicates live in.
"""

from __future__ import annotations

import hashlib

from repro.data.schema import Record
from repro.distances.tokens import qgrams, tokenize
from repro.index.base import Neighbor, NNIndex

__all__ = ["MinHashIndex"]

_PRIME = (1 << 61) - 1


def _stable_hash(token: str, salt: int) -> int:
    """Deterministic 64-bit hash of ``token`` under ``salt``."""
    digest = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class MinHashIndex(NNIndex):
    """LSH candidate index verified against the true distance function.

    Parameters
    ----------
    n_hashes:
        Signature length; must be divisible by ``n_bands``.
    n_bands:
        Number of LSH bands.
    use_qgrams:
        Sign q-gram sets instead of word-token sets.  Q-grams make the
        index robust to in-token typos at the cost of larger sets.
    exhaustive_fallback:
        Scan the remainder when a query surfaces fewer candidates than
        the requested ``k``.
    """

    def __init__(
        self,
        n_hashes: int = 64,
        n_bands: int = 16,
        use_qgrams: bool = False,
        q: int = 3,
        exhaustive_fallback: bool = True,
    ):
        super().__init__()
        if n_hashes % n_bands != 0:
            raise ValueError("n_hashes must be divisible by n_bands")
        self.n_hashes = n_hashes
        self.n_bands = n_bands
        self.rows_per_band = n_hashes // n_bands
        self.use_qgrams = use_qgrams
        self.q = q
        self.exhaustive_fallback = exhaustive_fallback
        self.name = f"minhash{n_hashes}x{n_bands}"
        self._signatures: dict[int, tuple[int, ...]] = {}
        self._buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}

    def _elements(self, record: Record) -> list[str]:
        text = record.text()
        return qgrams(text, q=self.q) if self.use_qgrams else tokenize(text)

    def _signature(self, record: Record) -> tuple[int, ...]:
        elements = set(self._elements(record))
        if not elements:
            return tuple([_PRIME] * self.n_hashes)
        return tuple(
            min(_stable_hash(element, salt) for element in elements)
            for salt in range(self.n_hashes)
        )

    def _build(self) -> None:
        relation, _ = self._checked()
        self._signatures = {}
        self._buckets = {}
        for record in relation:
            signature = self._signature(record)
            self._signatures[record.rid] = signature
            for band in range(self.n_bands):
                lo = band * self.rows_per_band
                key = (band, signature[lo : lo + self.rows_per_band])
                self._buckets.setdefault(key, []).append(record.rid)

    def _candidates(self, record: Record) -> list[int]:
        signature = self._signatures.get(record.rid)
        if signature is None:
            signature = self._signature(record)
        seen: set[int] = set()
        for band in range(self.n_bands):
            lo = band * self.rows_per_band
            key = (band, signature[lo : lo + self.rows_per_band])
            for rid in self._buckets.get(key, ()):
                if rid != record.rid:
                    seen.add(rid)
        return sorted(seen)

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        candidates = self._candidates(record)
        if len(candidates) < k and self.exhaustive_fallback:
            extra = set(candidates)
            extra.add(record.rid)
            candidates = candidates + [
                r.rid for r in relation if r.rid not in extra
            ]
        hits = [
            Neighbor(self._evaluate(record, relation.get(rid)), rid)
            for rid in candidates
        ]
        hits.sort()
        return hits[:k]

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        hits = []
        for rid in self._candidates(record):
            d = self._evaluate(record, relation.get(rid))
            if d < radius or (inclusive and d == radius):
                hits.append(Neighbor(d, rid))
        hits.sort()
        return hits
