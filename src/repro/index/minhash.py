"""MinHash / LSH index over token sets.

A locality-sensitive candidate generator in the family of probabilistic
indexes the paper cites for cosine / fuzzy match similarity.  Records
are signed with ``n_hashes`` min-hashes of their word-token sets; the
signature is cut into bands, and records colliding in any band become
candidates, which are then verified with the actual distance function.

The banding scheme makes candidate probability an S-curve in Jaccard
similarity; with the defaults (64 hashes, 16 bands of 4 rows) pairs with
token Jaccard above ~0.4 are found with high probability, which is the
regime fuzzy duplicates live in.

Cost model
----------
Signatures *and* per-record band keys are computed exactly once, in
``_build``; a lookup for an in-relation record is ``n_bands`` dict
probes plus one verification per surfaced candidate.  Batch queries
(``knn_batch`` / ``within_batch`` / ``phase1_batch``) additionally run
inside the base-class batch scope, so every unordered candidate pair is
evaluated at most once per batch and the NG range counts that follow in
Phase 1 are served from the shared pair cache.  See
``docs/performance.md`` ("Choosing an index") for the knobs.
"""

from __future__ import annotations

import hashlib

from repro.data.schema import Record
from repro.distances.tokens import qgrams, tokenize
from repro.index.base import Neighbor, NNIndex

__all__ = ["MinHashIndex", "minhash_signature", "band_keys"]

_PRIME = (1 << 61) - 1


def _stable_hash(token: str, salt: int) -> int:
    """Deterministic 64-bit hash of ``token`` under ``salt``."""
    digest = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def minhash_signature(elements: set[str], n_hashes: int) -> tuple[int, ...]:
    """The ``n_hashes``-wide min-hash signature of a token/q-gram set.

    Stable across processes and sessions (keyed blake2b, no process
    salt), which is what lets the persistent postings index
    (:mod:`repro.index.postings`) restore logged signatures instead of
    re-hashing on a warm restart.  Empty sets sign as all-``_PRIME``.
    """
    if not elements:
        return tuple([_PRIME] * n_hashes)
    return tuple(
        min(_stable_hash(element, salt) for element in elements)
        for salt in range(n_hashes)
    )


def band_keys(
    signature: tuple[int, ...], n_bands: int
) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Cut a signature into its ``n_bands`` LSH bucket keys."""
    rows = len(signature) // n_bands
    return tuple(
        (band, signature[band * rows : band * rows + rows])
        for band in range(n_bands)
    )


class MinHashIndex(NNIndex):
    """LSH candidate index verified against the true distance function.

    Parameters
    ----------
    n_hashes:
        Signature length; must be divisible by ``n_bands``.
    n_bands:
        Number of LSH bands.  More bands (fewer rows per band) lower
        the collision threshold of the S-curve: candidates multiply and
        recall rises at the cost of more verifications.
    use_qgrams:
        Sign q-gram sets instead of word-token sets.  Q-grams make the
        index robust to in-token typos at the cost of larger sets.
    exhaustive_fallback:
        Scan the remainder when a query surfaces fewer candidates than
        the requested ``k``.
    """

    def __init__(
        self,
        n_hashes: int = 64,
        n_bands: int = 16,
        use_qgrams: bool = False,
        q: int = 3,
        exhaustive_fallback: bool = True,
    ):
        super().__init__()
        if n_hashes % n_bands != 0:
            raise ValueError("n_hashes must be divisible by n_bands")
        self.n_hashes = n_hashes
        self.n_bands = n_bands
        self.rows_per_band = n_hashes // n_bands
        self.use_qgrams = use_qgrams
        self.q = q
        self.exhaustive_fallback = exhaustive_fallback
        self.name = f"minhash{n_hashes}x{n_bands}"
        self._signatures: dict[int, tuple[int, ...]] = {}
        #: rid -> its ``n_bands`` banded sub-signature keys, precomputed
        #: in ``_build`` so lookups never re-slice (let alone re-hash)
        #: a signature.
        self._band_keys: dict[int, tuple[tuple[int, tuple[int, ...]], ...]] = {}
        self._buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}

    def _elements(self, record: Record) -> list[str]:
        text = record.text()
        return qgrams(text, q=self.q) if self.use_qgrams else tokenize(text)

    def _signature(self, record: Record) -> tuple[int, ...]:
        return minhash_signature(set(self._elements(record)), self.n_hashes)

    def _keys_of(self, signature: tuple[int, ...]) -> tuple:
        return band_keys(signature, self.n_bands)

    def _build(self) -> None:
        """Sign every record and bucket it — once, idempotently.

        Rebuilding (same or different relation) starts from empty
        structures, so a second ``build`` never duplicates bucket
        entries, and no lookup ever recomputes a signature or band key
        for an in-relation record.
        """
        relation, _ = self._checked()
        self._signatures = {}
        self._band_keys = {}
        self._buckets = {}
        for record in relation:
            signature = self._signature(record)
            keys = self._keys_of(signature)
            self._signatures[record.rid] = signature
            self._band_keys[record.rid] = keys
            for key in keys:
                self._buckets.setdefault(key, []).append(record.rid)

    def _candidates(self, record: Record) -> list[int]:
        keys = self._band_keys.get(record.rid)
        if keys is None:
            # Out-of-relation probe: sign on the fly (the only case
            # where a signature is ever computed outside _build).
            keys = self._keys_of(self._signature(record))
        seen: set[int] = set()
        for key in keys:
            for rid in self._buckets.get(key, ()):
                if rid != record.rid:
                    seen.add(rid)
        return sorted(seen)

    def _final_candidates(self, record: Record, k: int | None) -> list[int]:
        """Candidate rids for one query, with pruning accounting.

        ``candidates_generated`` counts the pairs handed to
        verification (including any exhaustive-fallback extension);
        ``evaluations_pruned`` counts the pairs never examined at all.
        """
        relation, _ = self._checked()
        candidates = self._candidates(record)
        if (
            k is not None
            and len(candidates) < k
            and self.exhaustive_fallback
        ):
            extra = set(candidates)
            extra.add(record.rid)
            candidates = candidates + [
                r.rid for r in relation if r.rid not in extra
            ]
        n_others = len(relation) - (1 if record.rid in relation else 0)
        self.candidates_generated += len(candidates)
        self.evaluations_pruned += n_others - len(candidates)
        return candidates

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        candidates = self._final_candidates(record, k)
        hits = [
            Neighbor(d, rid)
            for d, rid in zip(
                self._candidate_distances(record, candidates), candidates
            )
        ]
        hits.sort()
        return hits[:k]

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        candidates = self._final_candidates(record, None)
        hits = [
            Neighbor(d, rid)
            for d, rid in zip(
                self._candidate_distances(record, candidates), candidates
            )
            if d < radius or (inclusive and d == radius)
        ]
        hits.sort()
        return hits
