"""MinHash / LSH index over token sets.

A locality-sensitive candidate generator in the family of probabilistic
indexes the paper cites for cosine / fuzzy match similarity.  Records
are signed with ``n_hashes`` min-hashes of their word-token sets; the
signature is cut into bands, and records colliding in any band become
candidates, which are then verified with the actual distance function.

The banding scheme makes candidate probability an S-curve in Jaccard
similarity; with the defaults (64 hashes, 16 bands of 4 rows) pairs with
token Jaccard above ~0.4 are found with high probability, which is the
regime fuzzy duplicates live in.

Cost model
----------
Signatures *and* per-record band keys are computed exactly once, in
``_build``; a lookup for an in-relation record is ``n_bands`` dict
probes plus one verification per surfaced candidate.  Batch queries
(``knn_batch`` / ``within_batch`` / ``phase1_batch``) additionally run
inside the base-class batch scope, so every unordered candidate pair is
evaluated at most once per batch and the NG range counts that follow in
Phase 1 are served from the shared pair cache.  See
``docs/performance.md`` ("Choosing an index") for the knobs.
"""

from __future__ import annotations

import hashlib
import time

from repro.data.schema import Record
from repro.distances.kernels.compat import numpy_or_none
from repro.distances.tokens import qgrams, tokenize
from repro.index.base import Neighbor, NNIndex
from repro.index.signatures import (
    RelationSignatures,
    SignatureFactory,
    group_band_buckets,
)

__all__ = ["MinHashIndex", "minhash_signature", "band_keys"]

_PRIME = (1 << 61) - 1


def _stable_hash(token: str, salt: int) -> int:
    """Deterministic 64-bit hash of ``token`` under ``salt``."""
    digest = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def minhash_signature(elements: set[str], n_hashes: int) -> tuple[int, ...]:
    """The ``n_hashes``-wide min-hash signature of a token/q-gram set.

    Stable across processes and sessions (keyed blake2b, no process
    salt), which is what lets the persistent postings index
    (:mod:`repro.index.postings`) restore logged signatures instead of
    re-hashing on a warm restart.  Empty sets sign as all-``_PRIME``.
    """
    if not elements:
        return tuple([_PRIME] * n_hashes)
    return tuple(
        min(_stable_hash(element, salt) for element in elements)
        for salt in range(n_hashes)
    )


def band_keys(
    signature: tuple[int, ...], n_bands: int
) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Cut a signature into its ``n_bands`` LSH bucket keys."""
    rows = len(signature) // n_bands
    return tuple(
        (band, signature[band * rows : band * rows + rows])
        for band in range(n_bands)
    )


class MinHashIndex(NNIndex):
    """LSH candidate index verified against the true distance function.

    Parameters
    ----------
    n_hashes:
        Signature length; must be divisible by ``n_bands``.
    n_bands:
        Number of LSH bands.  More bands (fewer rows per band) lower
        the collision threshold of the S-curve: candidates multiply and
        recall rises at the cost of more verifications.
    use_qgrams:
        Sign q-gram sets instead of word-token sets.  Q-grams make the
        index robust to in-token typos at the cost of larger sets.
    exhaustive_fallback:
        Scan the remainder when a query surfaces fewer candidates than
        the requested ``k``.
    """

    def __init__(
        self,
        n_hashes: int = 64,
        n_bands: int = 16,
        use_qgrams: bool = False,
        q: int = 3,
        exhaustive_fallback: bool = True,
    ):
        super().__init__()
        if n_hashes % n_bands != 0:
            raise ValueError("n_hashes must be divisible by n_bands")
        self.n_hashes = n_hashes
        self.n_bands = n_bands
        self.rows_per_band = n_hashes // n_bands
        self.use_qgrams = use_qgrams
        self.q = q
        self.exhaustive_fallback = exhaustive_fallback
        self.name = f"minhash{n_hashes}x{n_bands}"
        self._signatures: dict[int, tuple[int, ...]] = {}
        #: rid -> its ``n_bands`` banded sub-signature keys, precomputed
        #: in ``_build`` so lookups never re-slice (let alone re-hash)
        #: a signature.
        self._band_keys: dict[int, tuple[tuple[int, tuple[int, ...]], ...]] = {}
        self._buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}
        #: rid -> relation-order row, plus per-band row -> bucket member
        #: lists (aliases of ``_buckets`` values): the hash-free probe
        #: path for in-relation lookups.
        self._row_of: dict[int, int] = {}
        self._row_buckets: list[list[list[int]]] = []
        #: numpy twin of ``_row_buckets`` (int64 member views) when the
        #: grouping ran on the numpy backend: probes union bands with
        #: ``np.unique`` instead of per-member python set inserts.
        self._row_bucket_arrays = None
        #: Relation rids in relation order (numpy int64 when available),
        #: backing the vectorized exhaustive-fallback extension.
        self._rid_array = None
        self._relation_signatures: RelationSignatures | None = None

    def __getstate__(self) -> dict:
        # The columnar signature batch (with its (n, n_hashes) matrix)
        # exists to be shared with shard planning in the parent process;
        # lookups never touch it, so process-pool workers skip the copy.
        state = super().__getstate__()
        state["_relation_signatures"] = None
        return state

    def _elements(self, record: Record) -> list[str]:
        text = record.text()
        return qgrams(text, q=self.q) if self.use_qgrams else tokenize(text)

    def _signature(self, record: Record) -> tuple[int, ...]:
        return minhash_signature(set(self._elements(record)), self.n_hashes)

    def _keys_of(self, signature: tuple[int, ...]) -> tuple:
        return band_keys(signature, self.n_bands)

    def _build(self) -> None:
        """Sign every record and bucket it — once, idempotently.

        Rebuilding (same or different relation) starts from empty
        structures, so a second ``build`` never duplicates bucket
        entries, and no lookup ever recomputes a signature or band key
        for an in-relation record.

        Signing runs through the columnar
        :class:`~repro.index.signatures.SignatureFactory` (vocabulary
        hashing + min-gather) on the backend selected by
        ``kernel_mode``; bucketing through
        :func:`~repro.index.signatures.group_band_buckets`.  Both are
        bit-identical to the scalar :func:`minhash_signature` /
        :func:`band_keys` path, and the classic ``_signatures`` /
        ``_band_keys`` / ``_buckets`` views are kept for compatibility
        (they alias the grouping's shared key tuples and member lists).
        Build wall time lands in ``substage_seconds`` under
        ``tokenize`` / ``sign`` / ``bucket``.
        """
        relation, _ = self._checked()
        started = time.perf_counter()
        records = {record.rid: record for record in relation}
        # The corpus scan (possibly through the buffer pool) is input
        # materialization for token-set extraction.
        self._credit_substage("tokenize", time.perf_counter() - started)
        factory = SignatureFactory(self.n_hashes, backend=self.kernel_mode)
        signatures = factory.sign_records(
            list(records), lambda rid: self._elements(records[rid])
        )
        grouping = group_band_buckets(signatures, self.n_bands)
        started = time.perf_counter()
        rids = signatures.rids
        self._signatures = dict(zip(rids, signatures.tuples))
        self._band_keys = dict(zip(rids, grouping.row_keys))
        self._buckets = grouping.buckets
        self._row_of = {rid: i for i, rid in enumerate(rids)}
        self._row_buckets = grouping.row_buckets
        self._row_bucket_arrays = grouping.row_bucket_arrays
        np = numpy_or_none()
        self._rid_array = (
            np.asarray(rids, dtype=np.int64) if np is not None else None
        )
        self._relation_signatures = signatures
        self._credit_substage("tokenize", signatures.timings.get("tokenize", 0.0))
        self._credit_substage("sign", signatures.timings.get("sign", 0.0))
        self._credit_substage(
            "bucket", grouping.seconds + (time.perf_counter() - started)
        )

    def relation_signatures(self) -> RelationSignatures | None:
        """The build's signature batch, shareable with shard planning.

        ``None`` when the index signs q-gram sets (shard planning signs
        word-token sets) or has not been built.  Callers must still
        check :meth:`RelationSignatures.matches` against their own rid
        list and signature width.
        """
        if self.use_qgrams:
            return None
        return self._relation_signatures

    def _candidates(self, record: Record):
        """Sorted candidate rids: ``list[int]``, or int64 array on the
        numpy probe path (same rids in the same ascending order)."""
        row = self._row_of.get(record.rid)
        seen: set[int] = set()
        if row is not None:
            arrays = self._row_bucket_arrays
            if arrays is not None:
                # In-relation numpy probe: union the bands' member
                # views with one C-level sort instead of per-member
                # python set inserts.
                np = numpy_or_none()
                merged = np.unique(
                    np.concatenate([band_rows[row] for band_rows in arrays])
                )
                return merged[merged != record.rid]
            # In-relation probe: no hashing, no key lookups — each
            # band's bucket member list is already resolved per row.
            for band_rows in self._row_buckets:
                seen.update(band_rows[row])
            seen.discard(record.rid)
        else:
            # Out-of-relation probe: sign on the fly (the only case
            # where a signature is ever computed outside _build).
            for key in self._keys_of(self._signature(record)):
                seen.update(self._buckets.get(key, ()))
            seen.discard(record.rid)
        return sorted(seen)

    def _fallback_rest(self, record: Record, candidates: list[int]) -> list[int]:
        """Relation rids not already surfaced, in relation order."""
        if self._rid_array is not None:
            np = numpy_or_none()
            if np is not None:
                exclude = np.asarray(
                    candidates + [record.rid], dtype=np.int64
                )
                mask = np.isin(self._rid_array, exclude)
                return self._rid_array[~mask].tolist()
        relation, _ = self._checked()
        extra = set(candidates)
        extra.add(record.rid)
        return [r.rid for r in relation if r.rid not in extra]

    def _final_candidates(self, record: Record, k: int | None) -> list[int]:
        """Candidate rids for one query, with pruning accounting.

        ``candidates_generated`` counts the pairs handed to
        verification (including any exhaustive-fallback extension);
        ``evaluations_pruned`` counts the pairs never examined at all.
        Wall time is credited to the ``candidates`` sub-stage.
        """
        started = time.perf_counter()
        try:
            relation, _ = self._checked()
            candidates = self._candidates(record)
            if (
                k is not None
                and len(candidates) < k
                and self.exhaustive_fallback
            ):
                if not isinstance(candidates, list):
                    candidates = candidates.tolist()
                candidates = candidates + self._fallback_rest(
                    record, candidates
                )
            n_others = len(relation) - (1 if record.rid in relation else 0)
            self.candidates_generated += len(candidates)
            self.evaluations_pruned += n_others - len(candidates)
            return candidates
        finally:
            self._credit_substage(
                "candidates", time.perf_counter() - started
            )

    def knn(self, record: Record, k: int) -> list[Neighbor]:
        relation, _ = self._checked()
        if k <= 0 or len(relation) <= 1:
            return []
        candidates = self._final_candidates(record, k)
        hits = self._select_neighbors(record, candidates, k=k)
        if hits is not None:
            return hits
        if not isinstance(candidates, list):
            candidates = candidates.tolist()
        hits = [
            Neighbor(d, rid)
            for d, rid in zip(
                self._candidate_distances(record, candidates), candidates
            )
        ]
        hits.sort()
        return hits[:k]

    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        relation, _ = self._checked()
        candidates = self._final_candidates(record, None)
        hits = self._select_neighbors(
            record, candidates, radius=radius, inclusive=inclusive
        )
        if hits is not None:
            return hits
        if not isinstance(candidates, list):
            candidates = candidates.tolist()
        hits = [
            Neighbor(d, rid)
            for d, rid in zip(
                self._candidate_distances(record, candidates), candidates
            )
            if d < radius or (inclusive and d == radius)
        ]
        hits.sort()
        return hits
