"""Nearest-neighbor index protocol.

Phase 1 of the DE algorithm assumes "the availability of an index for
efficiently answering: for any given tuple v in R, fetch its nearest
neighbors" (paper section 4.1).  The paper uses probabilistic indexes
for edit distance / fms and *treats them as exact*; we follow suit and
validate approximation quality against :class:`BruteForceIndex`
(benchmark A4).

The protocol supports the two query shapes Phase 1 needs:

- ``knn(record, k)`` — the k nearest other records (DE_S);
- ``within(record, radius)`` — all other records with distance below
  ``radius`` (DE_D);

plus :meth:`NNIndex.neighborhood_growth`, the paper's ``ng(v)``: the
number of tuples (including ``v`` itself) within a sphere of radius
``p * nn(v)``, with ``p = 2`` fixed in the paper.

Ordering and ties
-----------------
Neighbors are always ordered by ``(distance, rid)``.  The deterministic
rid tie-break keeps DE solutions unique even though real string data
violates the paper's distinct-distances assumption.
"""

from __future__ import annotations

import abc
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.data.schema import Record, Relation
from repro.distances.base import DistanceFunction

__all__ = ["Neighbor", "NNIndex"]


@dataclass(frozen=True, slots=True, order=True)
class Neighbor:
    """A neighbor hit: distance first so tuples sort by proximity."""

    distance: float
    rid: int


class NNIndex(abc.ABC):
    """Index answering k-NN and range queries under a distance function."""

    #: Human-readable name used in reports.
    name: str = "index"

    def __init__(self) -> None:
        self.relation: Relation | None = None
        self.distance: DistanceFunction | None = None
        #: Number of candidate distance evaluations performed (for cost
        #: accounting in benchmarks).
        self.evaluations = 0
        #: Distance computations spent constructing the index itself
        #: (pivot tables, BK-tree inserts); zero for structure-free
        #: indexes.  Reported separately so the bench matrix can charge
        #: each index its honest total cost.
        self.build_evaluations = 0
        #: Candidate (query, record) pairs surfaced for verification.
        self.candidates_generated = 0
        #: Pairs excluded without any distance computation (bucket
        #: misses, count-filter rejects, triangle-inequality prunes,
        #: memo/cache hits that replaced an evaluation).
        self.evaluations_pruned = 0
        #: Shared pair-cache accounting, mirrored by ``Phase1Stats``.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Pair distances served by a vectorized batch kernel.  Kernel
        #: batches bypass both ``evaluations`` and the pair cache, so
        #: this is the separate ledger that keeps totals reconcilable.
        self.kernel_evaluations = 0
        #: Kernel selection: "python" (never), "auto" (numpy kernels
        #: when available), "numpy" (required).  Scalar by default so a
        #: bare ``build()`` keeps exact historical counter behavior;
        #: the run layer opts in via :meth:`enable_kernel`.
        self.kernel_mode = "python"
        #: Phase-1 sub-stage wall times, accumulated by implementations:
        #: build-side ``tokenize`` / ``sign`` / ``bucket`` and lookup-side
        #: ``candidates`` / ``verify``.  Mirrored (as deltas) into
        #: ``Phase1Stats.substage_seconds`` by the Phase-1 drivers.
        self.substage_seconds: dict[str, float] = {}
        self._kernel = None
        #: Canonical-direction pair cache keyed by ``(min_rid, max_rid)``.
        #: Batch scopes fill it; per-query calls only consult it, so the
        #: plain sequential path stays the honest O(1)-memory baseline.
        self._pair_cache: dict[tuple[int, int], float] = {}
        self._batch_depth = 0
        self._batch_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks do not pickle; process-pool workers re-create their own.
        # Batch kernels hold a live numpy module reference, so they are
        # dropped too and re-resolved from ``kernel_mode`` on restore.
        state = self.__dict__.copy()
        state["_batch_lock"] = None
        state["_kernel"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._batch_lock = threading.Lock()
        if self.relation is not None and self.distance is not None:
            self._resolve_kernel()

    def build(self, relation: Relation, distance: DistanceFunction) -> None:
        """Index ``relation`` under ``distance`` (calls ``prepare``).

        ``distance.prepare`` (corpus statistics) and the batch-kernel
        construction (columnar token vectors) both walk the corpus into
        token-derived structures, so their wall time is credited to the
        ``tokenize`` sub-stage alongside the index's own token-set
        extraction.
        """
        started = time.perf_counter()
        distance.prepare(relation)
        self._credit_substage("tokenize", time.perf_counter() - started)
        self.relation = relation
        self.distance = distance
        # Cached pairs are keyed by rid and scoped to one relation;
        # stale entries across rebuilds would silently answer with
        # another relation's distances.
        self._pair_cache.clear()
        self._build()
        started = time.perf_counter()
        self._resolve_kernel()
        self._credit_substage("tokenize", time.perf_counter() - started)

    def enable_kernel(self, mode: str) -> None:
        """Select the batch-kernel mode (``python``/``auto``/``numpy``).

        Takes effect immediately when the index is already built,
        otherwise at the next :meth:`build`.  ``numpy`` raises
        :class:`~repro.distances.kernels.KernelUnavailable` when numpy
        is missing; a distance function without a kernel implementation
        keeps the scalar path under every mode.
        """
        if mode not in ("python", "auto", "numpy"):
            raise ValueError(f"unknown kernel mode: {mode!r}")
        self.kernel_mode = mode
        if self.relation is not None and self.distance is not None:
            self._resolve_kernel()

    def _resolve_kernel(self) -> None:
        """(Re)build the batch kernel according to ``kernel_mode``."""
        self._kernel = None
        if self.kernel_mode == "python":
            return
        if self.relation is None or self.distance is None:
            return
        from repro.distances.kernels import KernelUnavailable, have_numpy

        try:
            self._kernel = self.distance.make_kernel(self.relation)
        except KernelUnavailable:
            if self.kernel_mode == "numpy" and not have_numpy():
                raise
            self._kernel = None

    @property
    def kernel_backend(self) -> str:
        """Backend actually answering batch queries ("python" = scalar)."""
        return self._kernel.backend if self._kernel is not None else "python"

    @abc.abstractmethod
    def _build(self) -> None:
        """Construct index structures; relation/distance are set."""

    @abc.abstractmethod
    def knn(self, record: Record, k: int) -> list[Neighbor]:
        """Return up to ``k`` nearest *other* records, sorted."""

    @abc.abstractmethod
    def within(
        self, record: Record, radius: float, inclusive: bool = False
    ) -> list[Neighbor]:
        """Return all other records with ``d < radius`` (or ``<=``), sorted."""

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------

    def knn_batch(self, records: "Sequence[Record]", k: int) -> list[list[Neighbor]]:
        """Answer :meth:`knn` for several records at once.

        The default runs the per-record loop inside a *batch scope*:
        indexes that route candidate verification through
        :meth:`_pair_distance` then evaluate each unordered pair at most
        once per batch (distance symmetry), with later probes of the
        same pair — including the NG range counts of
        :meth:`phase1_batch` — served from the shared pair cache.
        :class:`~repro.index.bruteforce.BruteForceIndex` overrides the
        batch methods entirely with a blocked all-pairs evaluation.
        Results are positionally aligned with ``records`` and identical
        to per-record :meth:`knn` calls.
        """
        with self._batch_scope():
            return [self.knn(record, k) for record in records]

    def within_batch(
        self, records: "Sequence[Record]", radius: float, inclusive: bool = False
    ) -> list[list[Neighbor]]:
        """Answer :meth:`within` for several records at once.

        Same contract as :meth:`knn_batch`: positionally aligned,
        result-identical to per-record calls, pair-cached per batch.
        """
        with self._batch_scope():
            return [self.within(record, radius, inclusive) for record in records]

    def phase1_batch(
        self,
        records: "Sequence[Record]",
        k: int | None = None,
        theta: float | None = None,
        p: float = 2.0,
        radius_fn: "Callable[[float], float] | None" = None,
    ) -> list[tuple[list[Neighbor], int]]:
        """Batched Phase-1 kernel: each record's cut neighbor list and NG.

        The query shape mirrors the DE cut specifications: ``k`` alone
        is the size cut (k nearest), ``theta`` alone the diameter cut
        (all within θ), both together the combined cut (the k nearest
        within θ).  Returns ``(neighbors, ng)`` per record, positionally
        aligned with ``records`` and identical to the per-record
        ``knn``/``within`` + :meth:`neighborhood_growth` sequence.  The
        default implementation is exactly that sequence; indexes with a
        blocked evaluation override it.
        """
        if k is None and theta is None:
            raise ValueError("phase1_batch needs k, theta, or both")
        results: list[tuple[list[Neighbor], int]] = []
        with self._batch_scope():
            for record in records:
                if theta is not None:
                    neighbors = self.within(record, theta)
                    if k is not None:
                        neighbors = neighbors[:k]
                else:
                    assert k is not None
                    neighbors = self.knn(record, k)
                nn_distance = neighbors[0].distance if neighbors else None
                ng = self.neighborhood_growth(
                    record, p=p, nn_distance=nn_distance, radius_fn=radius_fn
                )
                results.append((neighbors, ng))
        return results

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------

    def nn_distance(self, record: Record) -> float:
        """Return ``nn(v)``: the distance to the nearest other record.

        Returns ``inf`` for a singleton relation.
        """
        hits = self.knn(record, 1)
        if not hits:
            return float("inf")
        return hits[0].distance

    def neighborhood_growth(
        self,
        record: Record,
        p: float = 2.0,
        nn_distance: float | None = None,
        radius_fn: "Callable[[float], float] | None" = None,
    ) -> int:
        """Return ``ng(v) = |{u : d(u, v) < p * nn(v)}|`` (self included).

        ``nn_distance`` may be supplied by callers that already hold the
        record's NN list (Phase 1 does), saving a redundant 1-NN query.
        ``radius_fn`` generalizes the linear ``p * nn(v)`` neighborhood
        (paper section 2 allows non-linear functions); when given it
        overrides ``p``.  With exact duplicates present (``nn(v) == 0``,
        outside the paper's distinct-distances assumption) the
        zero-distance records are counted as the neighborhood, which
        preserves the intent that immediate-vicinity tuples contribute
        to growth.
        """
        nn_d = self.nn_distance(record) if nn_distance is None else nn_distance
        if nn_d == float("inf"):
            return 1
        if nn_d == 0.0:
            return 1 + len(self.within(record, 0.0, inclusive=True))
        radius = radius_fn(nn_d) if radius_fn is not None else p * nn_d
        return 1 + len(self.within(record, radius))

    # ------------------------------------------------------------------
    # Helpers for implementations
    # ------------------------------------------------------------------

    def _checked(self) -> tuple[Relation, DistanceFunction]:
        if self.relation is None or self.distance is None:
            raise RuntimeError(f"{type(self).__name__}.build() has not been called")
        return self.relation, self.distance

    def _evaluate(self, a: Record, b: Record) -> float:
        self.evaluations += 1
        assert self.distance is not None
        return self.distance.distance(a, b)

    # ------------------------------------------------------------------
    # Batch scope and the shared canonical pair cache
    # ------------------------------------------------------------------

    @contextmanager
    def _batch_scope(self) -> Iterator[None]:
        """Mark a batch evaluation in progress.

        Inside the scope :meth:`_pair_distance` *fills* the shared pair
        cache (outside it only consults), so a pair probed from both
        endpoints — or probed again by the NG range count — is evaluated
        once per batch.  Scopes nest and may be entered concurrently by
        thread-pool chunk workers; batch-scoped scratch state is
        released when the outermost scope exits.
        """
        with self._batch_lock:
            self._batch_depth += 1
        try:
            yield
        finally:
            with self._batch_lock:
                self._batch_depth -= 1
                if self._batch_depth == 0:
                    self._on_batch_exit()

    def _on_batch_exit(self) -> None:
        """Hook: drop per-batch scratch state (see ``BKTreeIndex``)."""

    def _pair_distance(self, record: Record, other: Record) -> float:
        """Evaluate ``d(record, other)`` through the shared pair cache.

        The pair is always evaluated in canonical (lower rid first)
        direction: the distance protocol is symmetric, but float
        accumulation inside real distance functions need not be
        bit-symmetric, and a fixed direction keeps batch and per-query
        answers bit-identical no matter which side touches a pair first.
        """
        rid, oid = record.rid, other.rid
        key = (rid, oid) if rid <= oid else (oid, rid)
        cached = self._pair_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        d = (
            self._evaluate(record, other)
            if rid <= oid
            else self._evaluate(other, record)
        )
        if self._batch_depth:
            self._pair_cache[key] = d
        return d

    def _credit_substage(self, name: str, seconds: float) -> None:
        """Accumulate wall time under one Phase-1 sub-stage."""
        self.substage_seconds[name] = (
            self.substage_seconds.get(name, 0.0) + seconds
        )

    def _candidate_distances(
        self, record: Record, rids: "Sequence[int]"
    ) -> list[float]:
        """Verify a candidate list: distances from ``record`` to ``rids``.

        The batch-kernel route (when enabled and when the whole list is
        in-relation) answers all candidates in one vectorized pass,
        ledgered under ``kernel_evaluations``; otherwise each pair goes
        through :meth:`_pair_distance` exactly as before.  Both routes
        return bit-identical values, so approximate indexes may take
        either without affecting results.  Kernels whose row evaluation
        is O(n) advertise ``pairs_min`` to skip tiny candidate lists.
        """
        started = time.perf_counter()
        try:
            kernel = self._kernel
            if (
                kernel is not None
                and len(rids) >= getattr(kernel, "pairs_min", 1)
                and record.rid in kernel
                and all(rid in kernel for rid in rids)
            ):
                self.kernel_evaluations += len(rids)
                return kernel.pairs(record.rid, rids)
            relation, _ = self._checked()
            return [self._pair_distance(record, relation.get(rid)) for rid in rids]
        finally:
            self._credit_substage("verify", time.perf_counter() - started)

    def _select_neighbors(
        self,
        record: Record,
        rids: "Sequence[int]",
        k: int | None = None,
        radius: float | None = None,
        inclusive: bool = False,
    ) -> "list[Neighbor] | None":
        """Kernel-vectorized verify + select for one candidate list.

        Computes all candidate distances through the kernel's array
        path, filters by radius, and ranks by ``(distance, rid)`` with a
        stable ``lexsort`` — the exact total order ``Neighbor`` tuples
        sort by, so the result is bit-identical to the scalar
        build-``Neighbor``-objects-then-sort route while skipping
        millions of python-level comparisons on large candidate lists.
        Returns ``None`` when the kernel/numpy path cannot serve the
        query (caller falls back to the scalar path).
        """
        kernel = self._kernel
        if kernel is None or not hasattr(kernel, "pairs_array"):
            return None
        if len(rids) < getattr(kernel, "pairs_min", 1):
            return None
        from repro.distances.kernels.compat import numpy_or_none

        np = numpy_or_none()
        if np is None:  # pragma: no cover - kernels imply numpy
            return None
        started = time.perf_counter()
        try:
            candidates = np.asarray(rids, dtype=np.int64)
            query_row = None
            rows = None
            resolver = getattr(kernel, "resolve_rows", None)
            if resolver is not None:
                # One bulk membership-check-plus-row-mapping instead of
                # a python ``in`` probe per candidate.
                resolved = resolver(record.rid, candidates)
                if resolved is None:
                    return None
                query_row, rows = resolved
            elif record.rid not in kernel or not all(
                rid in kernel for rid in rids
            ):
                return None
            self.kernel_evaluations += len(rids)
            if rows is None:
                distances = kernel.pairs_array(record.rid, rids)
            else:
                distances = kernel.pairs_array(
                    record.rid, candidates, rows=rows, query_row=query_row
                )
            if radius is not None:
                # ``d < r or (inclusive and d == r)`` — distances are
                # clipped floats (never NaN), so ``<=`` is the same set.
                keep = (
                    distances <= radius if inclusive else distances < radius
                )
                distances = distances[keep]
                candidates = candidates[keep]
            order = np.lexsort((candidates, distances))
            if k is not None:
                order = order[:k]
            return [
                Neighbor(d, rid)
                for d, rid in zip(
                    distances[order].tolist(), candidates[order].tolist()
                )
            ]
        finally:
            self._credit_substage("verify", time.perf_counter() - started)
