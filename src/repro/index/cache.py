"""Paged posting storage for disk-resident indexes.

The paper's NN indexes "have a structure similar to inverted indexes in
IR, and are usually large" — i.e. disk-resident — which is why the
breadth-first lookup order pays off (section 4.1.1).
:class:`PagedPostingStore` lays posting lists out on pages of the shared
:class:`~repro.storage.pages.DiskManager` and reads them back through a
:class:`~repro.storage.buffer.BufferPool`, so index lookups produce the
buffer hit/miss statistics the Figure 8 benchmark reports.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from repro.storage.buffer import BufferPool

__all__ = ["PagedPostingStore"]


class PagedPostingStore:
    """Posting lists keyed by token, stored across buffer-managed pages.

    Keys inserted consecutively share pages (several short posting lists
    per page), so lookups of co-occurring tokens — as issued by similar
    query strings — exhibit the locality that BF ordering exploits.
    """

    def __init__(self, buffer_pool: BufferPool):
        self.buffer = buffer_pool
        # key -> list of (page_id, slot_lo, slot_hi) extents
        self._extents: dict[Hashable, list[tuple[int, int, int]]] = {}
        self._open_page_id: int | None = None

    def put(self, key: Hashable, postings: Sequence[Any]) -> None:
        """Store a posting list; later reads go through the buffer."""
        if key in self._extents:
            raise ValueError(f"posting list for {key!r} already stored")
        extents: list[tuple[int, int, int]] = []
        remaining = list(postings)
        while True:
            page = self._open_page()
            free = page.capacity - len(page.items)
            take = remaining[:free]
            if take:
                lo = len(page.items)
                page.items.extend(take)
                page.dirty = True
                extents.append((page.page_id, lo, lo + len(take)))
                remaining = remaining[len(take) :]
            if not remaining:
                break
            self._open_page_id = None  # force a fresh page
        self._extents[key] = extents

    def _open_page(self):
        if self._open_page_id is not None:
            page = self.buffer.disk.read(self._open_page_id)
            # Direct disk access during build; reads during queries go
            # through the buffer pool instead.
            self.buffer.disk.physical_reads -= 1
            if not page.full:
                return page
        page = self.buffer.disk.allocate()
        self._open_page_id = page.page_id
        return page

    def get(self, key: Hashable) -> list[Any]:
        """Read a posting list through the buffer pool."""
        extents = self._extents.get(key)
        if not extents:
            return []
        postings: list[Any] = []
        for page_id, lo, hi in extents:
            page = self.buffer.get(page_id)
            postings.extend(page.items[lo:hi])
        return postings

    def __contains__(self, key: Hashable) -> bool:
        return key in self._extents

    def keys(self) -> Iterable[Hashable]:
        return self._extents.keys()

    @property
    def n_keys(self) -> int:
        return len(self._extents)
