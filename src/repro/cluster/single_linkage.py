"""Threshold-based single-linkage baseline (the paper's ``thr``).

The predominant prior approach the paper compares against: induce the
*threshold graph* (edge between two tuples iff their distance is below a
global threshold θ) and report each maximal connected component as a
group of duplicates.  As in the paper's experimental setup, the graph
is induced from the output of the nearest-neighbor computation phase
(``NN_Reln``), so both systems see the same neighbor information.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.cluster.unionfind import DisjointSets
from repro.core.result import Partition
from repro.data.schema import Relation
from repro.distances.base import DistanceFunction
from repro.index.base import Neighbor

__all__ = [
    "threshold_edges",
    "single_linkage_partition",
    "single_linkage_from_nn",
    "single_linkage_brute",
]

Edge = tuple[int, int, float]


def threshold_edges(
    nn_lists: Mapping[int, Sequence[Neighbor]], theta: float
) -> list[Edge]:
    """Extract threshold-graph edges (d < θ) from NN lists.

    Each undirected edge is reported once, as ``(min_id, max_id, d)``.
    """
    edges: dict[tuple[int, int], float] = {}
    for rid, neighbors in nn_lists.items():
        for neighbor in neighbors:
            if neighbor.distance >= theta:
                continue
            key = (
                (rid, neighbor.rid) if rid < neighbor.rid else (neighbor.rid, rid)
            )
            known = edges.get(key)
            if known is None or neighbor.distance < known:
                edges[key] = neighbor.distance
        # NN lists are sorted, so we could early-exit; kept simple since
        # lists are short (K or radius-bounded).
    return [(a, b, d) for (a, b), d in sorted(edges.items())]


def single_linkage_partition(ids: Iterable[int], edges: Iterable[Edge]) -> Partition:
    """Connected components of the threshold graph as a partition."""
    sets = DisjointSets(ids)
    for a, b, _ in edges:
        sets.union(a, b)
    return Partition.from_groups(sets.groups())


def single_linkage_from_nn(
    ids: Iterable[int],
    nn_lists: Mapping[int, Sequence[Neighbor]],
    theta: float,
) -> Partition:
    """The ``thr`` baseline: components of the θ-threshold graph."""
    return single_linkage_partition(ids, threshold_edges(nn_lists, theta))


def single_linkage_brute(
    relation: Relation, distance: DistanceFunction, theta: float
) -> Partition:
    """Exact single-linkage over all pairs (reference for small inputs)."""
    distance.prepare(relation)
    sets = DisjointSets(relation.ids())
    records = list(relation)
    for i, a in enumerate(records):
        for b in records[i + 1 :]:
            if distance.distance(a, b) < theta:
                sets.union(a.rid, b.rid)
    return Partition.from_groups(sets.groups())
