"""Baseline clustering approaches the paper compares against.

``thr`` — global-threshold single linkage (connected components of the
threshold graph) — plus the star and clique componentization variants
and an MST-backed hierarchy for fast threshold sweeps.
"""

from repro.cluster.blocking import (
    blocking_recall,
    candidate_pairs_from_blocks,
    first_token_key,
    key_blocking,
    prefix_key,
    sorted_neighborhood,
)
from repro.cluster.clique import clique_partition
from repro.cluster.hierarchy import SingleLinkageHierarchy
from repro.cluster.single_linkage import (
    single_linkage_brute,
    single_linkage_from_nn,
    single_linkage_partition,
    threshold_edges,
)
from repro.cluster.star import star_partition
from repro.cluster.unionfind import DisjointSets

__all__ = [
    "DisjointSets",
    "threshold_edges",
    "single_linkage_partition",
    "single_linkage_from_nn",
    "single_linkage_brute",
    "SingleLinkageHierarchy",
    "star_partition",
    "clique_partition",
    "key_blocking",
    "sorted_neighborhood",
    "candidate_pairs_from_blocks",
    "blocking_recall",
    "first_token_key",
    "prefix_key",
]
