"""Greedy clique componentization of the threshold graph.

The strictest of the three componentization strategies the paper
mentions: a group is emitted only if its members are pairwise within
the threshold.  Exact minimum clique cover is NP-hard; we use the
standard greedy cover (repeatedly grow a maximal clique from the
lowest remaining id), which is deterministic and adequate for the tiny
components threshold graphs of duplicate data produce.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.single_linkage import Edge
from repro.core.result import Partition

__all__ = ["clique_partition"]


def clique_partition(ids: Iterable[int], edges: Iterable[Edge]) -> Partition:
    """Greedy clique cover of the threshold graph."""
    adjacency: dict[int, set[int]] = {rid: set() for rid in ids}
    for a, b, _ in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    remaining = set(adjacency)
    groups: list[list[int]] = []
    for seed in sorted(adjacency):
        if seed not in remaining:
            continue
        clique = [seed]
        candidates = sorted(adjacency[seed] & remaining)
        for candidate in candidates:
            if all(candidate in adjacency[member] for member in clique):
                clique.append(candidate)
        groups.append(sorted(clique))
        remaining -= set(clique)
    return Partition.from_groups(groups)
