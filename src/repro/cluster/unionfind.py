"""Disjoint-set (union-find) structure.

Substrate for connected-component extraction over the threshold graph
(the ``thr`` baseline) and for the single-linkage hierarchy.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["DisjointSets"]


class DisjointSets:
    """Union-find with path compression and union by size."""

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register an element as its own singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:  # path compression
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they differed."""
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return whether ``a`` and ``b`` are in the same set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def groups(self) -> list[list[Hashable]]:
        """Return all sets, each sorted, ordered by their first element."""
        by_root: dict[Hashable, list[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), []).append(element)
        result = [sorted(members) for members in by_root.values()]
        result.sort(key=lambda members: members[0])
        return result

    def set_size(self, element: Hashable) -> int:
        """Return the size of the set containing ``element``."""
        return self._size[self.find(element)]

    def __len__(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    def n_sets(self) -> int:
        """Number of disjoint sets."""
        return sum(1 for e in self._parent if self.find(e) == e)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent
