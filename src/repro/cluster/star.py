"""Star componentization of the threshold graph.

The paper notes (section 5) that "alternative methods for
componentizing the threshold graph into stars or cliques still return
similar results" because real duplicate groups are tiny.  This module
implements the star variant — repeatedly pick the highest-degree
remaining node as a star center and group it with its remaining
neighbors — so benchmark A3 can verify that claim.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.single_linkage import Edge
from repro.core.result import Partition

__all__ = ["star_partition"]


def star_partition(ids: Iterable[int], edges: Iterable[Edge]) -> Partition:
    """Greedy star cover of the threshold graph.

    Ties on degree are broken toward the smaller id, which makes the
    output deterministic.
    """
    adjacency: dict[int, set[int]] = {rid: set() for rid in ids}
    for a, b, _ in edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    remaining = set(adjacency)
    groups: list[list[int]] = []
    # Sort once by (-degree, id); stale entries are skipped and degrees
    # only shrink, so a full re-sort per pick is unnecessary for the
    # small components this runs on, but we recompute lazily for
    # determinism.
    while remaining:
        center = min(
            remaining,
            key=lambda rid: (-len(adjacency[rid] & remaining), rid),
        )
        members = (adjacency[center] & remaining) | {center}
        groups.append(sorted(members))
        remaining -= members
    return Partition.from_groups(groups)
