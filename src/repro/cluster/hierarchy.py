"""Single-linkage hierarchy via a minimum spanning tree.

Sweeping the global threshold θ (as the precision/recall benchmarks do)
would naively recompute connected components per θ.  Single-linkage
clusters at *every* threshold are determined by the minimum spanning
tree of the complete distance graph: the components of the θ-threshold
graph equal the components obtained by keeping MST edges with weight
below θ.  We build the MST once with Prim's algorithm (O(n²) distance
evaluations, no extra memory) and answer each θ with a union-find pass
over at most n - 1 edges.
"""

from __future__ import annotations

from repro.cluster.unionfind import DisjointSets
from repro.core.result import Partition
from repro.data.schema import Relation
from repro.distances.base import DistanceFunction

__all__ = ["SingleLinkageHierarchy"]


class SingleLinkageHierarchy:
    """MST-backed single-linkage clustering for fast θ sweeps."""

    def __init__(self, relation: Relation, distance: DistanceFunction):
        self.relation = relation
        self.distance = distance
        distance.prepare(relation)
        self.mst_edges: list[tuple[float, int, int]] = self._build_mst()

    def _build_mst(self) -> list[tuple[float, int, int]]:
        records = list(self.relation)
        n = len(records)
        if n <= 1:
            return []
        in_tree = [False] * n
        best = [float("inf")] * n
        best_from = [-1] * n
        in_tree[0] = True
        for j in range(1, n):
            best[j] = self.distance.distance(records[0], records[j])
            best_from[j] = 0
        edges: list[tuple[float, int, int]] = []
        for _ in range(n - 1):
            next_index = -1
            next_best = float("inf")
            for j in range(n):
                if not in_tree[j] and best[j] < next_best:
                    next_best = best[j]
                    next_index = j
            if next_index < 0:
                break
            in_tree[next_index] = True
            edges.append(
                (
                    next_best,
                    records[best_from[next_index]].rid,
                    records[next_index].rid,
                )
            )
            for j in range(n):
                if not in_tree[j]:
                    d = self.distance.distance(records[next_index], records[j])
                    if d < best[j]:
                        best[j] = d
                        best_from[j] = next_index
        edges.sort()
        return edges

    def clusters_at(self, theta: float) -> Partition:
        """Return the single-linkage partition at threshold θ (``d < θ``)."""
        sets = DisjointSets(self.relation.ids())
        for weight, a, b in self.mst_edges:
            if weight >= theta:
                break
            sets.union(a, b)
        return Partition.from_groups(sets.groups())

    def merge_distances(self) -> list[float]:
        """The sorted MST edge weights: all thresholds where merges happen."""
        return [weight for weight, _, _ in self.mst_edges]
