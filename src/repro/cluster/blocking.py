"""Blocking strategies (related work, paper section 6).

Blocking speeds up threshold-based duplicate detection by partitioning
the relation into blocks and only comparing records within a block.
The paper rejects it for the DE problem because "they do not guarantee
that all required nearest neighbors of a tuple are also in the same
block" — the CS criterion needs *true* nearest neighbors.

We implement the two classic schemes so benchmark A5 can quantify that
objection: how many true nearest-neighbor pairs (and true duplicate
pairs) land in the same block?

- :func:`key_blocking` — hash records into blocks by a blocking key
  (default: the first token of the record text);
- :func:`sorted_neighborhood` — sort by a key and slide a fixed-size
  window (Hernandez & Stolfo's merge/purge approach, the paper's [15]).
"""

from __future__ import annotations

from typing import Callable

from repro.data.schema import Record, Relation
from repro.distances.tokens import tokenize

__all__ = [
    "first_token_key",
    "prefix_key",
    "key_blocking",
    "sorted_neighborhood",
    "candidate_pairs_from_blocks",
    "blocking_recall",
]

KeyFunction = Callable[[Record], str]


def first_token_key(record: Record) -> str:
    """The default blocking key: the record's first normalized token."""
    tokens = tokenize(record.text())
    return tokens[0] if tokens else ""


def prefix_key(length: int = 4) -> KeyFunction:
    """A blocking key of the first ``length`` normalized characters."""

    def key(record: Record) -> str:
        from repro.distances.tokens import normalize

        return normalize(record.text())[:length]

    return key


def key_blocking(
    relation: Relation, key: KeyFunction = first_token_key
) -> dict[str, list[int]]:
    """Partition record ids into blocks by blocking key."""
    blocks: dict[str, list[int]] = {}
    for record in relation:
        blocks.setdefault(key(record), []).append(record.rid)
    return blocks


def candidate_pairs_from_blocks(
    blocks: dict[str, list[int]]
) -> set[tuple[int, int]]:
    """All within-block unordered pairs."""
    pairs: set[tuple[int, int]] = set()
    for members in blocks.values():
        ordered = sorted(members)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pairs.add((a, b))
    return pairs


def sorted_neighborhood(
    relation: Relation,
    key: KeyFunction = first_token_key,
    window: int = 5,
) -> set[tuple[int, int]]:
    """Candidate pairs from the sorted-neighborhood method.

    Records are sorted by key; each record is paired with the
    ``window - 1`` records following it in sort order.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    ordered = sorted(relation, key=lambda record: (key(record), record.rid))
    pairs: set[tuple[int, int]] = set()
    for i, record in enumerate(ordered):
        for other in ordered[i + 1 : i + window]:
            a, b = record.rid, other.rid
            pairs.add((a, b) if a < b else (b, a))
    return pairs


def blocking_recall(
    candidate_pairs: set[tuple[int, int]],
    required_pairs: set[tuple[int, int]],
) -> float:
    """Fraction of required pairs covered by the candidate pairs.

    ``required_pairs`` can be true duplicate pairs (gold standard) or
    nearest-neighbor pairs (what the CS criterion actually needs).
    Returns 1.0 when nothing is required.
    """
    if not required_pairs:
        return 1.0
    return len(candidate_pairs & required_pairs) / len(required_pairs)
