"""Phase-1 scalability benchmark: throughput vs. workers vs. size.

Produces the ``BENCH_phase1.json`` artifact the performance roadmap
regresses against.  Three execution modes of the same NN-list
computation are timed on brute-force indexes over a generated dataset:

- ``per-query`` — the sequential baseline: one full relation scan per
  k-NN lookup and another per NG range count;
- ``batch`` with 1 worker — the blocked all-pairs fast path
  (:meth:`repro.index.bruteforce.BruteForceIndex.prime_pairs`), which
  exploits distance symmetry and serves the NG counts from the shared
  pair cache;
- ``batch`` with N workers — the chunked
  :class:`~repro.parallel.engine.ParallelNNEngine` executor.

Every run's NN relation is checksummed; the payload records whether all
modes agreed (they must — the parallel path is defined to be
result-identical).  See ``docs/performance.md`` for how to read the
output.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.data.loaders import load_dataset
from repro.distances.base import CachedDistance, DistanceFunction
from repro.distances.cosine import CosineDistance
from repro.distances.edit import EditDistance
from repro.distances.fms import FuzzyMatchDistance
from repro.distances.jaccard import TokenJaccardDistance
from repro.eval.report import format_table
from repro.index.base import NNIndex
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.inverted import QgramInvertedIndex
from repro.index.minhash import MinHashIndex
from repro.index.pivot import PivotIndex
from repro.parallel.engine import ParallelNNEngine

__all__ = [
    "BENCH_DISTANCES",
    "INDEX_FACTORIES",
    "nn_checksum",
    "parallelism_advisory",
    "run_phase1_bench",
    "run_index_matrix",
    "phase1_table",
    "index_matrix_table",
    "write_phase1_json",
]

BENCH_DISTANCES: dict[str, type[DistanceFunction]] = {
    "cosine": CosineDistance,
    "edit": EditDistance,
    "fms": FuzzyMatchDistance,
    "jaccard": TokenJaccardDistance,
}

#: Candidate-generation strategies the index matrix compares.  Brute
#: force is the exact baseline every approximate row is scored against.
#: The q-gram index runs with its scalability knobs engaged (stop-grams
#: and a range-query budget) — without them the NG range queries verify
#: nearly every gram-sharing pair and the index degenerates to
#: quadratic on text with common grams; see docs/performance.md.
INDEX_FACTORIES: dict[str, Callable[[], NNIndex]] = {
    "brute": BruteForceIndex,
    "bktree": BKTreeIndex,
    "qgram": lambda: QgramInvertedIndex(max_df=64, within_budget=128),
    "minhash": MinHashIndex,
    "pivot": PivotIndex,
}


def parallelism_advisory(workers: Sequence[int] | int) -> dict:
    """Honest parallelism metadata for a benchmark payload.

    Worker counts above ``os.cpu_count()`` cannot speed anything up —
    they only add scheduling overhead — yet a payload that records
    ``workers: [1, 2, 4]`` on a 1-core box silently reads as a failed
    scaling experiment.  This stamps every payload with the
    *effective* parallelism (``min(max(workers), cpu_count)``) and a
    human-readable warning when the requested fan-out exceeds the
    machine, so speedup columns can be read honestly.
    """
    requested = max(workers) if not isinstance(workers, int) else workers
    cpu_count = os.cpu_count() or 1
    effective = min(requested, cpu_count)
    warning = None
    if cpu_count < requested:
        warning = (
            f"requested {requested} workers on a {cpu_count}-core machine; "
            f"speedups beyond {cpu_count}x reflect overlap of waiting, not "
            f"parallel compute"
        )
    return {
        "cpu_count": cpu_count,
        "requested_workers": requested,
        "effective_parallelism": effective,
        "warning": warning,
    }


def nn_checksum(nn_relation: NNRelation) -> str:
    """A deterministic digest of an NN relation (lists, distances, NG)."""
    digest = hashlib.sha256()
    for entry in nn_relation:
        digest.update(repr((entry.rid, entry.ng)).encode())
        for neighbor in entry.neighbors:
            digest.update(repr((neighbor.rid, neighbor.distance)).encode())
    return digest.hexdigest()


def _run_mode(
    relation,
    distance_cls: type[DistanceFunction],
    params: DEParams,
    mode: str,
    n_workers: int,
    pool: str,
    kernel: str = "python",
) -> dict:
    """Time one Phase-1 execution mode on a fresh index and distance."""
    index = BruteForceIndex()
    index.enable_kernel(kernel)
    index.build(relation, distance_cls())
    stats = Phase1Stats()
    if mode == "per-query":
        nn = prepare_nn_lists(relation, index, params, order="sequential", stats=stats)
    else:
        engine = ParallelNNEngine(n_workers=n_workers, pool=pool)
        nn = engine.run(relation, index, params, order="sequential", stats=stats)
    return {
        "n": len(relation),
        "mode": mode,
        "workers": n_workers,
        "seconds": stats.seconds,
        "lookups": stats.lookups,
        "throughput": stats.throughput,
        "evaluations": stats.evaluations,
        "kernel_evaluations": stats.kernel_evaluations,
        "backend": index.kernel_backend,
        "cache_hit_rate": stats.cache_hit_rate,
        "n_chunks": stats.n_chunks,
        "checksum": nn_checksum(nn),
    }


def run_index_matrix(
    indexes: Sequence[str],
    dataset: str = "org",
    distance: str = "cosine",
    n_entities: int = 2000,
    k: int = 5,
    theta: float | None = 0.4,
    n_workers: int = 1,
    pool: str = "thread",
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    recall_sample: int = 50,
    kernel: str = "python",
) -> dict:
    """Compare candidate-generation indexes on one Phase-1 instance.

    Runs the batched Phase 1 once per requested index (brute force is
    always included as the exact baseline) and reports, per row: cost
    (distance evaluations during queries and during index construction),
    pruning effectiveness (candidates surfaced vs. pairs never
    examined), throughput, and sampled NN recall against brute force
    (:func:`repro.verify.parity.sampled_nn_recall`).

    The default workload is the paper's combined cut — the ``k``
    nearest neighbors within ``theta`` — which is the regime candidate
    generation exists for: neighbors beyond θ are never needed, so an
    index that skips far pairs loses nothing.  Pass ``theta=None`` for
    a pure k-NN matrix; expect approximate indexes to trade much more
    recall there, because every query must then return ``k`` rows even
    when nothing similar exists (see docs/performance.md, "When brute
    force wins").

    An index incompatible with the distance (e.g. the BK-tree without
    edit distance) produces a ``skipped`` row instead of failing the
    whole matrix, so one matrix can sweep every index per distance.
    """
    # Imported lazily: repro.verify sits above the eval layer.
    from repro.verify.parity import sampled_nn_recall

    distance_cls = BENCH_DISTANCES[distance]
    if theta is not None:
        params = DEParams.combined(k, theta, c=4.0)
    else:
        params = DEParams.size(k, c=4.0)
    relation = load_dataset(
        dataset,
        n_entities=n_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    names = ["brute"] + [name for name in indexes if name != "brute"]
    # One memoized distance serves every row's recall check: the sample
    # is fixed, so the brute-force reference pairs are computed once.
    recall_distance = CachedDistance(distance_cls())

    rows: list[dict] = []
    brute_total: int | None = None
    for name in names:
        try:
            index = INDEX_FACTORIES[name]()
            index.enable_kernel(kernel)
            index.build(relation, distance_cls())
        except (TypeError, ValueError) as exc:
            rows.append({"index": name, "skipped": str(exc)})
            continue
        stats = Phase1Stats()
        engine = ParallelNNEngine(n_workers=n_workers, pool=pool)
        nn = engine.run(relation, index, params, order="sequential", stats=stats)
        # Kernel-evaluated pairs are distance work all the same: keep
        # the vs-brute ratio meaningful under every backend.
        total = (
            stats.evaluations + stats.kernel_evaluations
            + index.build_evaluations
        )
        if name == "brute":
            brute_total = total
        row = {
            "index": name,
            "index_name": index.name,
            "seconds": stats.seconds,
            "lookups": stats.lookups,
            "throughput": stats.throughput,
            "evaluations": stats.evaluations,
            "kernel_evaluations": stats.kernel_evaluations,
            "backend": index.kernel_backend,
            "build_evaluations": index.build_evaluations,
            "total_evaluations": total,
            "candidates_generated": stats.candidates_generated,
            "evaluations_pruned": stats.evaluations_pruned,
            "prune_rate": stats.prune_rate,
            "cache_hit_rate": stats.cache_hit_rate,
            "evaluations_ratio_vs_brute": (
                brute_total / total if brute_total and total else None
            ),
            "recall": sampled_nn_recall(
                relation,
                recall_distance,
                nn,
                params,
                sample=recall_sample,
                seed=seed,
            ),
            "checksum": nn_checksum(nn),
        }
        rows.append(row)
    return {
        "dataset": dataset,
        "distance": distance,
        "n": len(relation),
        "n_entities": n_entities,
        "k": k,
        "theta": theta,
        "workers": n_workers,
        "pool": pool,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "recall_sample": recall_sample,
        "kernel": kernel,
        "effective_parallelism": parallelism_advisory(n_workers),
        "rows": rows,
    }


def run_phase1_bench(
    sizes: Sequence[int] = (500, 1000, 2000),
    workers: Sequence[int] = (1, 2, 4),
    dataset: str = "org",
    distance: str = "cosine",
    k: int = 5,
    pool: str = "thread",
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    kernel: str = "auto",
    verify: bool = False,
    indexes: Sequence[str] | None = None,
    matrix_distance: str | None = None,
    matrix_entities: int | None = None,
    matrix_theta: float | None = 0.4,
    recall_sample: int = 50,
) -> dict:
    """Run the Phase-1 scalability matrix and return the JSON payload.

    ``sizes`` counts entities before duplicate injection; each row
    reports the actual relation size ``n``.  For every size the
    per-query baseline runs once and the batch path runs once per
    worker count.  ``kernel`` selects the distance backend for the
    batch runs (and the index matrix); the per-query baseline always
    runs the scalar python path, so the recorded speedups measure the
    full blocked + vectorized pipeline against the honest sequential
    baseline.  Checksums still must agree across all modes.

    With ``verify=True`` the smallest size additionally runs the full
    DE pipeline under the invariant verifier (``repro.verify``) and
    the payload records the per-check summary under ``"verification"``
    — a bench artifact produced from an invariant-breaking build is
    flagged rather than silently published.

    With ``indexes`` given (names from :data:`INDEX_FACTORIES`), the
    payload additionally carries ``"index_matrix"``: a list of
    :func:`run_index_matrix` results — by default one matrix at the
    largest size, overridable via ``matrix_distance`` /
    ``matrix_entities``.
    """
    distance_cls = BENCH_DISTANCES[distance]
    params = DEParams.size(k, c=4.0)
    runs: list[dict] = []
    speedups: dict[str, float] = {}
    parity: dict[str, bool] = {}

    for size in sizes:
        relation = load_dataset(
            dataset,
            n_entities=size,
            duplicate_fraction=duplicate_fraction,
            seed=seed,
        ).relation
        baseline = _run_mode(
            relation, distance_cls, params, "per-query", 1, pool,
            kernel="python",
        )
        runs.append(baseline)
        checksums = {baseline["checksum"]}
        batch_one = None
        for n_workers in workers:
            row = _run_mode(
                relation, distance_cls, params, "batch", n_workers, pool,
                kernel=kernel,
            )
            runs.append(row)
            checksums.add(row["checksum"])
            if n_workers == 1:
                batch_one = row
        n_key = str(len(relation))
        parity[n_key] = len(checksums) == 1
        if batch_one is not None and baseline["throughput"] > 0.0:
            speedups[n_key] = batch_one["throughput"] / baseline["throughput"]

    verification = None
    if verify:
        verification = _self_check(
            dataset, distance_cls, params,
            n_entities=min(sizes),
            duplicate_fraction=duplicate_fraction,
            seed=seed,
        )

    index_matrix = None
    if indexes:
        index_matrix = [
            run_index_matrix(
                indexes,
                dataset=dataset,
                distance=matrix_distance or distance,
                n_entities=matrix_entities or max(sizes),
                k=k,
                theta=matrix_theta,
                pool=pool,
                duplicate_fraction=duplicate_fraction,
                seed=seed,
                recall_sample=recall_sample,
                kernel=kernel,
            )
        ]

    return {
        "benchmark": "phase1_parallel",
        "dataset": dataset,
        "distance": distance,
        "k": k,
        "pool": pool,
        "kernel": kernel,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "sizes": list(sizes),
        "workers": list(workers),
        "effective_parallelism": parallelism_advisory(workers),
        "runs": runs,
        "speedup_batch_vs_per_query": speedups,
        "parity": parity,
        "verification": verification,
        "index_matrix": index_matrix,
    }


def _self_check(
    dataset: str,
    distance_cls: type[DistanceFunction],
    params: DEParams,
    n_entities: int,
    duplicate_fraction: float,
    seed: int,
) -> dict:
    """Run the full pipeline under the verifier; return its summary.

    The check runs through the storage engine so the payload also
    captures the engine telemetry — notably the buffer hit ratio (the
    paper's Figure 8 quantity) — alongside the invariant summary.
    """
    # Imported lazily: the verifier sits above the pipeline layer.
    from repro.core.pipeline import DuplicateEliminator
    from repro.run.config import RunConfig
    from repro.verify.report import summarize

    relation = load_dataset(
        dataset,
        n_entities=n_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    config = RunConfig(verify="report", use_engine=True)
    solver = DuplicateEliminator(distance_cls(), config=config)
    result = solver.run(relation, params)
    summary = summarize(result.verification)
    summary["stats"] = result.stats.to_dict()
    return summary


def phase1_table(payload: Mapping) -> str:
    """Render a payload's run matrix as the repo's standard text table."""
    rows = [
        (
            run["n"],
            run["mode"],
            run.get("backend", "python"),
            run["workers"],
            f"{run['seconds']:.2f}s",
            f"{run['throughput']:.0f}/s",
            run["evaluations"],
            run.get("kernel_evaluations", 0),
            f"{run['cache_hit_rate']:.2f}",
        )
        for run in payload["runs"]
    ]
    table = format_table(
        ("n", "mode", "backend", "workers", "seconds", "throughput",
         "evaluations", "kernel_evals", "hit_rate"),
        rows,
        title="BENCH_phase1: Phase-1 lookup throughput by mode and worker count",
    )
    speedups = ", ".join(
        f"n={n}: {s:.2f}x"
        for n, s in sorted(payload["speedup_batch_vs_per_query"].items(), key=lambda kv: int(kv[0]))
    )
    return f"{table}\n\nbatch (1 worker) vs per-query speedup: {speedups}"


def index_matrix_table(matrix: Mapping) -> str:
    """Render one :func:`run_index_matrix` result as a text table."""
    rows = []
    for row in matrix["rows"]:
        if "skipped" in row:
            rows.append((row["index"], "skipped: " + row["skipped"],
                         "", "", "", "", ""))
            continue
        ratio = row["evaluations_ratio_vs_brute"]
        rows.append(
            (
                row["index"],
                row["total_evaluations"],
                f"{ratio:.1f}x" if ratio else "-",
                f"{row['prune_rate']:.2f}",
                f"{row['recall']['mean_recall']:.3f}",
                f"{row['throughput']:.0f}/s",
                f"{row['seconds']:.2f}s",
            )
        )
    theta = matrix.get("theta")
    cut = f"k={matrix['k']}" + (f" within theta={theta:g}" if theta else "")
    title = (
        f"BENCH_phase1 index matrix: {matrix['distance']} distance, "
        f"n={matrix['n']}, {cut}"
    )
    return format_table(
        ("index", "evaluations", "vs_brute", "prune_rate", "recall",
         "throughput", "seconds"),
        rows,
        title=title,
    )


def write_phase1_json(payload: Mapping, path: str | Path) -> Path:
    """Write the payload to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
