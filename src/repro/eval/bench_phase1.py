"""Phase-1 scalability benchmark: throughput vs. workers vs. size.

Produces the ``BENCH_phase1.json`` artifact the performance roadmap
regresses against.  Three execution modes of the same NN-list
computation are timed on brute-force indexes over a generated dataset:

- ``per-query`` — the sequential baseline: one full relation scan per
  k-NN lookup and another per NG range count;
- ``batch`` with 1 worker — the blocked all-pairs fast path
  (:meth:`repro.index.bruteforce.BruteForceIndex.prime_pairs`), which
  exploits distance symmetry and serves the NG counts from the shared
  pair cache;
- ``batch`` with N workers — the chunked
  :class:`~repro.parallel.engine.ParallelNNEngine` executor.

Every run's NN relation is checksummed; the payload records whether all
modes agreed (they must — the parallel path is defined to be
result-identical).  See ``docs/performance.md`` for how to read the
output.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.core.nn_phase import Phase1Stats, prepare_nn_lists
from repro.data.loaders import load_dataset
from repro.distances.base import CachedDistance, DistanceFunction
from repro.distances.cosine import CosineDistance
from repro.distances.edit import EditDistance
from repro.distances.fms import FuzzyMatchDistance
from repro.distances.jaccard import TokenJaccardDistance
from repro.eval.report import format_table
from repro.index.base import NNIndex
from repro.index.bktree import BKTreeIndex
from repro.index.bruteforce import BruteForceIndex
from repro.index.inverted import QgramInvertedIndex
from repro.index.minhash import MinHashIndex
from repro.index.pivot import PivotIndex
from repro.parallel.engine import ParallelNNEngine

__all__ = [
    "BENCH_DISTANCES",
    "INDEX_FACTORIES",
    "nn_checksum",
    "parallelism_advisory",
    "run_build_throughput",
    "run_phase1_bench",
    "run_index_matrix",
    "phase1_table",
    "build_throughput_table",
    "index_matrix_table",
    "write_phase1_json",
]

BENCH_DISTANCES: dict[str, type[DistanceFunction]] = {
    "cosine": CosineDistance,
    "edit": EditDistance,
    "fms": FuzzyMatchDistance,
    "jaccard": TokenJaccardDistance,
}

#: Candidate-generation strategies the index matrix compares.  Brute
#: force is the exact baseline every approximate row is scored against.
#: The q-gram index runs with its scalability knobs engaged (stop-grams
#: and a range-query budget) — without them the NG range queries verify
#: nearly every gram-sharing pair and the index degenerates to
#: quadratic on text with common grams; see docs/performance.md.
INDEX_FACTORIES: dict[str, Callable[[], NNIndex]] = {
    "brute": BruteForceIndex,
    "bktree": BKTreeIndex,
    "qgram": lambda: QgramInvertedIndex(max_df=64, within_budget=128),
    "minhash": MinHashIndex,
    "pivot": PivotIndex,
}


def parallelism_advisory(workers: Sequence[int] | int) -> dict:
    """Honest parallelism metadata for a benchmark payload.

    Worker counts above ``os.cpu_count()`` cannot speed anything up —
    they only add scheduling overhead — yet a payload that records
    ``workers: [1, 2, 4]`` on a 1-core box silently reads as a failed
    scaling experiment.  This stamps every payload with the
    *effective* parallelism (``min(max(workers), cpu_count)``) and a
    human-readable warning when the requested fan-out exceeds the
    machine, so speedup columns can be read honestly.
    """
    requested = max(workers) if not isinstance(workers, int) else workers
    cpu_count = os.cpu_count() or 1
    effective = min(requested, cpu_count)
    warning = None
    if cpu_count < requested:
        warning = (
            f"requested {requested} workers on a {cpu_count}-core machine; "
            f"speedups beyond {cpu_count}x reflect overlap of waiting, not "
            f"parallel compute"
        )
    return {
        "cpu_count": cpu_count,
        "requested_workers": requested,
        "effective_parallelism": effective,
        "warning": warning,
    }


def nn_checksum(nn_relation: NNRelation) -> str:
    """A deterministic digest of an NN relation (lists, distances, NG)."""
    digest = hashlib.sha256()
    for entry in nn_relation:
        digest.update(repr((entry.rid, entry.ng)).encode())
        for neighbor in entry.neighbors:
            digest.update(repr((neighbor.rid, neighbor.distance)).encode())
    return digest.hexdigest()


def run_build_throughput(
    dataset: str = "org",
    n_entities: int = 2000,
    n_hashes: int = 64,
    n_bands: int = 16,
    duplicate_fraction: float = 0.3,
    seed: int = 0,
) -> dict:
    """Time MinHash signing + banding: scalar baseline vs the factory.

    The index-build half of the Phase-1 cost model, isolated, across
    three signers of the same relation:

    - ``scalar`` — the seed path: ``minhash_signature`` per record
      (hashes every token *occurrence* per salt) plus the per-record
      ``band_keys`` bucketing loop;
    - ``python`` / ``numpy`` — the two backends of the
      vocabulary-hashed :class:`~repro.index.signatures.
      SignatureFactory` (hash each *distinct* token once per salt).

    The payload records per-signer wall time, records/sec, the
    tokenize/sign/bucket split, the vocabulary compression ratio
    (occurrences / distinct tokens — the quantity vocabulary hashing
    exploits, and the reason the factory wins), a signature checksum,
    ``parity`` (checksums byte-identical across all signers),
    ``speedup_vectorized_vs_scalar`` (the headline: best factory
    backend vs the scalar baseline — what ``bench-scale
    --min-speedup`` gates), and ``speedup_numpy_vs_python`` (the
    factory's backends against each other; near 1.0 is expected, the
    shared blake2b hashing dominates both).
    """
    from repro.distances.kernels.compat import have_numpy
    from repro.distances.tokens import tokenize
    from repro.index.minhash import band_keys, minhash_signature
    from repro.index.signatures import SignatureFactory, group_band_buckets

    relation = load_dataset(
        dataset,
        n_entities=n_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    rids = relation.ids()
    texts = {rid: relation.get(rid).text() for rid in rids}
    occurrences = sum(len(tokenize(text)) for text in texts.values())
    vocabulary = len({t for text in texts.values() for t in tokenize(text)})

    def checksum_of(signature_items) -> str:
        digest = hashlib.sha256()
        for rid, signature in signature_items:
            digest.update(repr((rid, signature)).encode())
        return digest.hexdigest()

    rows: list[dict] = []
    checksums: set[str] = set()

    # Scalar baseline: per-occurrence hashing, per-record bucketing.
    started = time.perf_counter()
    element_sets = {rid: set(tokenize(texts[rid])) for rid in rids}
    tokenize_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scalar_signatures = [
        (rid, minhash_signature(element_sets[rid], n_hashes)) for rid in rids
    ]
    sign_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scalar_buckets: dict = {}
    for rid, signature in scalar_signatures:
        for band, key in band_keys(signature, n_bands):
            scalar_buckets.setdefault((band, key), []).append(rid)
    bucket_seconds = time.perf_counter() - started
    seconds = tokenize_seconds + sign_seconds + bucket_seconds
    checksum = checksum_of(scalar_signatures)
    checksums.add(checksum)
    rows.append(
        {
            "backend": "scalar",
            "seconds": seconds,
            "records_per_second": len(rids) / seconds if seconds > 0 else None,
            "tokenize_seconds": tokenize_seconds,
            "sign_seconds": sign_seconds,
            "bucket_seconds": bucket_seconds,
            "n_buckets": len(scalar_buckets),
            "signature_checksum": checksum,
        }
    )

    for backend in ["python"] + (["numpy"] if have_numpy() else []):
        factory = SignatureFactory(n_hashes, backend=backend)
        started = time.perf_counter()
        signed = factory.sign_records(rids, lambda rid: tokenize(texts[rid]))
        grouping = group_band_buckets(signed, n_bands)
        seconds = time.perf_counter() - started
        checksum = checksum_of(zip(signed.rids, signed.tuples))
        checksums.add(checksum)
        rows.append(
            {
                "backend": backend,
                "seconds": seconds,
                "records_per_second": (
                    len(rids) / seconds if seconds > 0 else None
                ),
                "tokenize_seconds": signed.timings.get("tokenize", 0.0),
                "sign_seconds": signed.timings.get("sign", 0.0),
                "bucket_seconds": grouping.seconds,
                "n_buckets": len(grouping.buckets),
                "signature_checksum": checksum,
            }
        )

    by_backend = {row["backend"]: row for row in rows}
    best = by_backend.get("numpy") or by_backend["python"]
    vectorized_speedup = (
        by_backend["scalar"]["seconds"] / best["seconds"]
        if best["seconds"] > 0
        else None
    )
    backend_speedup = None
    if "python" in by_backend and "numpy" in by_backend:
        numpy_seconds = by_backend["numpy"]["seconds"]
        if numpy_seconds > 0:
            backend_speedup = by_backend["python"]["seconds"] / numpy_seconds
    return {
        "dataset": dataset,
        "n": len(relation),
        "n_entities": n_entities,
        "n_hashes": n_hashes,
        "n_bands": n_bands,
        "token_occurrences": occurrences,
        "distinct_tokens": vocabulary,
        "vocab_compression": (
            occurrences / vocabulary if vocabulary else None
        ),
        "rows": rows,
        "vectorized_backend": best["backend"],
        "speedup_vectorized_vs_scalar": vectorized_speedup,
        "speedup_numpy_vs_python": backend_speedup,
        "parity": len(checksums) == 1,
    }


def _run_mode(
    relation,
    distance_cls: type[DistanceFunction],
    params: DEParams,
    mode: str,
    n_workers: int,
    pool: str,
    kernel: str = "python",
) -> dict:
    """Time one Phase-1 execution mode on a fresh index and distance."""
    index = BruteForceIndex()
    index.enable_kernel(kernel)
    index.build(relation, distance_cls())
    stats = Phase1Stats()
    if mode == "per-query":
        nn = prepare_nn_lists(relation, index, params, order="sequential", stats=stats)
    else:
        engine = ParallelNNEngine(n_workers=n_workers, pool=pool)
        nn = engine.run(relation, index, params, order="sequential", stats=stats)
    return {
        "n": len(relation),
        "mode": mode,
        "workers": n_workers,
        "seconds": stats.seconds,
        "lookups": stats.lookups,
        "throughput": stats.throughput,
        "evaluations": stats.evaluations,
        "kernel_evaluations": stats.kernel_evaluations,
        "backend": index.kernel_backend,
        # Kernel-backed runs route every pair around the pair cache, so
        # 0.0 would be misleading: null + the explicit flag instead.
        "cache_hit_rate": (
            None if stats.cache_bypassed else stats.cache_hit_rate
        ),
        "cache_bypassed": stats.cache_bypassed,
        "substages": dict(stats.substage_seconds),
        "n_chunks": stats.n_chunks,
        "checksum": nn_checksum(nn),
    }


def run_index_matrix(
    indexes: Sequence[str],
    dataset: str = "org",
    distance: str = "cosine",
    n_entities: int = 2000,
    k: int = 5,
    theta: float | None = 0.4,
    n_workers: int = 1,
    pool: str = "thread",
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    recall_sample: int = 50,
    kernel: str = "python",
) -> dict:
    """Compare candidate-generation indexes on one Phase-1 instance.

    Runs the batched Phase 1 once per requested index (brute force is
    always included as the exact baseline) and reports, per row: cost
    (distance evaluations during queries and during index construction),
    pruning effectiveness (candidates surfaced vs. pairs never
    examined), throughput, and sampled NN recall against brute force
    (:func:`repro.verify.parity.sampled_nn_recall`).

    The default workload is the paper's combined cut — the ``k``
    nearest neighbors within ``theta`` — which is the regime candidate
    generation exists for: neighbors beyond θ are never needed, so an
    index that skips far pairs loses nothing.  Pass ``theta=None`` for
    a pure k-NN matrix; expect approximate indexes to trade much more
    recall there, because every query must then return ``k`` rows even
    when nothing similar exists (see docs/performance.md, "When brute
    force wins").

    An index incompatible with the distance (e.g. the BK-tree without
    edit distance) produces a ``skipped`` row instead of failing the
    whole matrix, so one matrix can sweep every index per distance.
    """
    # Imported lazily: repro.verify sits above the eval layer.
    from repro.verify.parity import sampled_nn_recall

    distance_cls = BENCH_DISTANCES[distance]
    if theta is not None:
        params = DEParams.combined(k, theta, c=4.0)
    else:
        params = DEParams.size(k, c=4.0)
    relation = load_dataset(
        dataset,
        n_entities=n_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    names = ["brute"] + [name for name in indexes if name != "brute"]
    # One memoized distance serves every row's recall check: the sample
    # is fixed, so the brute-force reference pairs are computed once.
    recall_distance = CachedDistance(distance_cls())

    rows: list[dict] = []
    brute_total: int | None = None
    for name in names:
        try:
            index = INDEX_FACTORIES[name]()
            index.enable_kernel(kernel)
            index.build(relation, distance_cls())
        except (TypeError, ValueError) as exc:
            rows.append({"index": name, "skipped": str(exc)})
            continue
        stats = Phase1Stats()
        engine = ParallelNNEngine(n_workers=n_workers, pool=pool)
        nn = engine.run(relation, index, params, order="sequential", stats=stats)
        # Kernel-evaluated pairs are distance work all the same: keep
        # the vs-brute ratio meaningful under every backend.
        total = (
            stats.evaluations + stats.kernel_evaluations
            + index.build_evaluations
        )
        if name == "brute":
            brute_total = total
        row = {
            "index": name,
            "index_name": index.name,
            "seconds": stats.seconds,
            "lookups": stats.lookups,
            "throughput": stats.throughput,
            "evaluations": stats.evaluations,
            "kernel_evaluations": stats.kernel_evaluations,
            "backend": index.kernel_backend,
            "build_evaluations": index.build_evaluations,
            "total_evaluations": total,
            "candidates_generated": stats.candidates_generated,
            "evaluations_pruned": stats.evaluations_pruned,
            "prune_rate": stats.prune_rate,
            "cache_hit_rate": (
                None if stats.cache_bypassed else stats.cache_hit_rate
            ),
            "cache_bypassed": stats.cache_bypassed,
            "substages": dict(stats.substage_seconds),
            "evaluations_ratio_vs_brute": (
                brute_total / total if brute_total and total else None
            ),
            "recall": sampled_nn_recall(
                relation,
                recall_distance,
                nn,
                params,
                sample=recall_sample,
                seed=seed,
            ),
            "checksum": nn_checksum(nn),
        }
        rows.append(row)
    return {
        "dataset": dataset,
        "distance": distance,
        "n": len(relation),
        "n_entities": n_entities,
        "k": k,
        "theta": theta,
        "workers": n_workers,
        "pool": pool,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "recall_sample": recall_sample,
        "kernel": kernel,
        "effective_parallelism": parallelism_advisory(n_workers),
        "rows": rows,
    }


def run_phase1_bench(
    sizes: Sequence[int] = (500, 1000, 2000),
    workers: Sequence[int] = (1, 2, 4),
    dataset: str = "org",
    distance: str = "cosine",
    k: int = 5,
    pool: str = "thread",
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    kernel: str = "auto",
    verify: bool = False,
    indexes: Sequence[str] | None = None,
    matrix_distance: str | None = None,
    matrix_entities: int | None = None,
    matrix_theta: float | None = 0.4,
    recall_sample: int = 50,
) -> dict:
    """Run the Phase-1 scalability matrix and return the JSON payload.

    ``sizes`` counts entities before duplicate injection; each row
    reports the actual relation size ``n``.  For every size the
    per-query baseline runs once and the batch path runs once per
    worker count.  ``kernel`` selects the distance backend for the
    batch runs (and the index matrix); the per-query baseline always
    runs the scalar python path, so the recorded speedups measure the
    full blocked + vectorized pipeline against the honest sequential
    baseline.  Checksums still must agree across all modes.

    With ``verify=True`` the smallest size additionally runs the full
    DE pipeline under the invariant verifier (``repro.verify``) and
    the payload records the per-check summary under ``"verification"``
    — a bench artifact produced from an invariant-breaking build is
    flagged rather than silently published.

    With ``indexes`` given (names from :data:`INDEX_FACTORIES`), the
    payload additionally carries ``"index_matrix"``: a list of
    :func:`run_index_matrix` results — by default one matrix at the
    largest size, overridable via ``matrix_distance`` /
    ``matrix_entities``.
    """
    distance_cls = BENCH_DISTANCES[distance]
    params = DEParams.size(k, c=4.0)
    runs: list[dict] = []
    speedups: dict[str, float] = {}
    parity: dict[str, bool] = {}

    for size in sizes:
        relation = load_dataset(
            dataset,
            n_entities=size,
            duplicate_fraction=duplicate_fraction,
            seed=seed,
        ).relation
        baseline = _run_mode(
            relation, distance_cls, params, "per-query", 1, pool,
            kernel="python",
        )
        runs.append(baseline)
        checksums = {baseline["checksum"]}
        batch_one = None
        for n_workers in workers:
            row = _run_mode(
                relation, distance_cls, params, "batch", n_workers, pool,
                kernel=kernel,
            )
            runs.append(row)
            checksums.add(row["checksum"])
            if n_workers == 1:
                batch_one = row
        n_key = str(len(relation))
        parity[n_key] = len(checksums) == 1
        if batch_one is not None and baseline["throughput"] > 0.0:
            speedups[n_key] = batch_one["throughput"] / baseline["throughput"]

    verification = None
    if verify:
        verification = _self_check(
            dataset, distance_cls, params,
            n_entities=min(sizes),
            duplicate_fraction=duplicate_fraction,
            seed=seed,
        )

    build_throughput = run_build_throughput(
        dataset=dataset,
        n_entities=max(sizes),
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    )

    index_matrix = None
    if indexes:
        index_matrix = [
            run_index_matrix(
                indexes,
                dataset=dataset,
                distance=matrix_distance or distance,
                n_entities=matrix_entities or max(sizes),
                k=k,
                theta=matrix_theta,
                pool=pool,
                duplicate_fraction=duplicate_fraction,
                seed=seed,
                recall_sample=recall_sample,
                kernel=kernel,
            )
        ]

    return {
        "benchmark": "phase1_parallel",
        "dataset": dataset,
        "distance": distance,
        "k": k,
        "pool": pool,
        "kernel": kernel,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "sizes": list(sizes),
        "workers": list(workers),
        "effective_parallelism": parallelism_advisory(workers),
        "runs": runs,
        "speedup_batch_vs_per_query": speedups,
        "parity": parity,
        "build_throughput": build_throughput,
        "verification": verification,
        "index_matrix": index_matrix,
    }


def _self_check(
    dataset: str,
    distance_cls: type[DistanceFunction],
    params: DEParams,
    n_entities: int,
    duplicate_fraction: float,
    seed: int,
) -> dict:
    """Run the full pipeline under the verifier; return its summary.

    The check runs through the storage engine so the payload also
    captures the engine telemetry — notably the buffer hit ratio (the
    paper's Figure 8 quantity) — alongside the invariant summary.
    """
    # Imported lazily: the verifier sits above the pipeline layer.
    from repro.core.pipeline import DuplicateEliminator
    from repro.run.config import RunConfig
    from repro.verify.report import summarize

    relation = load_dataset(
        dataset,
        n_entities=n_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    config = RunConfig(verify="report", use_engine=True)
    solver = DuplicateEliminator(distance_cls(), config=config)
    result = solver.run(relation, params)
    summary = summarize(result.verification)
    summary["stats"] = result.stats.to_dict()
    return summary


def phase1_table(payload: Mapping) -> str:
    """Render a payload's run matrix as the repo's standard text table."""
    rows = [
        (
            run["n"],
            run["mode"],
            run.get("backend", "python"),
            run["workers"],
            f"{run['seconds']:.2f}s",
            f"{run['throughput']:.0f}/s",
            run["evaluations"],
            run.get("kernel_evaluations", 0),
            (
                "-(kernel)"
                if run.get("cache_hit_rate") is None
                else f"{run['cache_hit_rate']:.2f}"
            ),
        )
        for run in payload["runs"]
    ]
    table = format_table(
        ("n", "mode", "backend", "workers", "seconds", "throughput",
         "evaluations", "kernel_evals", "hit_rate"),
        rows,
        title="BENCH_phase1: Phase-1 lookup throughput by mode and worker count",
    )
    speedups = ", ".join(
        f"n={n}: {s:.2f}x"
        for n, s in sorted(payload["speedup_batch_vs_per_query"].items(), key=lambda kv: int(kv[0]))
    )
    return f"{table}\n\nbatch (1 worker) vs per-query speedup: {speedups}"


def build_throughput_table(build: Mapping) -> str:
    """Render a :func:`run_build_throughput` section as a text table."""
    rows = [
        (
            row["backend"],
            f"{row['seconds']:.3f}s",
            (
                f"{row['records_per_second']:.0f}/s"
                if row["records_per_second"]
                else "-"
            ),
            f"{row['tokenize_seconds']:.3f}s",
            f"{row['sign_seconds']:.3f}s",
            f"{row['bucket_seconds']:.3f}s",
            row["n_buckets"],
            row["signature_checksum"][:12],
        )
        for row in build["rows"]
    ]
    title = (
        f"index build throughput: n={build['n']} "
        f"h={build['n_hashes']} bands={build['n_bands']} "
        f"vocab {build['distinct_tokens']}/{build['token_occurrences']} "
        f"({build['vocab_compression']:.1f}x compression)"
        if build.get("vocab_compression")
        else f"index build throughput: n={build['n']}"
    )
    table = format_table(
        ("backend", "seconds", "rec/s", "tokenize", "sign", "bucket",
         "buckets", "checksum"),
        rows,
        title=title,
    )
    speedup = build.get("speedup_vectorized_vs_scalar")
    footer = (
        f"vectorized ({build.get('vectorized_backend')}) vs scalar "
        f"signer speedup: {speedup:.2f}x"
        if speedup
        else "no vectorized-vs-scalar speedup recorded"
    )
    parity = "identical" if build.get("parity") else "MISMATCH"
    return f"{table}\n\n{footer}; signatures across backends: {parity}"


def index_matrix_table(matrix: Mapping) -> str:
    """Render one :func:`run_index_matrix` result as a text table."""
    rows = []
    for row in matrix["rows"]:
        if "skipped" in row:
            rows.append((row["index"], "skipped: " + row["skipped"],
                         "", "", "", "", ""))
            continue
        ratio = row["evaluations_ratio_vs_brute"]
        rows.append(
            (
                row["index"],
                row["total_evaluations"],
                f"{ratio:.1f}x" if ratio else "-",
                f"{row['prune_rate']:.2f}",
                f"{row['recall']['mean_recall']:.3f}",
                f"{row['throughput']:.0f}/s",
                f"{row['seconds']:.2f}s",
            )
        )
    theta = matrix.get("theta")
    cut = f"k={matrix['k']}" + (f" within theta={theta:g}" if theta else "")
    title = (
        f"BENCH_phase1 index matrix: {matrix['distance']} distance, "
        f"n={matrix['n']}, {cut}"
    )
    return format_table(
        ("index", "evaluations", "vs_brute", "prune_rate", "recall",
         "throughput", "seconds"),
        rows,
        title=title,
    )


def write_phase1_json(payload: Mapping, path: str | Path) -> Path:
    """Write the payload to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
