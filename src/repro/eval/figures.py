"""Terminal rendering of the paper's figures (ASCII scatter plots).

The benchmarks print the numeric series behind each figure; this module
renders them as dependency-free ASCII plots so the *shape* — DE curves
sitting above the thr curve, the log-log linearity of the scalability
runs — is visible at a glance in a terminal or a results file.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.eval.pr_curve import PRSweep

__all__ = ["scatter", "pr_plot", "loglog_plot"]

#: Plot glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def scatter(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    x_range: tuple[float, float] | None = None,
    y_range: tuple[float, float] | None = None,
    title: str | None = None,
) -> str:
    """Render labelled point series on one ASCII canvas.

    Later series overwrite earlier ones on collisions; the legend maps
    markers back to series names.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return (title or "") + "\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = x_range if x_range else (min(xs), max(xs))
    y_lo, y_hi = y_range if y_range else (min(ys), max(ys))
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        column = min(max(column, 0), width - 1)
        row = min(max(row, 0), height - 1)
        grid[height - 1 - row][column] = marker

    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} ^  [{y_lo:g} .. {y_hi:g}]")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}  [{x_lo:g} .. {x_hi:g}]")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def pr_plot(
    sweeps: Mapping[str, PRSweep] | Sequence[PRSweep],
    title: str | None = None,
    width: int = 64,
    height: int = 20,
) -> str:
    """Render PR sweeps as a recall-vs-precision ASCII plot.

    This is the visual form of the paper's quality figures: the DE
    series should sit above the thr series at comparable recall.
    """
    if isinstance(sweeps, Mapping):
        items = list(sweeps.values())
    else:
        items = list(sweeps)
    series = {
        sweep.method: [(p.recall, p.precision) for p in sweep.points]
        for sweep in items
    }
    return scatter(
        series,
        width=width,
        height=height,
        x_label="recall",
        y_label="precision",
        x_range=(0.0, 1.0),
        y_range=(0.0, 1.0),
        title=title,
    )


def loglog_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    width: int = 64,
    height: int = 20,
    x_label: str = "log n",
    y_label: str = "log t",
) -> str:
    """Render series on log-log axes (the paper's Figure 9 style).

    Zero or negative values are dropped (they have no logarithm);
    linear series appear as straight diagonal point runs.
    """
    transformed = {
        name: [
            (math.log10(x), math.log10(y))
            for x, y in pts
            if x > 0.0 and y > 0.0
        ]
        for name, pts in series.items()
    }
    return scatter(
        transformed,
        width=width,
        height=height,
        x_label=x_label,
        y_label=y_label,
        title=title,
    )
