"""Phase-2 scalability benchmark: the partitioned CSPairs self-join.

Produces the ``BENCH_phase2.json`` artifact the performance roadmap
regresses against.  Phase 1 runs **once** (batched) over a generated
dataset; its NN relation is then pushed through every Phase-2 execution
mode:

- ``sequential`` — the reference joins: the direct in-memory builder
  (:func:`repro.core.cspairs.build_cs_pairs`) and the engine's
  row-at-a-time index nested-loop join + ``ORDER BY`` pass
  (:func:`repro.core.cspairs.build_cs_pairs_engine`);
- ``partitioned`` with N workers — the hash-partitioned join
  (:mod:`repro.parallel.join`): contiguous anchor-range chunks, batched
  probes of one shared id index, locally sorted runs, k-way merge —
  over three sources: in-memory rows, an engine-resident ``NN_Reln``,
  and a small-buffer engine with the out-of-core spill path
  (``spill_runs``, bounded scratch runs).

Every CSPairs output is checksummed; the payload records whether all
modes and sources agreed (they must — the partitioned join is defined
to be bit-identical).  The partitioning scan is benchmarked the same
way: the streaming single-scan extractor vs. the component-sharded
parallel extractor, with partition checksums.  See
``docs/performance.md`` ("Phase 2 at scale") for how to read the
output.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.cspairs import (
    CSPair,
    build_cs_pairs,
    build_cs_pairs_engine,
    iter_cs_pairs,
    materialize_nn_reln,
)
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNRelation
from repro.core.nn_phase import Phase1Stats
from repro.core.partitioner import partition_records, partition_records_sharded
from repro.core.result import Partition
from repro.data.loaders import load_dataset
from repro.eval.bench_phase1 import (
    BENCH_DISTANCES,
    INDEX_FACTORIES,
    parallelism_advisory,
)
from repro.eval.report import format_table
from repro.parallel.engine import ParallelNNEngine
from repro.parallel.join import (
    build_cs_pairs_engine_parallel,
    build_cs_pairs_parallel,
)
from repro.run.stats import Phase2Stats
from repro.storage.engine import Engine

__all__ = [
    "cs_pairs_checksum",
    "partition_checksum",
    "run_phase2_bench",
    "check_phase2_payload",
    "phase2_table",
    "write_phase2_json",
]

#: Sources the partitioned join is exercised over.
SOURCES = ("memory", "engine", "spill")


def cs_pairs_checksum(pairs: Iterable[CSPair]) -> str:
    """A deterministic digest of a CSPairs relation, order included.

    Covers every field of every row, so two joins agree iff they
    produced byte-identical relations in the same ``(id1, id2)`` order.
    """
    digest = hashlib.sha256()
    for pair in pairs:
        digest.update(
            repr(
                (pair.id1, pair.id2, pair.ng1, pair.ng2, tuple(pair.flags))
            ).encode()
        )
    return digest.hexdigest()


def partition_checksum(partition: Partition) -> str:
    """A deterministic digest of a partition's canonical groups."""
    return partition.checksum()


def _phase1_once(
    relation, distance, params: DEParams, index_name: str
) -> tuple[NNRelation, float]:
    """Run batched Phase 1 once; every Phase-2 mode reuses its output."""
    index = INDEX_FACTORIES[index_name]()
    index.build(relation, distance)
    stats = Phase1Stats()
    engine = ParallelNNEngine(n_workers=1)
    nn = engine.run(relation, index, params, order="sequential", stats=stats)
    return nn, stats.seconds


def _engine_with_nn(
    nn_relation: NNRelation, buffer_pages: int, page_capacity: int
) -> Engine:
    """A fresh engine with ``NN_Reln`` materialized (setup, untimed)."""
    engine = Engine(buffer_pages=buffer_pages, page_capacity=page_capacity)
    materialize_nn_reln(engine, nn_relation)
    return engine


def _best_of(repeats: int, setup, timed) -> tuple[object, float, object]:
    """Run ``timed`` ``repeats`` times, keeping the fastest run.

    ``setup`` (may be ``None``) builds fresh per-repeat state — e.g. an
    engine without a leftover ``CSPairs`` table — outside the timed
    region.  Returns ``(result, seconds, state)`` of the best repeat, so
    sub-10ms joins are judged on their floor rather than on scheduler
    noise (the gate in :func:`check_phase2_payload` depends on this).
    """
    best_seconds: float | None = None
    best_result: object = None
    best_state: object = None
    for _ in range(max(1, repeats)):
        state = setup() if setup is not None else None
        started = time.perf_counter()
        result = timed(state)
        elapsed = time.perf_counter() - started
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, best_result, best_state = elapsed, result, state
    return best_result, best_seconds, best_state


def _row(source: str, mode: str, workers: int, seconds: float,
         pairs: Sequence | int, checksum: str, stats: Phase2Stats | None = None,
         ) -> dict:
    n_pairs = pairs if isinstance(pairs, int) else len(pairs)
    row = {
        "source": source,
        "mode": mode,
        "workers": workers,
        "seconds": seconds,
        "pairs": n_pairs,
        "throughput": (n_pairs / seconds) if seconds > 0 else 0.0,
        "checksum": checksum,
    }
    if stats is not None:
        row.update(
            {
                "join_seconds": stats.join_seconds,
                "merge_seconds": stats.merge_seconds,
                "n_join_chunks": stats.n_join_chunks,
                "rows_probed": stats.rows_probed,
                "probes": stats.probes,
                "peak_run_rows": stats.peak_run_rows,
            }
        )
    return row


def run_phase2_bench(
    entities: int = 2400,
    workers: Sequence[int] = (1, 2, 4),
    dataset: str = "org",
    distance: str = "cosine",
    index: str = "brute",
    k: int = 5,
    pool: str = "thread",
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    buffer_pages: int = 256,
    page_capacity: int = 64,
    spill_buffer_pages: int = 8,
    repeats: int = 3,
) -> dict:
    """Run the Phase-2 join/partition matrix and return the JSON payload.

    ``entities`` counts entities before duplicate injection (2400 →
    n ≈ 3000 records).  Phase 1 runs once; then, per source (in-memory
    rows, engine-resident table, small-buffer spill engine), the
    sequential reference join and the partitioned join per worker count
    are each timed best-of-``repeats`` (fresh engine per repeat, setup
    untimed), so smoke-sized joins aren't judged on one noisy sample.
    The partitioning scan gets the same treatment: streaming
    single-scan vs. component-sharded per worker count.
    """
    distance_cls = BENCH_DISTANCES[distance]
    params = DEParams.size(k, c=4.0)
    relation = load_dataset(
        dataset,
        n_entities=entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    nn, phase1_seconds = _phase1_once(
        relation, distance_cls(), params, index
    )

    runs: list[dict] = []
    checksums: dict[str, set[str]] = {source: set() for source in SOURCES}

    # --- source: in-memory rows -------------------------------------
    reference, seconds, _ = _best_of(
        repeats, None, lambda _state: build_cs_pairs(nn, params)
    )
    reference_checksum = cs_pairs_checksum(reference)
    checksums["memory"].add(reference_checksum)
    runs.append(_row("memory", "sequential", 1, seconds, reference,
                     reference_checksum))
    for n_workers in workers:
        pairs, seconds, stats = _best_of(
            repeats,
            Phase2Stats,
            lambda stats, n_workers=n_workers: build_cs_pairs_parallel(
                nn, params, n_workers=n_workers, pool=pool, stats=stats
            ),
        )
        checksum = cs_pairs_checksum(pairs)
        checksums["memory"].add(checksum)
        runs.append(_row("memory", "partitioned", n_workers, seconds,
                         pairs, checksum, stats))

    # --- source: engine-resident NN_Reln ----------------------------
    table, seconds, _ = _best_of(
        repeats,
        lambda: _engine_with_nn(nn, buffer_pages, page_capacity),
        lambda engine: build_cs_pairs_engine(engine, params),
    )
    checksum = cs_pairs_checksum(iter_cs_pairs(table))
    checksums["engine"].add(checksum)
    runs.append(_row("engine", "sequential", 1, seconds, table.n_rows,
                     checksum))
    for n_workers in workers:
        table, seconds, state = _best_of(
            repeats,
            lambda: (
                _engine_with_nn(nn, buffer_pages, page_capacity),
                Phase2Stats(),
            ),
            lambda state, n_workers=n_workers: build_cs_pairs_engine_parallel(
                state[0], params, n_workers=n_workers, pool=pool,
                stats=state[1],
            ),
        )
        checksum = cs_pairs_checksum(iter_cs_pairs(table))
        checksums["engine"].add(checksum)
        runs.append(_row("engine", "partitioned", n_workers, seconds,
                         table.n_rows, checksum, state[1]))

    # --- source: small-buffer engine, spilled runs ------------------
    table, seconds, _ = _best_of(
        repeats,
        lambda: _engine_with_nn(nn, spill_buffer_pages, page_capacity),
        lambda engine: build_cs_pairs_engine(engine, params),
    )
    checksum = cs_pairs_checksum(iter_cs_pairs(table))
    checksums["spill"].add(checksum)
    runs.append(_row("spill", "sequential", 1, seconds, table.n_rows,
                     checksum))
    for n_workers in workers:
        table, seconds, state = _best_of(
            repeats,
            lambda: (
                _engine_with_nn(nn, spill_buffer_pages, page_capacity),
                Phase2Stats(),
            ),
            lambda state, n_workers=n_workers: build_cs_pairs_engine_parallel(
                state[0], params, n_workers=n_workers, pool=pool,
                stats=state[1], spill_runs=True,
            ),
        )
        checksum = cs_pairs_checksum(iter_cs_pairs(table))
        checksums["spill"].add(checksum)
        runs.append(_row("spill", "partitioned", n_workers, seconds,
                         table.n_rows, checksum, state[1]))

    # --- partitioning scan: streaming vs. component-sharded ---------
    ids = list(relation.ids())
    base_partition, partition_baseline_seconds, _ = _best_of(
        repeats, None,
        lambda _state: partition_records(ids, reference, params),
    )
    base_partition_checksum = partition_checksum(base_partition)
    partition_runs: list[dict] = []
    partition_parity = True
    for n_workers in workers:
        sharded, seconds, stats = _best_of(
            repeats,
            Phase2Stats,
            lambda stats, n_workers=n_workers: partition_records_sharded(
                ids, reference, params,
                n_workers=n_workers, pool=pool, stats=stats,
            ),
        )
        checksum = partition_checksum(sharded)
        partition_parity = partition_parity and (
            checksum == base_partition_checksum
        )
        partition_runs.append(
            {
                "workers": n_workers,
                "seconds": seconds,
                "n_components": stats.n_components,
                "shards": stats.partition_shards,
                "checksum": checksum,
            }
        )

    # --- derived views ----------------------------------------------
    speedups: dict[str, dict[str, float]] = {}
    for source in SOURCES:
        sequential = next(
            run for run in runs
            if run["source"] == source and run["mode"] == "sequential"
        )
        speedups[source] = {
            str(run["workers"]): (
                run["throughput"] / sequential["throughput"]
                if sequential["throughput"] > 0 else 0.0
            )
            for run in runs
            if run["source"] == source and run["mode"] == "partitioned"
        }
    parity = {source: len(checksums[source]) == 1 for source in SOURCES}
    parity["cross_source"] = (
        len({checksum for seen in checksums.values() for checksum in seen})
        == 1
    )

    return {
        "benchmark": "phase2_partitioned_join",
        "dataset": dataset,
        "distance": distance,
        "index": index,
        "k": k,
        "pool": pool,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "entities": entities,
        "n": len(relation),
        "n_cs_pairs": len(reference),
        "phase1_seconds": phase1_seconds,
        "buffer_pages": buffer_pages,
        "spill_buffer_pages": spill_buffer_pages,
        "page_capacity": page_capacity,
        "repeats": repeats,
        "workers": list(workers),
        "effective_parallelism": parallelism_advisory(workers),
        "runs": runs,
        "speedup_partitioned_vs_sequential": speedups,
        "parity": parity,
        "partition": {
            "baseline_seconds": partition_baseline_seconds,
            "checksum": base_partition_checksum,
            "parity": partition_parity,
            "runs": partition_runs,
        },
    }


def check_phase2_payload(
    payload: Mapping, min_relative_throughput: float = 0.5
) -> dict[str, list[str]]:
    """The bench gates: failures in a payload, keyed by severity.

    ``"checksum"`` failures (any disagreement within a source, across
    sources, or in the partitioning scan) are correctness violations —
    the CLI always fails on them.  ``"throughput"`` failures flag a
    pathological parallel regression: a partitioned run below
    ``min_relative_throughput`` of the same source's 1-worker
    partitioned run (the default 0.5 means "more than 2× slower than
    one worker"); the CLI enforces these only under ``--check``, since
    worker counts beyond the host's cores legitimately pay overhead.
    """
    checksum_failures: list[str] = []
    throughput_failures: list[str] = []
    for source, agreed in payload["parity"].items():
        if not agreed:
            checksum_failures.append(f"CSPairs checksum mismatch: {source}")
    if not payload["partition"]["parity"]:
        checksum_failures.append(
            "partition checksum mismatch: sharded vs. streaming"
        )
    for source in SOURCES:
        partitioned = [
            run for run in payload["runs"]
            if run["source"] == source and run["mode"] == "partitioned"
        ]
        base = next(
            (run for run in partitioned if run["workers"] == 1), None
        )
        if base is None or base["throughput"] <= 0:
            continue
        for run in partitioned:
            relative = run["throughput"] / base["throughput"]
            if relative < min_relative_throughput:
                throughput_failures.append(
                    f"{source} @ {run['workers']} workers: throughput "
                    f"{relative:.2f}x of 1-worker (< "
                    f"{min_relative_throughput:g}x)"
                )
    return {
        "checksum": checksum_failures,
        "throughput": throughput_failures,
    }


def phase2_table(payload: Mapping) -> str:
    """Render a payload's run matrix as the repo's standard text table."""
    rows = [
        (
            run["source"],
            run["mode"],
            run["workers"],
            f"{run['seconds']:.2f}s",
            f"{run.get('merge_seconds', 0.0):.2f}s",
            run["pairs"],
            f"{run['throughput']:.0f}/s",
        )
        for run in payload["runs"]
    ]
    table = format_table(
        ("source", "mode", "workers", "seconds", "merge", "pairs", "pairs/s"),
        rows,
    )
    partition = payload["partition"]
    lines = [
        f"phase2 join over n={payload['n']} "
        f"({payload['n_cs_pairs']} CSPairs rows; "
        f"phase 1 once in {payload['phase1_seconds']:.1f}s)",
        table,
        f"partition scan: streaming {partition['baseline_seconds']:.3f}s; "
        + ", ".join(
            f"{run['workers']}w {run['seconds']:.3f}s"
            f" ({run['n_components']} components)"
            for run in partition["runs"]
        ),
    ]
    return "\n".join(lines)


def write_phase2_json(payload: Mapping, path: str | Path) -> Path:
    """Write the payload (stable key order) and return the path."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
