"""Evaluation: pairwise precision/recall, PR sweeps, experiment harness."""

from repro.eval.cluster_metrics import (
    BCubedScore,
    bcubed,
    closest_cluster_f1,
    variation_of_information,
)
from repro.eval.experiment import (
    QualityExperiment,
    QualityResult,
    default_ks,
    default_thetas,
)
from repro.eval.metrics import GroupScore, PRScore, group_scores, pairwise_scores
from repro.eval.pr_curve import (
    PRPoint,
    PRSweep,
    QualitySweeper,
    truncate_to_k,
    truncate_to_radius,
)
from repro.eval.figures import loglog_plot, pr_plot, scatter
from repro.eval.profile import DatasetProfile, profile_nn_relation
from repro.eval.report import format_kv, format_pr_sweeps, format_table
from repro.eval.significance import (
    ConfidenceInterval,
    bootstrap_difference,
    bootstrap_score,
)

__all__ = [
    "PRScore",
    "GroupScore",
    "pairwise_scores",
    "group_scores",
    "PRPoint",
    "PRSweep",
    "QualitySweeper",
    "truncate_to_k",
    "truncate_to_radius",
    "QualityExperiment",
    "QualityResult",
    "default_ks",
    "default_thetas",
    "format_table",
    "format_pr_sweeps",
    "format_kv",
    "scatter",
    "pr_plot",
    "loglog_plot",
    "BCubedScore",
    "bcubed",
    "closest_cluster_f1",
    "variation_of_information",
    "ConfidenceInterval",
    "bootstrap_score",
    "bootstrap_difference",
    "DatasetProfile",
    "profile_nn_relation",
]
