"""Precision-recall sweeps (the paper's quality figures).

The quality evaluation plots (recall, precision) points across
parameter settings: the ``thr`` baseline sweeps its global threshold θ,
``DE_S`` sweeps K, and ``DE_D`` sweeps its diameter θ.  All methods
share one Phase-1 NN computation per dataset, exactly as in the paper's
setup, where the threshold graph for ``thr`` is induced from the same
``NN_Reln``.

Phase 1 is run once at the most permissive setting (largest K / θ) and
then *truncated* per sweep point — the NN list for a smaller K is a
prefix of the list for a larger K, and the within-θ list for a smaller
θ is a distance-filtered prefix — so sweeps cost one index pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.single_linkage import single_linkage_from_nn
from repro.core.formulation import DEParams
from repro.core.neighborhood import NNEntry, NNRelation
from repro.core.nn_phase import prepare_nn_lists
from repro.data.duplicates import DirtyDataset
from repro.distances.base import CachedDistance, DistanceFunction
from repro.eval.metrics import PRScore, pairwise_scores
from repro.index.base import NNIndex
from repro.index.bruteforce import BruteForceIndex

__all__ = [
    "PRPoint",
    "PRSweep",
    "QualitySweeper",
    "truncate_to_k",
    "truncate_to_radius",
]


@dataclass(frozen=True)
class PRPoint:
    """One (parameter, precision, recall) point of a PR plot."""

    method: str
    parameter: float
    precision: float
    recall: float
    f1: float

    @classmethod
    def from_score(cls, method: str, parameter: float, score: PRScore) -> "PRPoint":
        return cls(
            method=method,
            parameter=parameter,
            precision=score.precision,
            recall=score.recall,
            f1=score.f1,
        )


@dataclass
class PRSweep:
    """A labelled series of PR points (one curve of a figure)."""

    method: str
    points: list[PRPoint]

    def best_f1(self) -> PRPoint:
        return max(self.points, key=lambda point: point.f1)

    def precision_at_recall(self, recall_floor: float) -> float:
        """Best precision among points with recall >= the floor (0 if none)."""
        eligible = [p.precision for p in self.points if p.recall >= recall_floor]
        return max(eligible, default=0.0)


def truncate_to_k(nn_relation: NNRelation, k: int) -> NNRelation:
    """Restrict every NN list to its first ``k`` neighbors."""
    truncated = NNRelation()
    for entry in nn_relation:
        truncated.add(
            NNEntry(rid=entry.rid, neighbors=entry.neighbors[:k], ng=entry.ng)
        )
    return truncated


def truncate_to_radius(nn_relation: NNRelation, theta: float) -> NNRelation:
    """Restrict every NN list to neighbors with distance < θ."""
    truncated = NNRelation()
    for entry in nn_relation:
        kept = tuple(n for n in entry.neighbors if n.distance < theta)
        truncated.add(NNEntry(rid=entry.rid, neighbors=kept, ng=entry.ng))
    return truncated


class QualitySweeper:
    """Shared-Phase-1 PR sweeps over one dataset and distance function.

    Parameters
    ----------
    dataset:
        The dirty relation plus its gold standard.
    distance:
        The tuple distance (cached internally; ``prepare`` is invoked by
        the index build).
    index:
        NN index (default brute force, i.e. exact Phase 1).
    k_max, theta_max:
        The most permissive settings Phase 1 is materialized at; sweep
        points must stay within them.
    verify:
        Self-check every DE sweep point against the paper's invariants
        (``repro.verify``), raising
        :class:`~repro.verify.report.VerificationError` on the first
        violation so a quality figure can never be built from an
        invariant-breaking run.
    """

    def __init__(
        self,
        dataset: DirtyDataset,
        distance: DistanceFunction,
        index: NNIndex | None = None,
        k_max: int = 10,
        theta_max: float = 0.6,
        verify: bool = False,
    ):
        from repro.run.config import RunConfig
        from repro.run.context import RunContext

        self.dataset = dataset
        self.distance = CachedDistance(distance)
        self.index = index if index is not None else BruteForceIndex()
        self.k_max = k_max
        self.theta_max = theta_max
        self.verify = verify
        #: One shared config; every sweep derives its run from it via
        #: ``replace(...)`` so all points execute under identical knobs.
        self.base_config = RunConfig(keep_cs_pairs=bool(verify))
        self._context = RunContext.create(
            self.base_config, distance=self.distance, index=self.index
        )
        self._size_nn: NNRelation | None = None
        self._radius_nn: NNRelation | None = None

    def _pipeline(self, **overrides):
        """A staged pipeline over the shared context, optionally under a
        ``base_config.replace(...)`` variant."""
        from repro.run.pipeline import StagedPipeline

        context = self._context
        if overrides:
            context = context.with_config(self.base_config.replace(**overrides))
        return StagedPipeline(context)

    def _self_check(self, result) -> None:
        """Verify one sweep point's result (strict) when enabled."""
        if not self.verify:
            return
        from repro.verify.verifier import verify_result

        verify_result(
            result,
            self.dataset.relation,
            self.distance,
            cs_pairs=result.cs_pairs,
            sample=4,
            strict=True,
        )

    # ------------------------------------------------------------------
    # Phase-1 materialization (lazy, shared across sweep points)
    # ------------------------------------------------------------------

    def size_nn(self) -> NNRelation:
        if self._size_nn is None:
            self.index.build(self.dataset.relation, self.distance)
            params = DEParams.size(self.k_max)
            self._size_nn = prepare_nn_lists(self.dataset.relation, self.index, params)
        return self._size_nn

    def radius_nn(self) -> NNRelation:
        if self._radius_nn is None:
            self.index.build(self.dataset.relation, self.distance)
            params = DEParams.diameter(self.theta_max)
            self._radius_nn = prepare_nn_lists(
                self.dataset.relation, self.index, params
            )
        return self._radius_nn

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------

    def sweep_thr(self, thetas: list[float]) -> PRSweep:
        """The ``thr`` baseline: single linkage at each global θ."""
        nn_lists = self.radius_nn().nn_lists()
        ids = self.dataset.relation.ids()
        points = []
        for theta in thetas:
            if theta > self.theta_max:
                raise ValueError(f"theta {theta} exceeds theta_max {self.theta_max}")
            partition = single_linkage_from_nn(ids, nn_lists, theta)
            score = pairwise_scores(partition, self.dataset.gold)
            points.append(PRPoint.from_score("thr", theta, score))
        return PRSweep(method="thr", points=points)

    def sweep_de_size(
        self, ks: list[int], c: float, agg: str = "max"
    ) -> PRSweep:
        """``DE_S(K)`` across K at a fixed SN threshold ``c``."""
        nn_relation = self.size_nn()
        pipeline = self._pipeline()
        method = f"DE_S(c={c:g},{agg})"
        points = []
        for k in ks:
            if k > self.k_max:
                raise ValueError(f"K {k} exceeds k_max {self.k_max}")
            params = DEParams.size(k, agg=agg, c=c)
            result = pipeline.run_from_nn(
                self.dataset.relation, truncate_to_k(nn_relation, k), params
            )
            self._self_check(result)
            score = pairwise_scores(result.partition, self.dataset.gold)
            points.append(PRPoint.from_score(method, float(k), score))
        return PRSweep(method=method, points=points)

    def sweep_de_diameter(
        self, thetas: list[float], c: float, agg: str = "max"
    ) -> PRSweep:
        """``DE_D(θ)`` across θ at a fixed SN threshold ``c``."""
        nn_relation = self.radius_nn()
        pipeline = self._pipeline()
        method = f"DE_D(c={c:g},{agg})"
        points = []
        for theta in thetas:
            if theta > self.theta_max:
                raise ValueError(f"theta {theta} exceeds theta_max {self.theta_max}")
            params = DEParams.diameter(theta, agg=agg, c=c)
            result = pipeline.run_from_nn(
                self.dataset.relation, truncate_to_radius(nn_relation, theta), params
            )
            self._self_check(result)
            score = pairwise_scores(result.partition, self.dataset.gold)
            points.append(PRPoint.from_score(method, theta, score))
        return PRSweep(method=method, points=points)
