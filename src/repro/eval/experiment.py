"""Experiment harness: one call per paper figure.

Bundles the sweep configurations the quality figures use — ``thr`` vs
``DE_S(K)`` at c ∈ {4, 6} vs ``DE_D(θ)`` at c ∈ {4, 6} — and the
comparison logic the benchmarks assert on (who wins, at what recall).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.duplicates import DirtyDataset
from repro.distances.base import DistanceFunction
from repro.eval.pr_curve import PRSweep, QualitySweeper

__all__ = ["QualityExperiment", "QualityResult", "default_thetas", "default_ks"]


def default_thetas(theta_max: float = 0.6, n: int = 12) -> list[float]:
    """An even grid of thresholds in (0, theta_max]."""
    step = theta_max / n
    return [round(step * (i + 1), 6) for i in range(n)]


def default_ks(k_max: int = 8) -> list[int]:
    """K values 2 .. k_max."""
    return list(range(2, k_max + 1))


@dataclass
class QualityResult:
    """All sweeps of one quality figure on one dataset."""

    dataset: str
    distance: str
    sweeps: dict[str, PRSweep] = field(default_factory=dict)

    def add(self, sweep: PRSweep) -> None:
        self.sweeps[sweep.method] = sweep

    @property
    def thr(self) -> PRSweep:
        return self.sweeps["thr"]

    def de_sweeps(self) -> list[PRSweep]:
        return [sweep for name, sweep in self.sweeps.items() if name != "thr"]

    def best_de_precision_at(self, recall_floor: float) -> float:
        """Best DE precision among points at or above the recall floor."""
        return max(
            (s.precision_at_recall(recall_floor) for s in self.de_sweeps()),
            default=0.0,
        )

    def de_wins_at(self, recall_floor: float) -> bool:
        """Whether some DE configuration beats ``thr`` at the floor.

        "Beats" is >=: the paper's claim is that DE dominates,
        especially at high recall, with one dataset (Parks) showing
        parity.
        """
        return self.best_de_precision_at(recall_floor) >= self.thr.precision_at_recall(
            recall_floor
        )


class QualityExperiment:
    """The paper's section 5.1 quality comparison on one dataset."""

    def __init__(
        self,
        dataset: DirtyDataset,
        distance: DistanceFunction,
        k_max: int = 8,
        theta_max: float = 0.6,
        c_values: tuple[float, ...] = (4.0, 6.0),
        agg: str = "max",
        verify: bool = False,
    ):
        self.dataset = dataset
        self.distance = distance
        #: Self-check every DE sweep point (see QualitySweeper.verify).
        self.verify = verify
        self.k_max = k_max
        self.theta_max = theta_max
        self.c_values = c_values
        self.agg = agg

    def run(self) -> QualityResult:
        sweeper = QualitySweeper(
            self.dataset,
            self.distance,
            k_max=self.k_max,
            theta_max=self.theta_max,
            verify=self.verify,
        )
        result = QualityResult(
            dataset=self.dataset.name, distance=self.distance.name
        )
        thetas = default_thetas(self.theta_max)
        ks = default_ks(self.k_max)
        result.add(sweeper.sweep_thr(thetas))
        for c in self.c_values:
            result.add(sweeper.sweep_de_size(ks, c=c, agg=self.agg))
            result.add(sweeper.sweep_de_diameter(thetas, c=c, agg=self.agg))
        return result
