"""Sharded scale-out benchmark: end-to-end runs at six-figure n.

Produces the ``BENCH_scale.json`` artifact the performance roadmap
regresses against.  The same DE instance is solved end to end at every
requested shard count — ``1`` is the unsharded reference — through the
staged pipeline, so the numbers include Phase 1, the CSPairs join,
partitioning, and (for sharded runs) the plan/merge overhead the
scale-out layer adds.

Two gates keep the artifact honest:

- **checksum parity** — every shard count must produce the identical
  partition checksum (the :mod:`repro.shard` exactness claim), and a
  small-size :func:`~repro.verify.shard.verify_shard_merge` matrix
  (all three cuts x both kernel backends) must pass;
- **plan recall** — the recorded fraction of LSH candidate pairs kept
  co-resident by the shard plan must clear ``--min-recall`` (the merge
  is exact regardless; recall measures how much Phase-1 *locality* the
  blocking preserved, i.e. whether the plan is doing its job).

Memory is bounded by construction: each shard worker owns a private
buffer pool, so the peak page footprint is ``shards_in_flight x
buffer_pages`` — recorded per run as ``peak_pages_bound``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.formulation import DEParams
from repro.data.loaders import load_dataset
from repro.eval.bench_phase1 import parallelism_advisory, run_build_throughput
from repro.eval.report import format_table

__all__ = [
    "run_scale_bench",
    "check_scale_payload",
    "scale_table",
    "write_scale_json",
]


def _cut_params(cut: str, k: int, theta: float, c: float) -> DEParams:
    """Resolve a cut name to :class:`DEParams` (benchmarked cut)."""
    if cut == "size":
        return DEParams.size(k, c=c)
    if cut == "diameter":
        return DEParams.diameter(theta, c=c)
    if cut == "combined":
        return DEParams.combined(k, theta, c=c)
    raise ValueError(f"unknown cut {cut!r}; expected size/diameter/combined")


def run_scale_bench(
    entities: int = 2000,
    shard_counts: Sequence[int] = (1, 4),
    dataset: str = "org",
    distance: str = "cosine",
    index: str = "minhash",
    cut: str = "combined",
    k: int = 5,
    theta: float = 0.4,
    c: float = 4.0,
    overlap: float = 0.2,
    shards_in_flight: int | None = None,
    pool: str = "thread",
    kernel: str = "auto",
    buffer_pages: int | None = 64,
    page_capacity: int = 64,
    duplicate_fraction: float = 0.3,
    seed: int = 0,
    parity_entities: int = 60,
) -> dict:
    """Run the scale-out matrix and return the JSON payload.

    ``entities`` counts entities before duplicate injection; the payload
    reports the actual relation size ``n``.  ``buffer_pages`` (when not
    ``None``) routes every run through the storage engine so the
    bounded-memory claim is exercised, not just asserted: sharded runs
    give each in-flight worker its own ``buffer_pages`` pool.
    ``parity_entities`` sizes the small cross-cut/cross-kernel parity
    matrix that accompanies the headline run.
    """
    # Imported lazily: eval sits above the run layer.
    from repro.run.config import RunConfig
    from repro.run.context import RunContext
    from repro.run.pipeline import StagedPipeline
    from repro.verify.report import summarize
    from repro.verify.shard import verify_shard_merge

    relation = load_dataset(
        dataset,
        n_entities=entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    params = _cut_params(cut, k, theta, c)

    base = RunConfig(
        distance=distance,
        index=index,
        kernel=kernel,
        pool=pool,
        use_engine=buffer_pages is not None,
        buffer_pages=buffer_pages if buffer_pages is not None else 256,
        page_capacity=page_capacity,
    )

    runs: list[dict] = []
    single_seconds: float | None = None
    for n_shards in shard_counts:
        in_flight = (
            max(1, min(shards_in_flight, n_shards)) if shards_in_flight else n_shards
        )
        config = base.replace(
            shards=n_shards,
            shard_overlap=overlap,
            shards_in_flight=in_flight if n_shards > 1 else None,
        )
        context = RunContext.create(config)
        started = time.perf_counter()
        result = StagedPipeline(context).run(relation, params)
        seconds = time.perf_counter() - started
        if n_shards == 1:
            single_seconds = seconds
        stats = result.stats
        run = {
            "shards": n_shards,
            "shards_in_flight": in_flight if n_shards > 1 else 1,
            "seconds": seconds,
            "throughput": len(relation) / seconds if seconds > 0 else None,
            "stages": [
                {"stage": t.stage, "seconds": t.seconds}
                for t in stats.timings
            ],
            "checksum": result.partition.checksum(),
            "n_cs_pairs": result.stats.n_cs_pairs,
            "n_groups": len(result.partition.non_trivial_groups()),
            "kernel_backend": stats.kernel_backend,
            "phase1": {
                "seconds": stats.phase1.seconds,
                "evaluations": stats.phase1.evaluations,
                "kernel_evaluations": stats.phase1.kernel_evaluations,
                # Kernel-backed runs bypass the pair cache entirely —
                # report null, not a misleading 0.0 (see Phase1Stats).
                "cache_hit_rate": (
                    None
                    if stats.phase1.cache_bypassed
                    else stats.phase1.cache_hit_rate
                ),
                "cache_bypassed": stats.phase1.cache_bypassed,
                "substages": dict(stats.phase1.substage_seconds),
            },
            "speedup_vs_single": (
                single_seconds / seconds
                if single_seconds and seconds > 0
                else None
            ),
            "buffer": (
                {
                    "hits": stats.buffer.hits,
                    "misses": stats.buffer.misses,
                    "evictions": stats.buffer.evictions,
                    "hit_ratio": stats.buffer.hit_ratio,
                }
                if stats.buffer is not None
                else None
            ),
        }
        if n_shards > 1:
            run["plan"] = stats.shard_plan
            run["shard_runs"] = stats.shard_runs
            run["merge"] = stats.shard_merge
        runs.append(run)

    checksums = {run["checksum"] for run in runs}
    recalls = [
        run["plan"]["recall"] for run in runs if run["shards"] > 1 and run["plan"]
    ]

    small = load_dataset(
        dataset,
        n_entities=parity_entities,
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    ).relation
    build_throughput = run_build_throughput(
        dataset=dataset,
        # Bound the isolated build-throughput sample: the python signer
        # re-hashes every token occurrence, so at headline sizes the
        # comparison leg alone would dominate the bench's wall time.
        n_entities=min(entities, 20_000),
        duplicate_fraction=duplicate_fraction,
        seed=seed,
    )

    parity_report = verify_shard_merge(
        small,
        distance=distance,
        index=index,
        overlap=overlap,
        pool=pool,
        params_by_cut={
            "size": DEParams.size(k, c=c),
            "diameter": DEParams.diameter(theta, c=c),
            "combined": DEParams.combined(k, theta, c=c),
        },
    )

    return {
        "benchmark": "sharded_scale_out",
        "dataset": dataset,
        "distance": distance,
        "index": index,
        "cut": cut,
        "k": k,
        "theta": theta,
        "c": c,
        "overlap": overlap,
        "pool": pool,
        "kernel": kernel,
        "duplicate_fraction": duplicate_fraction,
        "seed": seed,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "entities": entities,
        "n": len(relation),
        "buffer_pages": buffer_pages,
        "page_capacity": page_capacity,
        "shard_counts": list(shard_counts),
        "effective_parallelism": parallelism_advisory(
            max(
                run["shards_in_flight"]
                for run in runs
            )
        ),
        "runs": runs,
        "build_throughput": build_throughput,
        "parity": len(checksums) == 1,
        "min_plan_recall": min(recalls) if recalls else None,
        "small_parity": summarize(parity_report),
    }


def check_scale_payload(
    payload: Mapping,
    min_recall: float = 0.9,
    min_n: int | None = None,
    min_speedup: float | None = None,
) -> dict[str, list[str]]:
    """The bench gates: failures in a payload, keyed by severity.

    ``"checksum"`` failures (shard counts disagreeing on the partition,
    the small cross-cut/cross-kernel parity matrix failing, or the
    build-throughput backends disagreeing on signatures) are
    correctness violations — the CLI always fails on them.
    ``"recall"`` failures flag a shard plan whose blocking kept fewer
    than ``min_recall`` of the LSH candidate pairs co-resident.
    ``"scale"`` failures (only checked when ``min_n`` is given) flag a
    headline run smaller than the roadmap's floor.
    ``"speedup"`` failures (only checked when ``min_speedup`` is given)
    flag a vectorized signer slower than ``min_speedup`` x the scalar
    per-occurrence one in the payload's build-throughput section.
    """
    failures: dict[str, list[str]] = {
        "checksum": [],
        "recall": [],
        "scale": [],
        "speedup": [],
    }
    if not payload.get("parity", False):
        checksums = sorted(
            {run["checksum"] for run in payload.get("runs", ())}
        )
        failures["checksum"].append(
            f"shard counts disagree on the partition checksum: {checksums}"
        )
    small = payload.get("small_parity") or {}
    if not small.get("ok", False):
        failures["checksum"].append(
            f"small-size shard-merge-parity matrix failed: "
            f"{small.get('failed', [])}"
        )
    recall = payload.get("min_plan_recall")
    if recall is not None and recall < min_recall:
        failures["recall"].append(
            f"shard plan recall {recall:.3f} below the {min_recall:.3f} floor"
        )
    if min_n is not None and payload.get("n", 0) < min_n:
        failures["scale"].append(
            f"relation size n={payload.get('n')} below the {min_n} floor"
        )
    build = payload.get("build_throughput") or {}
    if build and not build.get("parity", True):
        failures["checksum"].append(
            "build-throughput backends produced different signature checksums"
        )
    if min_speedup is not None:
        speedup = build.get("speedup_vectorized_vs_scalar")
        if speedup is None:
            failures["speedup"].append(
                "payload records no vectorized-vs-scalar build speedup "
                "(no build_throughput section)"
            )
        elif speedup < min_speedup:
            failures["speedup"].append(
                f"vectorized signer speedup {speedup:.2f}x below the "
                f"{min_speedup:.2f}x floor"
            )
    return {key: value for key, value in failures.items() if value}


def scale_table(payload: Mapping) -> str:
    """Render a payload's run matrix as the repo's standard text table."""
    rows = []
    for run in payload["runs"]:
        plan = run.get("plan") or {}
        rows.append(
            (
                run["shards"],
                run["shards_in_flight"],
                f"{run['seconds']:.2f}",
                f"{run['throughput']:.1f}" if run["throughput"] else "-",
                (
                    f"{run['speedup_vs_single']:.2f}"
                    if run.get("speedup_vs_single")
                    else "-"
                ),
                f"{plan['recall']:.3f}" if plan else "-",
                plan.get("peak_pages_bound", "-") if plan else "-",
                run["checksum"][:12],
            )
        )
    title = (
        f"sharded scale-out: {payload['dataset']} n={payload['n']} "
        f"{payload['distance']}/{payload['index']} {payload['cut']} cut"
    )
    return format_table(
        (
            "shards",
            "in_flight",
            "seconds",
            "rec/s",
            "speedup",
            "recall",
            "pages_bound",
            "checksum",
        ),
        rows,
        title=title,
    )


def write_scale_json(payload: Mapping, path: str | Path) -> Path:
    """Write the payload (stable key order) and return the path."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
