"""Plain-text rendering of experiment results.

Benchmarks print the same row/series structure the paper's tables and
figures report; these helpers keep that output consistent and readable
in a terminal (no plotting dependencies).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.eval.pr_curve import PRSweep

__all__ = ["format_table", "format_pr_sweeps", "format_kv"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_pr_sweeps(
    sweeps: Mapping[str, PRSweep] | Sequence[PRSweep], title: str | None = None
) -> str:
    """Render PR sweeps as a (method, parameter, recall, precision) table."""
    if isinstance(sweeps, Mapping):
        series = list(sweeps.values())
    else:
        series = list(sweeps)
    rows = []
    for sweep in series:
        for point in sweep.points:
            rows.append(
                (
                    sweep.method,
                    f"{point.parameter:g}",
                    f"{point.recall:.3f}",
                    f"{point.precision:.3f}",
                    f"{point.f1:.3f}",
                )
            )
    return format_table(
        ("method", "param", "recall", "precision", "f1"), rows, title=title
    )


def format_kv(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Render a key/value block."""
    width = max((len(key) for key in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{key.ljust(width)} : {value}" for key, value in pairs.items())
    return "\n".join(lines)
