"""Bootstrap significance for quality comparisons.

The paper reports point estimates of precision/recall; with synthetic
gold standards we can do a little better and attach uncertainty to the
headline comparison (DE vs thr).  The unit of resampling is the
*entity* (cluster bootstrap): records of one entity succeed or fail
together, so resampling records would understate variance.

- :func:`bootstrap_score` — confidence interval for one method's
  precision/recall/F1;
- :func:`bootstrap_difference` — paired CI for method A minus method B
  on the same dataset (the right test: both methods see the same
  resampled entities).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.result import Partition
from repro.data.duplicates import GoldStandard

__all__ = ["ConfidenceInterval", "bootstrap_score", "bootstrap_difference"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def excludes_zero(self) -> bool:
        """Whether zero lies outside the interval (a significant
        difference at the chosen confidence)."""
        return self.low > 0.0 or self.high < 0.0

    def __str__(self) -> str:
        return (
            f"{self.point:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}"
        )


def _entities(gold: GoldStandard) -> dict[int, list[int]]:
    groups: dict[int, list[int]] = {}
    for rid, entity in gold.entity_of.items():
        groups.setdefault(entity, []).append(rid)
    return groups


def _pair_metric(
    partition: Partition, gold: GoldStandard, entity_sample: list[int],
    entities: dict[int, list[int]], metric: str,
) -> float:
    """Pairwise metric restricted to a multiset of resampled entities.

    Entities drawn multiple times contribute their pairs that many
    times, the standard cluster-bootstrap weighting.
    """
    tp = 0.0
    returned = 0.0
    actual = 0.0
    for entity in entity_sample:
        members = entities[entity]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                actual += 1.0
                if partition.same_group(a, b):
                    tp += 1.0
        # Returned pairs anchored at this entity's records: count pairs
        # (r, x) with r in the entity, avoiding double counting within
        # the entity by halving the intra-entity share.
        for r in members:
            if r not in partition:
                continue
            for x in partition.group_of(r):
                if x == r:
                    continue
                if gold.entity_of.get(x) == entity:
                    returned += 0.5
                else:
                    returned += 1.0
    if metric == "recall":
        return tp / actual if actual else 1.0
    if metric == "precision":
        return tp / returned if returned else 1.0
    if metric == "f1":
        p = tp / returned if returned else 1.0
        r = tp / actual if actual else 1.0
        return 2 * p * r / (p + r) if p + r else 0.0
    raise ValueError(f"unknown metric {metric!r}")


def bootstrap_score(
    partition: Partition,
    gold: GoldStandard,
    metric: str = "f1",
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Cluster-bootstrap CI for a pairwise metric of one partition."""
    entities = _entities(gold)
    keys = sorted(entities)
    rng = random.Random(seed)
    point = _pair_metric(partition, gold, keys, entities, metric)
    samples = []
    for _ in range(n_resamples):
        resample = [keys[rng.randrange(len(keys))] for _ in keys]
        samples.append(_pair_metric(partition, gold, resample, entities, metric))
    samples.sort()
    alpha = (1.0 - confidence) / 2.0
    low = samples[int(alpha * n_resamples)]
    high = samples[min(n_resamples - 1, int((1.0 - alpha) * n_resamples))]
    return ConfidenceInterval(point=point, low=low, high=high, confidence=confidence)


def bootstrap_difference(
    partition_a: Partition,
    partition_b: Partition,
    gold: GoldStandard,
    metric: str = "f1",
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Paired cluster-bootstrap CI for metric(A) - metric(B).

    Both partitions are evaluated on the *same* resampled entities per
    iteration, which is what makes the comparison paired and tight.
    """
    entities = _entities(gold)
    keys = sorted(entities)
    rng = random.Random(seed)
    point = _pair_metric(partition_a, gold, keys, entities, metric) - _pair_metric(
        partition_b, gold, keys, entities, metric
    )
    samples = []
    for _ in range(n_resamples):
        resample = [keys[rng.randrange(len(keys))] for _ in keys]
        a = _pair_metric(partition_a, gold, resample, entities, metric)
        b = _pair_metric(partition_b, gold, resample, entities, metric)
        samples.append(a - b)
    samples.sort()
    alpha = (1.0 - confidence) / 2.0
    low = samples[int(alpha * n_resamples)]
    high = samples[min(n_resamples - 1, int((1.0 - alpha) * n_resamples))]
    return ConfidenceInterval(point=point, low=low, high=high, confidence=confidence)
